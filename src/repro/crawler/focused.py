"""The focused crawler: classifier-guided, distiller-assisted resource discovery.

This is the paper's central loop (§2, §3.2).  Starting from the example
seed pages, the crawler repeatedly checks out the best frontier URL(s)
under the active crawl ordering, fetches them, asks the classifier for
their relevance R(u) (soft focus, Equation 3), records each page and its
out-links in the CRAWL and LINK tables, and enqueues the out-links with
priority inherited from the citing page.  Periodically the distiller
re-scores hubs and authorities over the crawl graph, and unvisited
out-neighbours of the top hubs get their priority raised (the §3.7
"missed neighbours of great hubs" query).

The loop itself lives in :mod:`repro.crawler.engine`;
:class:`FocusedCrawler` is a thin driver that wires a frontier, a trace,
and a :class:`~repro.crawler.engine.CrawlEngine` together.  Setting
``CrawlerConfig.batch_size`` (and optionally ``fetch_workers``) switches
the engine from the reference serial loop to the batched pipeline;
``fetch_mode="async"`` further switches the fetch stage to the asyncio
pipeline over the configured fetch transport (``CrawlerConfig.transport``
/ ``transport_options`` — see :mod:`repro.webgraph.transport`).

Three focus modes are supported:

* ``soft``  — the paper's soft focus rule: out-links always enter the
  frontier, prioritised by the citing page's relevance.
* ``hard``  — the hard focus rule: out-links enter only when the page's
  best leaf class has a good ancestor (prone to stagnation, reproduced
  for the ablation benchmark).
* ``none``  — the unfocused baseline: relevance is measured but ignored
  for ordering (see :mod:`repro.crawler.unfocused`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.classifier.model import HierarchicalModel
from repro.distiller.hits import DistillationResult
from repro.distiller.weights import Link
from repro.minidb import Database
from repro.taxonomy.tree import TopicTaxonomy
from repro.webgraph.fetch import Fetcher

from .engine import CrawlEngine, CrawlerConfig, CrawlTrace, PageVisit
from .frontier import Frontier
from .policies import aggressive_discovery, breadth_first

__all__ = [
    "CrawlerConfig",
    "CrawlTrace",
    "FocusedCrawler",
    "PageVisit",
]


class FocusedCrawler:
    """Classifier-guided crawler over a simulated web, persisting state in minidb."""

    def __init__(
        self,
        fetcher: Fetcher,
        classifier: HierarchicalModel,
        taxonomy: TopicTaxonomy,
        database: Database,
        config: Optional[CrawlerConfig] = None,
    ) -> None:
        self.fetcher = fetcher
        self.classifier = classifier
        self.taxonomy = taxonomy
        self.database = database
        self.config = config or CrawlerConfig()
        if self.config.focus_mode not in ("soft", "hard", "none"):
            raise ValueError(f"unknown focus mode {self.config.focus_mode!r}")
        ordering = self.config.ordering
        if ordering is None:
            ordering = breadth_first() if self.config.focus_mode == "none" else aggressive_discovery()
        self.frontier = Frontier(database, ordering)
        self.trace = CrawlTrace()
        self.engine = CrawlEngine(
            fetcher=fetcher,
            classifier=classifier,
            taxonomy=taxonomy,
            database=database,
            config=self.config,
            frontier=self.frontier,
            trace=self.trace,
        )

    # -- public API ------------------------------------------------------------------
    def add_seeds(self, urls: Iterable[str]) -> None:
        """Seed the crawl with the user's example URLs (the paper's D(C*))."""
        for url in urls:
            self.frontier.add_seed(url)

    def crawl(self, max_pages: Optional[int] = None) -> CrawlTrace:
        """Run the crawl loop until the page budget or the frontier is exhausted."""
        budget = max_pages if max_pages is not None else self.config.max_pages
        return self.engine.run(budget)

    def run_distillation(self) -> DistillationResult:
        """Re-score hubs/authorities over the current crawl graph and boost frontier URLs."""
        return self.engine.run_distillation()

    # -- views used by benchmarks and experiments --------------------------------------
    def _links_from_table(self) -> list[Link]:
        return self.engine.links_from_table()

    def _relevance_map(self) -> Dict[int, float]:
        return self.engine.relevance_map()

    # -- convenience accessors ------------------------------------------------------------------
    def top_hubs(self, k: int = 10) -> list[tuple[str, float]]:
        """URL/score pairs of the current best hubs."""
        if self.trace.last_distillation is None:
            self.run_distillation()
        return [
            (self.frontier.url_of_oid(oid) or str(oid), score)
            for oid, score in self.trace.last_distillation.top_hubs(k)
        ]

    def top_authorities(self, k: int = 10) -> list[tuple[str, float]]:
        if self.trace.last_distillation is None:
            self.run_distillation()
        return [
            (self.frontier.url_of_oid(oid) or str(oid), score)
            for oid, score in self.trace.last_distillation.top_authorities(k)
        ]
