"""The focused crawler: classifier-guided, distiller-assisted resource discovery.

This is the paper's central loop (§2, §3.2).  Starting from the example
seed pages, the crawler repeatedly checks out the best frontier URL under
the active crawl ordering, fetches it, asks the classifier for its
relevance R(u) (soft focus, Equation 3), records the page and its
out-links in the CRAWL and LINK tables, and enqueues the out-links with
priority inherited from the citing page.  Periodically the distiller
re-scores hubs and authorities over the crawl graph, and unvisited
out-neighbours of the top hubs get their priority raised (the §3.7
"missed neighbours of great hubs" query).

Three focus modes are supported:

* ``soft``  — the paper's soft focus rule: out-links always enter the
  frontier, prioritised by the citing page's relevance.
* ``hard``  — the hard focus rule: out-links enter only when the page's
  best leaf class has a good ancestor (prone to stagnation, reproduced
  for the ablation benchmark).
* ``none``  — the unfocused baseline: relevance is measured but ignored
  for ordering (see :mod:`repro.crawler.unfocused`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.classifier.model import HierarchicalModel
from repro.classifier.tokenizer import TermFrequencies, term_frequencies
from repro.distiller.hits import DistillationResult, weighted_hits
from repro.distiller.weights import Link
from repro.minidb import Database
from repro.taxonomy.tree import TopicTaxonomy
from repro.webgraph.fetch import Fetcher, FetchStatus
from repro.webgraph.urls import normalize_url, url_oid

from .frontier import Frontier
from .policies import CrawlOrdering, aggressive_discovery, breadth_first

#: Relevance assigned to a link target before anything is known about it
#: when the crawl runs unfocused (ordering ignores it anyway).
_UNFOCUSED_PRIORITY = 0.0


@dataclass
class CrawlerConfig:
    """Knobs of a crawl run."""

    #: Stop after this many successful page fetches.
    max_pages: int = 1000
    #: Focus mode: "soft" (default), "hard", or "none" (unfocused baseline).
    focus_mode: str = "soft"
    #: Crawl ordering; defaults to aggressive discovery (or BFS when unfocused).
    ordering: Optional[CrawlOrdering] = None
    #: Run the distiller every this many successful fetches (0 disables it).
    distill_every: int = 200
    #: Distillation iterations per run and relevance threshold ρ.
    distill_iterations: int = 5
    rho: float = 0.1
    #: After distillation, boost unvisited out-neighbours of this many top hubs.
    hub_boost_top_k: int = 10
    #: Boosted pages get at least this frontier priority.
    hub_boost_priority: float = 0.5
    #: Give up on a URL after this many failed fetch attempts.
    max_retries: int = 2
    #: Give up on the whole crawl after this many consecutive frontier misses.
    stagnation_patience: int = 50
    #: Record the best-leaf class of every visited page (topic census support).
    record_best_leaf: bool = True


@dataclass
class PageVisit:
    """One successfully fetched and classified page, in fetch order."""

    tick: int
    url: str
    relevance: float
    server: str
    out_degree: int
    best_leaf_cid: Optional[int] = None


@dataclass
class CrawlTrace:
    """Everything a crawl run produced, for metrics and experiments."""

    visits: List[PageVisit] = field(default_factory=list)
    fetched_urls: List[str] = field(default_factory=list)
    failed_urls: List[str] = field(default_factory=list)
    distillations: int = 0
    stagnated: bool = False
    last_distillation: Optional[DistillationResult] = None

    @property
    def pages_fetched(self) -> int:
        return len(self.visits)

    def relevance_series(self) -> List[float]:
        return [visit.relevance for visit in self.visits]

    def visited_set(self) -> set[str]:
        return set(self.fetched_urls)


class FocusedCrawler:
    """Classifier-guided crawler over a simulated web, persisting state in minidb."""

    def __init__(
        self,
        fetcher: Fetcher,
        classifier: HierarchicalModel,
        taxonomy: TopicTaxonomy,
        database: Database,
        config: Optional[CrawlerConfig] = None,
    ) -> None:
        self.fetcher = fetcher
        self.classifier = classifier
        self.taxonomy = taxonomy
        self.database = database
        self.config = config or CrawlerConfig()
        if self.config.focus_mode not in ("soft", "hard", "none"):
            raise ValueError(f"unknown focus mode {self.config.focus_mode!r}")
        ordering = self.config.ordering
        if ordering is None:
            ordering = breadth_first() if self.config.focus_mode == "none" else aggressive_discovery()
        self.frontier = Frontier(database, ordering)
        self.trace = CrawlTrace()
        self._tick = 0
        self._since_distillation = 0

    # -- public API ------------------------------------------------------------------
    def add_seeds(self, urls: Iterable[str]) -> None:
        """Seed the crawl with the user's example URLs (the paper's D(C*))."""
        for url in urls:
            self.frontier.add_seed(url)

    def crawl(self, max_pages: Optional[int] = None) -> CrawlTrace:
        """Run the crawl loop until the page budget or the frontier is exhausted."""
        budget = max_pages if max_pages is not None else self.config.max_pages
        misses = 0
        while self.trace.pages_fetched < budget:
            url = self.frontier.pop_next()
            if url is None:
                self.trace.stagnated = True
                break
            outcome = self._visit(url)
            if outcome:
                misses = 0
            else:
                misses += 1
                if misses >= self.config.stagnation_patience:
                    self.trace.stagnated = True
                    break
            if (
                self.config.distill_every
                and self._since_distillation >= self.config.distill_every
            ):
                self.run_distillation()
        return self.trace

    def run_distillation(self) -> DistillationResult:
        """Re-score hubs/authorities over the current crawl graph and boost frontier URLs."""
        result = weighted_hits(
            self._links_from_table(),
            relevance=self._relevance_map(),
            rho=self.config.rho,
            max_iterations=self.config.distill_iterations,
        )
        self._store_scores(result)
        self._boost_hub_neighbours(result)
        self.trace.distillations += 1
        self.trace.last_distillation = result
        self._since_distillation = 0
        return result

    # -- crawl step ---------------------------------------------------------------------
    def _visit(self, url: str) -> bool:
        """Fetch, classify, persist, and expand one URL.  Returns True on success."""
        result = self.fetcher.fetch(url)
        if result.status is FetchStatus.NOT_FOUND:
            self.frontier.record_failure(url, self.config.max_retries, permanent=True)
            self.trace.failed_urls.append(url)
            return False
        if result.status is FetchStatus.SERVER_ERROR:
            self.frontier.record_failure(url, self.config.max_retries)
            self.trace.failed_urls.append(url)
            return False

        self._tick += 1
        frequencies = term_frequencies(result.tokens)
        relevance = self.classifier.relevance(frequencies)
        best_leaf = (
            self.classifier.best_leaf(frequencies) if self.config.record_best_leaf else None
        )
        self.frontier.record_visit(url, relevance, self._tick, kcid=best_leaf)
        self._record_links(url, result.out_links, relevance)
        self._expand(result.out_links, relevance, frequencies)

        self.trace.visits.append(
            PageVisit(
                tick=self._tick,
                url=url,
                relevance=relevance,
                server=result.server,
                out_degree=len(result.out_links),
                best_leaf_cid=best_leaf,
            )
        )
        self.trace.fetched_urls.append(url)
        self._since_distillation += 1
        return True

    def _expand(
        self, out_links: Sequence[str], relevance: float, frequencies: TermFrequencies
    ) -> None:
        """Apply the focus rule to decide whether/with what priority to enqueue out-links."""
        mode = self.config.focus_mode
        if mode == "hard" and not self.classifier.hard_focus_accepts(frequencies):
            return
        priority = relevance if mode != "none" else _UNFOCUSED_PRIORITY
        for target in out_links:
            self.frontier.add_url(target, relevance=priority)

    # -- persistence ----------------------------------------------------------------------
    def _record_links(self, source_url: str, targets: Sequence[str], relevance: float) -> None:
        """Insert LINK rows for the page's out-links and refresh edge weights.

        ``wgt_rev`` of the new edges is the source's relevance (E_B).
        ``wgt_fwd`` (E_F) needs the *destination's* relevance: known
        destinations use their CRAWL relevance, unknown ones inherit the
        source relevance until they are visited; edges pointing *to* this
        page are refreshed now that its relevance is known.
        """
        link_table = self.database.table("LINK")
        source_entry = self.frontier.entry(source_url)
        rows = []
        seen: set[int] = set()
        for target in targets:
            normalized = normalize_url(target)
            target_oid = url_oid(normalized)
            if target_oid in seen or target_oid == source_entry.oid:
                continue
            seen.add(target_oid)
            if target in self.frontier:
                target_entry = self.frontier.entry(target)
                target_sid = target_entry.sid
                forward = (
                    target_entry.relevance if target_entry.status == "visited" else relevance
                )
            else:
                from repro.webgraph.urls import server_sid

                target_sid = server_sid(normalized)
                forward = relevance
            rows.append(
                {
                    "oid_src": source_entry.oid,
                    "sid_src": source_entry.sid,
                    "oid_dst": target_oid,
                    "sid_dst": target_sid,
                    "wgt_fwd": forward,
                    "wgt_rev": relevance,
                }
            )
        if rows:
            link_table.insert_many(rows)
        # Refresh E_F of edges that point at the page we just classified.
        for rid in link_table.lookup_rids("link_dst", (source_entry.oid,)):
            link_table.update_row(rid, {"wgt_fwd": relevance})

    def _links_from_table(self) -> list[Link]:
        schema = self.database.table("LINK").schema
        links = []
        for row in self.database.table("LINK").rows():
            mapping = schema.row_to_mapping(row)
            links.append(
                Link(
                    oid_src=mapping["oid_src"],
                    sid_src=mapping["sid_src"],
                    oid_dst=mapping["oid_dst"],
                    sid_dst=mapping["sid_dst"],
                    wgt_fwd=mapping["wgt_fwd"],
                    wgt_rev=mapping["wgt_rev"],
                )
            )
        return links

    def _relevance_map(self) -> Dict[int, float]:
        relevance: Dict[int, float] = {}
        for url in self.trace.fetched_urls:
            entry = self.frontier.entry(url)
            relevance[entry.oid] = entry.relevance
        return relevance

    def _store_scores(self, result: DistillationResult) -> None:
        hubs = self.database.table("HUBS")
        auth = self.database.table("AUTH")
        hubs.truncate()
        auth.truncate()
        hubs.insert_many({"oid": oid, "score": score} for oid, score in result.hub_scores.items())
        auth.insert_many(
            {"oid": oid, "score": score} for oid, score in result.authority_scores.items()
        )

    def _boost_hub_neighbours(self, result: DistillationResult) -> None:
        """Raise frontier priority of unvisited pages cited by the best hubs (§3.7)."""
        if not result.hub_scores or self.config.hub_boost_top_k <= 0:
            return
        top_hubs = {oid for oid, _ in result.top_hubs(self.config.hub_boost_top_k)}
        by_oid = {self.frontier.entry(u).oid: u for u in self.frontier.known_urls()}
        link_table = self.database.table("LINK")
        schema = link_table.schema
        for hub_oid in top_hubs:
            for row in link_table.lookup("link_src", (hub_oid,)):
                mapping = schema.row_to_mapping(row)
                if mapping["sid_src"] == mapping["sid_dst"]:
                    continue
                target_url = by_oid.get(mapping["oid_dst"])
                if target_url is None:
                    continue
                self.frontier.boost(target_url, self.config.hub_boost_priority)

    # -- convenience accessors ------------------------------------------------------------------
    def top_hubs(self, k: int = 10) -> list[tuple[str, float]]:
        """URL/score pairs of the current best hubs."""
        if self.trace.last_distillation is None:
            self.run_distillation()
        by_oid = {self.frontier.entry(u).oid: u for u in self.frontier.known_urls()}
        return [
            (by_oid.get(oid, str(oid)), score)
            for oid, score in self.trace.last_distillation.top_hubs(k)
        ]

    def top_authorities(self, k: int = 10) -> list[tuple[str, float]]:
        if self.trace.last_distillation is None:
            self.run_distillation()
        by_oid = {self.frontier.entry(u).oid: u for u in self.frontier.known_urls()}
        return [
            (by_oid.get(oid, str(oid)), score)
            for oid, score in self.trace.last_distillation.top_authorities(k)
        ]
