"""Ad-hoc crawl monitoring through SQL (paper §3.1 and §3.7).

One of the paper's practical findings is that keeping crawl state in a
relational database makes monitoring and diagnosis trivial: the authors
plot harvest rate with one GROUP BY query, diagnose the mutual-funds
stagnation with a topic census joined against TAXONOMY, and find pages
the crawler is neglecting with a nested-IN query over HUBS and LINK.
This module packages those queries (adapted to the reproduction's schema,
where ``relevance`` is a probability rather than a log) plus a
stagnation detector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.minidb import Database


@dataclass
class StagnationReport:
    """Diagnosis of a (possibly) stagnating crawl."""

    stagnating: bool
    frontier_size: int
    recent_average_relevance: float
    dominant_kcid: Optional[int]
    dominant_kcid_name: Optional[str]
    dominant_share: float


class CrawlMonitor:
    """Read-only monitoring queries over the CRAWL/LINK/HUBS/TAXONOMY tables."""

    def __init__(self, database: Database) -> None:
        self.database = database

    # -- §3.7: the harvest-rate plot query --------------------------------------------
    def harvest_rate_by_bucket(self, bucket_size: int = 100) -> list[dict]:
        """Average relevance of visited pages per bucket of crawl ticks.

        The paper's applet runs::

            select minute(lastvisited), avg(exp(relevance)) from CRAWL
            where lastvisited + 1 hour > current timestamp
            group by minute(lastvisited) order by minute(lastvisited)

        Crawl progress here is measured in fetch ticks rather than wall
        minutes, and relevance is stored as a probability, so the adapted
        query groups by ``floor(lastvisited / bucket)``.
        """
        return self.database.sql(
            """
            select floor(lastvisited / :bucket) bucket,
                   avg(relevance) avg_relevance,
                   count(*) pages
            from CRAWL
            where status = 'visited'
            group by floor(lastvisited / :bucket)
            order by floor(lastvisited / :bucket)
            """,
            {"bucket": bucket_size},
        )

    # -- §3.7: the topic census that diagnosed the mutual-funds crawl ----------------------
    def topic_census(self, limit: Optional[int] = None) -> list[dict]:
        """Count visited pages per best-leaf class, joined with TAXONOMY names."""
        sql = """
            select CRAWL.kcid kcid, count(oid) cnt, name
            from CRAWL, TAXONOMY
            where CRAWL.kcid = TAXONOMY.kcid and status = 'visited'
            group by CRAWL.kcid, name
            order by cnt desc
        """
        if limit is not None:
            sql += f" limit {int(limit)}"
        return self.database.sql(sql)

    # -- taxonomy subtree census (interval-index window scan) ----------------------------------
    def subtree_census(self, root_kcid: int) -> dict:
        """Visited-page census over one whole taxonomy *subtree*.

        The paper's mutual-funds diagnosis needed "this class or any
        descendant of it" — an ancestor/descendant question the flat
        census can't ask.  The ``in_subtree`` predicate answers it from
        the ``taxonomy_tree`` interval index (one pre/post window range
        scan over the class tree) instead of a recursive parent walk.
        """
        row = self.database.sql(
            """
            select count(*) pages, avg(relevance) avg_relevance
            from CRAWL
            where status = 'visited' and in_subtree(kcid, :root)
            """,
            {"root": root_kcid},
        )[0]
        return {
            "root_kcid": root_kcid,
            "pages": int(row["pages"] or 0),
            "avg_relevance": row["avg_relevance"],
        }

    # -- §3.7: possibly missed neighbours of great hubs -----------------------------------------
    def missed_hub_neighbours(self, hub_score_threshold: float) -> list[dict]:
        """Unvisited URLs cited (cross-server) by hubs scoring above ψ."""
        return self.database.sql(
            """
            select url, relevance from CRAWL
            where oid in
              (select oid_dst from LINK
               where oid_src in (select oid from HUBS where score > :psi)
                 and sid_src <> sid_dst)
              and numtries = 0
            """,
            {"psi": hub_score_threshold},
        )

    def hub_score_percentile(self, percentile: float = 0.9) -> float:
        """The paper's ψ: the given percentile of HUBS scores."""
        rows = self.database.sql("select score from HUBS order by score")
        scores = [row["score"] for row in rows if row["score"] is not None]
        if not scores:
            return 0.0
        index = min(int(percentile * len(scores)), len(scores) - 1)
        return scores[index]

    # -- frontier / stagnation diagnostics ------------------------------------------------------------
    def frontier_size(self) -> int:
        row = self.database.sql(
            "select count(*) n from CRAWL where status = 'frontier'"
        )
        return int(row[0]["n"])

    def visited_count(self) -> int:
        row = self.database.sql("select count(*) n from CRAWL where status = 'visited'")
        return int(row[0]["n"])

    def average_relevance(self, last_n_ticks: Optional[int] = None) -> float:
        if last_n_ticks is None:
            rows = self.database.sql(
                "select avg(relevance) r from CRAWL where status = 'visited'"
            )
        else:
            horizon = self.database.sql(
                "select max(lastvisited) t from CRAWL where status = 'visited'"
            )[0]["t"]
            if horizon is None:
                return 0.0
            rows = self.database.sql(
                "select avg(relevance) r from CRAWL"
                " where status = 'visited' and lastvisited > :cutoff",
                {"cutoff": horizon - last_n_ticks},
            )
        value = rows[0]["r"]
        return float(value) if value is not None else 0.0

    def diagnose_stagnation(
        self,
        relevance_floor: float = 0.2,
        window: int = 200,
    ) -> StagnationReport:
        """Detect stagnation and name the class dominating the recent crawl.

        Mirrors the paper's mutual-funds anecdote: the census showed "the
        neighborhood of most pages on mutual funds contained pages on
        investment in general, which was an ancestor of mutual funds" —
        i.e. a near-miss class dominating the harvest.  The fix (marking
        the ancestor good) is applied by the caller via
        :meth:`repro.taxonomy.tree.TopicTaxonomy.add_good`.
        """
        frontier = self.frontier_size()
        recent = self.average_relevance(last_n_ticks=window)
        census = self.topic_census(limit=1)
        dominant_kcid = census[0]["kcid"] if census else None
        dominant_name = census[0]["name"] if census else None
        visited = self.visited_count()
        share = (census[0]["cnt"] / visited) if census and visited else 0.0
        stagnating = frontier == 0 or recent < relevance_floor
        return StagnationReport(
            stagnating=stagnating,
            frontier_size=frontier,
            recent_average_relevance=recent,
            dominant_kcid=dominant_kcid,
            dominant_kcid_name=dominant_name,
            dominant_share=share,
        )
