"""Crawl orderings: how the frontier decides what to fetch next (paper §3.2).

The paper stresses that the ordering is just data: "New work is checked
out from the CRAWL table in the order (numtries ascending, relevance
descending, serverload ascending)" in aggressive discovery mode, and
other lexicographic orderings serve crawl maintenance — changing policy
is a one-line change, not a code rewrite.  A :class:`CrawlOrdering` is a
list of ``(column, ascending)`` pairs evaluated against the frontier
record for a URL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping


@dataclass(frozen=True)
class CrawlOrdering:
    """A lexicographic ordering over CRAWL columns (smaller keys pop first).

    ``buckets`` optionally coarsens a column before comparison (integer
    division by the bucket size).  The paper describes ``serverload`` as "a
    crude and lazily updated estimate" whose only job is to stop the
    crawler "going depth-first into one or a few sites"; bucketing keeps it
    a politeness back-stop instead of a dominant signal, which matters at
    simulation scale where topic communities span far fewer servers than on
    the real web (see DESIGN.md).
    """

    name: str
    keys: tuple[tuple[str, bool], ...]
    buckets: tuple[tuple[str, int], ...] = ()

    def sort_key(self, record: Mapping[str, Any]) -> tuple:
        """Build the comparable key for one frontier record.

        Missing/None values sort as zero.  Descending columns are negated,
        which is valid because every ordering column is numeric.
        """
        bucket_map = dict(self.buckets)
        parts = []
        for column, ascending in self.keys:
            value = record.get(column)
            if value is None:
                value = 0
            bucket = bucket_map.get(column)
            if bucket:
                value = int(value) // bucket
            parts.append(value if ascending else -value)
        return tuple(parts)

    def columns(self) -> list[str]:
        return [column for column, _ in self.keys]

    def compile_entry_key(self):
        """A fast key function over :class:`~repro.crawler.frontier.FrontierEntry`.

        Equivalent to ``sort_key(record)`` on the entry's record form, but
        reads entry attributes directly and resolves buckets once, instead
        of building an 8-field dict per heap push.  ``serverload`` is
        passed in by the caller (it is the lazily shared per-server
        counter, not the entry's possibly stale copy).
        """
        bucket_map = dict(self.buckets)
        specs = tuple(
            (column, ascending, bucket_map.get(column, 0))
            for column, ascending in self.keys
        )

        def entry_key(entry, serverload) -> tuple:
            parts = []
            for column, ascending, bucket in specs:
                value = serverload if column == "serverload" else getattr(entry, column)
                if value is None:
                    value = 0
                if bucket:
                    value = int(value) // bucket
                parts.append(value if ascending else -value)
            return tuple(parts)

        return entry_key


@dataclass(frozen=True)
class FetchPolicy:
    """Concurrency policy of the async fetch stage (how hard to hit the network).

    The crawl *ordering* decides what to fetch next; the fetch policy
    decides how many of those fetches may be in flight at once, globally
    and per server.  The per-server cap is the async-era form of the
    paper's ``serverload`` politeness concern: with dozens of fetches
    outstanding, a popular host would otherwise absorb the whole window.
    Zero means "no explicit limit" for both knobs.
    """

    max_inflight: int = 0
    per_server_inflight: int = 0

    def __post_init__(self) -> None:
        if self.max_inflight < 0 or self.per_server_inflight < 0:
            raise ValueError("inflight limits must be >= 0 (0 = unlimited)")

    def effective_inflight(self, round_size: int) -> int:
        """The global in-flight window for a round of *round_size* URLs."""
        if self.max_inflight <= 0:
            return max(1, round_size)
        return max(1, min(self.max_inflight, round_size))


def aggressive_discovery(serverload_bucket: int = 16) -> CrawlOrdering:
    """The paper's default: seek out new resources as fast as possible.

    Checkout order is (numtries ascending, relevance descending,
    serverload ascending); ``serverload_bucket`` coarsens the politeness
    column (pass 1 for the strict lexicographic form).
    """
    return CrawlOrdering(
        name="aggressive_discovery",
        keys=(("numtries", True), ("relevance", False), ("serverload", True)),
        buckets=(("serverload", serverload_bucket),) if serverload_bucket > 1 else (),
    )


def relevance_only() -> CrawlOrdering:
    """Ablation: ignore numtries/serverload, order purely by relevance."""
    return CrawlOrdering(name="relevance_only", keys=(("relevance", False),))


def breadth_first() -> CrawlOrdering:
    """The unfocused baseline: first-come, first-served (by discovery order)."""
    return CrawlOrdering(name="breadth_first", keys=(("discovered", True),))


def crawl_maintenance() -> CrawlOrdering:
    """Revisit ordering suggested in §3.2: stalest pages with the best hubs first."""
    return CrawlOrdering(
        name="crawl_maintenance",
        keys=(("lastvisited", True), ("hub_score", False)),
    )


def recovery_ordering() -> CrawlOrdering:
    """The other §3.2 maintenance ordering: retry often-failed, high-authority pages."""
    return CrawlOrdering(
        name="recovery",
        keys=(("numtries", False), ("authority_score", False), ("relevance", False)),
    )


#: Registry used by configuration files / CLI arguments.
ORDERINGS: dict[str, CrawlOrdering] = {
    ordering().name: ordering()
    for ordering in (
        aggressive_discovery,
        relevance_only,
        breadth_first,
        crawl_maintenance,
        recovery_ordering,
    )
}


def ordering_by_name(name: str) -> CrawlOrdering:
    try:
        return ORDERINGS[name]
    except KeyError:
        raise KeyError(
            f"unknown crawl ordering {name!r}; available: {sorted(ORDERINGS)}"
        ) from None
