"""crawler: frontier management, the focused crawl loop, the unfocused baseline, monitoring."""

from .focused import CrawlerConfig, CrawlTrace, FocusedCrawler, PageVisit
from .frontier import Frontier, FrontierEntry
from .monitor import CrawlMonitor, StagnationReport
from .policies import (
    ORDERINGS,
    CrawlOrdering,
    aggressive_discovery,
    breadth_first,
    crawl_maintenance,
    ordering_by_name,
    recovery_ordering,
    relevance_only,
)
from .unfocused import UnfocusedCrawler

__all__ = [
    "CrawlMonitor",
    "CrawlOrdering",
    "CrawlTrace",
    "CrawlerConfig",
    "FocusedCrawler",
    "Frontier",
    "FrontierEntry",
    "ORDERINGS",
    "PageVisit",
    "StagnationReport",
    "UnfocusedCrawler",
    "aggressive_discovery",
    "breadth_first",
    "crawl_maintenance",
    "ordering_by_name",
    "recovery_ordering",
    "relevance_only",
]
