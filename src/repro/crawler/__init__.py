"""crawler: frontier management, the crawl engine, the unfocused baseline, monitoring."""

from .engine import CrawlEngine, CrawlerConfig, CrawlTrace, PageVisit
from .focused import FocusedCrawler
from .frontier import Frontier, FrontierEntry
from .monitor import CrawlMonitor, StagnationReport
from .policies import (
    ORDERINGS,
    CrawlOrdering,
    aggressive_discovery,
    breadth_first,
    crawl_maintenance,
    ordering_by_name,
    recovery_ordering,
    relevance_only,
)
from .sharded import ShardedCrawler, ShardedEngine, build_sharded_crawler
from .unfocused import UnfocusedCrawler

__all__ = [
    "CrawlEngine",
    "CrawlMonitor",
    "CrawlOrdering",
    "CrawlTrace",
    "CrawlerConfig",
    "FocusedCrawler",
    "Frontier",
    "FrontierEntry",
    "ORDERINGS",
    "PageVisit",
    "ShardedCrawler",
    "ShardedEngine",
    "StagnationReport",
    "UnfocusedCrawler",
    "aggressive_discovery",
    "breadth_first",
    "build_sharded_crawler",
    "crawl_maintenance",
    "ordering_by_name",
    "recovery_ordering",
    "relevance_only",
]
