"""The unfocused baseline crawler (paper Figure 5a).

A "standard crawler" in the paper's comparison: it starts from exactly
the same highly relevant seed URLs as the focused crawler, still runs the
classifier so the relevance of what it fetches can be *measured*, but
ignores relevance entirely when choosing what to fetch next — it simply
expands pages in breadth-first (discovery) order.  On a web where
relevant pages are a small minority this crawler is "completely lost
within the next hundred page fetches".
"""

from __future__ import annotations

from typing import Optional

from repro.classifier.model import HierarchicalModel
from repro.minidb import Database
from repro.taxonomy.tree import TopicTaxonomy
from repro.webgraph.fetch import Fetcher

from .focused import CrawlerConfig, FocusedCrawler
from .policies import breadth_first


class UnfocusedCrawler(FocusedCrawler):
    """A standard breadth-first crawler with relevance measurement only."""

    def __init__(
        self,
        fetcher: Fetcher,
        classifier: HierarchicalModel,
        taxonomy: TopicTaxonomy,
        database: Database,
        config: Optional[CrawlerConfig] = None,
    ) -> None:
        config = config or CrawlerConfig()
        config.focus_mode = "none"
        if config.ordering is None:
            config.ordering = breadth_first()
        # An unfocused crawler has no use for distillation-driven priorities.
        config.distill_every = 0
        super().__init__(fetcher, classifier, taxonomy, database, config)
