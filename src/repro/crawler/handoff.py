"""Cross-shard handoff: the message layer of the sharded crawl engine.

The sharded engine (:mod:`repro.crawler.sharded`) partitions the crawl
by server: shard ``i`` owns every host whose ``sid % N == i``, and with
it that host's frontier entries, CRAWL rows, fetch draws, and — because
LINK rows are routed by *destination* — the incoming half of the link
graph.  Out-links discovered on one shard that hash to another are not
applied directly; they are handed off as :class:`HandoffRecord` batches
through ordered per-``(src, dst)`` queues and applied at the round
barrier in one canonical order.

That canonical order is the whole determinism story, so it is defined
here, once:

* every record carries ``(round, pos, link_idx)`` — the round number,
  the *global* position of the citing page in the round's merged
  checkout order, and the index of the link within that page's
  de-duplicated out-link list;
* receivers merge the per-source queues by that key before applying
  (:func:`merge_handoffs`), so the apply order is a pure function of
  the crawl content — never of queue arrival timing;
* discovery numbers are assigned by the coordinator over the same
  canonical order, so breadth-first style orderings are shard-count
  invariant.

Messages are plain picklable dataclasses: the same objects cross a
``multiprocessing`` pipe to spawned workers or a :class:`MessagePipe`
within the in-process runner (whose delivery *schedule* tests permute
to prove timing independence).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.webgraph.urls import server_sid

__all__ = [
    "ApplyLinks",
    "ApplyRound",
    "CandidateReply",
    "CheckoutRequest",
    "HandoffRecord",
    "MessagePipe",
    "OutcomeRecord",
    "OutcomeReply",
    "SelectionMsg",
    "merge_handoffs",
    "shard_of_host",
    "shard_of_sid",
]


def shard_of_sid(sid: int, shards: int) -> int:
    """The shard owning server id *sid* (blake2b-derived, process-stable)."""
    return sid % shards


def shard_of_host(host_or_url: str, shards: int) -> int:
    """The shard owning *host* (or the host of a URL)."""
    return server_sid(host_or_url) % shards


@dataclass
class HandoffRecord:
    """One out-link crossing (or staying within) a shard boundary.

    Carries everything the destination shard needs to apply the edge
    without a foreign lookup: the full LINK row identity (the source
    shard knows both sids — ``sid`` is a pure URL hash), the citing
    page's relevance (``wgt_rev``, and the ``wgt_fwd`` fallback when the
    destination is unvisited), and the coordinator-assigned discovery
    number for the frontier insert.  ``expand`` is False when the hard
    focus rule rejected the citing page: the LINK row is still written,
    but the target does not enter the frontier (exactly the batched
    semantics, where ``_expand`` is skipped but ``_link_rows`` is not).
    """

    round: int
    pos: int          # global position of the citing page within the round
    link_idx: int     # index within the citing page's deduped out-links
    src_oid: int
    src_sid: int
    dst_url: str      # normalised
    dst_oid: int
    dst_sid: int
    src_relevance: float
    discovered: int   # coordinator-assigned discovery number
    expand: bool = True
    priority: float = 0.0  # frontier priority when expanding

    def sort_key(self) -> Tuple[int, int, int]:
        return (self.round, self.pos, self.link_idx)


def merge_handoffs(
    queues: Sequence[Sequence[HandoffRecord]],
) -> List[HandoffRecord]:
    """Merge per-source handoff queues into the canonical apply order.

    Each queue is already internally ordered (FIFO per ``(src, dst)``
    pair); the merge by ``(round, pos, link_idx)`` makes the combined
    order independent of the order the queues were *delivered* in —
    the property the determinism tests drive schedules against.
    """
    merged: List[HandoffRecord] = []
    for queue in queues:
        merged.extend(queue)
    merged.sort(key=HandoffRecord.sort_key)
    return merged


# -- coordinator <-> shard round messages -------------------------------------------


@dataclass
class CheckoutRequest:
    """Coordinator -> shard: propose your best *k* frontier candidates."""

    round: int
    k: int


@dataclass
class CandidateReply:
    """Shard -> coordinator: locally checked-out candidates, best first.

    ``candidates`` are ``(key, oid, url)`` with *key* the frontier
    ordering key at checkout time — value tuples, so the coordinator's
    merge compares them exactly as the frontier heap would.
    """

    round: int
    shard: int
    candidates: List[Tuple[tuple, int, str]] = field(default_factory=list)


@dataclass
class SelectionMsg:
    """Coordinator -> shard: which of your candidates made the global top-K.

    ``selected`` is ``(pos, url)`` in global position order; ``rejected``
    URLs return to the shard's frontier untouched.
    """

    round: int
    selected: List[Tuple[int, str]] = field(default_factory=list)
    rejected: List[str] = field(default_factory=list)


@dataclass
class OutcomeRecord:
    """One fetch outcome, reported in global position order."""

    pos: int
    url: str
    oid: int
    sid: int
    ok: bool
    permanent: bool = False       # NOT_FOUND vs transient SERVER_ERROR
    server: str = ""
    relevance: float = 0.0
    best_leaf: Optional[int] = None
    hard_accepts: bool = True
    out_degree: int = 0
    #: De-duplicated non-self out-link targets, in out-link order:
    #: ``(normalized_url, oid, sid)`` — resolved once, on the fetching shard.
    targets: List[Tuple[str, int, int]] = field(default_factory=list)


@dataclass
class OutcomeReply:
    """Shard -> coordinator: the round's fetch/classify outcomes plus stats."""

    round: int
    shard: int
    outcomes: List[OutcomeRecord] = field(default_factory=list)
    #: FetchStats deltas for this round (attempts/successes/... floats/ints).
    fetch_stats: Dict[str, Any] = field(default_factory=dict)
    #: Per-stage wall-clock seconds spent by this shard this round.
    timings: Dict[str, float] = field(default_factory=dict)


@dataclass
class ApplyLinks:
    """One per-``(src, dst)`` handoff queue batch inside an apply message."""

    src_shard: int
    records: List[HandoffRecord] = field(default_factory=list)


@dataclass
class ApplyRound:
    """Coordinator -> shard: commit your slice of the round.

    Applied inside one frontier round-buffer, in this order (which the
    receiver derives deterministically, not from field arrival):

    1. failures (checkout order) — retry/dead bookkeeping;
    2. visits ``(url, tick, relevance, best_leaf, pos)`` interleaved
       with the frontier expansions of the merged handoff records by
       global position — a page's visit commits before its own
       out-links expand, before the next page's visit, exactly the
       batched engine's per-page walk (the lazily-snapshotted
       ``serverload`` column is order-sensitive);
    3. link inserts — the per-source queues merged canonically; the
       destination shard resolves ``wgt_fwd`` locally (destination's
       relevance when visited, else the citing page's);
    4. ``wgt_fwd`` refresh of edges into this round's locally visited
       pages (visit order), mirroring ``BufferedLinkWriter.flush``;
    5. when the round distilled: HUBS/AUTH sublist replacement and §3.7
       hub-neighbour boosts over the local LINK partition.
    """

    round: int
    failures: List[Tuple[str, bool]] = field(default_factory=list)  # (url, permanent)
    visits: List[Tuple[str, int, float, Optional[int], int]] = field(
        default_factory=list
    )
    links: List[ApplyLinks] = field(default_factory=list)
    #: When set, replace this shard's HUBS/AUTH slices: (hub_items, auth_items).
    scores: Optional[Tuple[List[Tuple[int, float]], List[Tuple[int, float]]]] = None
    #: §3.7: top-hub oids to scan the local LINK partition for, plus the floor.
    boost_hubs: List[int] = field(default_factory=list)
    boost_priority: float = 0.0
    #: Durable shards append a WAL cut marker for this round after applying.
    log_cut: bool = False


class MessagePipe:
    """An in-process FIFO standing in for a worker's message pipe.

    The in-process runner gives each shard one inbox pipe; ``send`` is
    fire-and-forget and messages are processed only when the runner
    *drains* the pipe — which a delivery schedule may delay arbitrarily
    relative to other shards.  Per-pipe FIFO is the only ordering
    guarantee, matching a ``multiprocessing`` pipe.
    """

    def __init__(self) -> None:
        self._queue: List[Any] = []

    def send(self, message: Any) -> None:
        self._queue.append(message)

    def pending(self) -> int:
        return len(self._queue)

    def drain(self) -> List[Any]:
        messages, self._queue = self._queue, []
        return messages
