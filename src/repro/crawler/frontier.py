"""The crawl frontier: unvisited URLs prioritised by a crawl ordering.

The authoritative record of every known URL is the CRAWL table (so ad-hoc
SQL can inspect the frontier and so triggers/monitoring work as in the
paper).  The Frontier keeps an in-memory priority structure mirroring
the ordering over frontier-status rows — the role an index ordering
plays in DB2 — with lazy invalidation when priorities change.

Two interchangeable structures implement that priority order:

* :class:`HeapIndex` — a single binary heap over the full ordering key,
  the reference implementation (the pre-bucketing behaviour, bit for
  bit);
* :class:`BucketedIndex` — the default: tuples are partitioned into
  priority *bands* derived from the leading ordering columns (integer
  columns pass through losslessly; the first float column — relevance
  under the default orderings — is quantised into
  ``_RELEVANCE_BANDS`` bands) and each band keeps its own small heap
  over the full key.  Because the band function is monotone in the
  lexicographic key order, draining bands in band order yields exactly
  the heap's total order — property tests pin the equivalence — while
  pushes and priority reassignments pay ``O(log bucket)`` instead of
  ``O(log everything)`` and a ``pop_batch(k)`` drain touches only the
  leading band(s).

Ties under the crawl ordering are broken by page oid, which is a stable
function of the URL: checkout order therefore does not depend on
insertion history, so batched crawls are reproducible under a fixed seed
regardless of how a round interleaved its ``add_url`` calls.

For the batched crawl engine the frontier supports *round buffering*
(:meth:`begin_batch` / :meth:`flush_batch`): in-memory entries stay
authoritative at all times, while CRAWL-table writes accumulate and are
flushed once per round through ``insert_many`` / ``update_rows``.  The
cross-round prefetch pipeline additionally uses :meth:`peek_batch` — a
side-effect-free preview of the next checkout — to speculate on future
rounds without perturbing entry state.
"""

from __future__ import annotations

import heapq
import math
import os
from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.minidb import Database
from repro.minidb.pages import PageId, RecordId
from repro.webgraph.urls import normalize_url, server_sid, url_oid

from .policies import CrawlOrdering, aggressive_discovery

#: Below this index size, compaction is never worth the rebuild.
_COMPACT_MIN_HEAP = 64

#: Quantisation of the first float ordering column into priority bands.
_RELEVANCE_BANDS = 32

#: Ordering columns whose key values are integers (lossless band
#: components) vs. floats (quantised; banding stops at the first one —
#: a lossy component deeper in the band would break the total order).
_INT_ORDER_COLUMNS = frozenset({"numtries", "serverload", "discovered", "lastvisited"})
_FLOAT_ORDER_COLUMNS = frozenset({"relevance", "hub_score", "authority_score"})

#: Priority-index implementations accepted by ``Frontier(index=...)``.
FRONTIER_INDEXES = ("bucketed", "heap")

#: One prioritised tuple: (ordering key, oid tie-break, url).
_IndexItem = Tuple[tuple, int, str]


def _default_frontier_index() -> str:
    """Session default: ``REPRO_FRONTIER_INDEX`` env var, else ``"bucketed"``."""
    return os.environ.get("REPRO_FRONTIER_INDEX", "bucketed")


class HeapIndex:
    """The reference priority structure: one binary heap over the full key."""

    name = "heap"

    def __init__(self) -> None:
        self._heap: List[_IndexItem] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, item: _IndexItem) -> None:
        heapq.heappush(self._heap, item)

    def pop_min(self) -> Optional[_IndexItem]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)

    def clear(self) -> None:
        self._heap = []

    def stats(self) -> Dict[str, int]:
        return {"buckets": 1, "largest_bucket": len(self._heap)}


def compile_band_of(ordering: CrawlOrdering) -> Callable[[tuple], tuple]:
    """The band function of *ordering*: monotone in lexicographic key order.

    Leading integer columns contribute their exact key value (lossless,
    so banding may continue past them); the first float column
    contributes ``floor(value * _RELEVANCE_BANDS)`` and terminates the
    band — any further component would compare *within* a lossy cell,
    where the true key order is no longer determined by the band.
    Monotonicity argument: if ``band(a) < band(b)`` then the first
    differing band component is either an exact key value (so the keys
    differ the same way) or the quantised float (``floor`` is monotone,
    so ``floor(x) < floor(y)`` implies ``x < y``); either way ``a < b``
    lexicographically.  Keys that band equally are ordered by the
    per-bucket heap over the full tuple.
    """
    plan: List[bool] = []  # per leading component: True = lossless int
    for column, _ascending in ordering.keys:
        if column in _INT_ORDER_COLUMNS:
            plan.append(True)
            continue
        if column in _FLOAT_ORDER_COLUMNS:
            plan.append(False)
        break
    depth = len(plan)

    def band_of(key: tuple) -> tuple:
        parts = []
        for position in range(depth):
            value = key[position]
            if plan[position]:
                parts.append(int(value))
            else:
                parts.append(math.floor(float(value) * _RELEVANCE_BANDS))
        return tuple(parts)

    return band_of


class BucketedIndex:
    """Relevance-banded buckets, each an independent heap over the full key.

    ``_band_heap`` orders the live band ids; a band id is pushed once
    when its bucket is created and retired when the (empty) bucket
    reaches the top of the band heap — buckets only ever drain at the
    top, so at most one live instance of each id exists.
    """

    name = "bucketed"

    def __init__(self, band_of: Callable[[tuple], tuple]) -> None:
        self._band_of = band_of
        self._buckets: Dict[tuple, List[_IndexItem]] = {}
        self._band_heap: List[tuple] = []
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def push(self, item: _IndexItem) -> None:
        band = self._band_of(item[0])
        bucket = self._buckets.get(band)
        if bucket is None:
            bucket = self._buckets[band] = []
            heapq.heappush(self._band_heap, band)
        heapq.heappush(bucket, item)
        self._size += 1

    def pop_min(self) -> Optional[_IndexItem]:
        while self._band_heap:
            band = self._band_heap[0]
            bucket = self._buckets.get(band)
            if not bucket:
                heapq.heappop(self._band_heap)
                self._buckets.pop(band, None)
                continue
            self._size -= 1
            return heapq.heappop(bucket)
        return None

    def clear(self) -> None:
        self._buckets = {}
        self._band_heap = []
        self._size = 0

    def stats(self) -> Dict[str, int]:
        sizes = [len(bucket) for bucket in self._buckets.values() if bucket]
        return {
            "buckets": len(sizes),
            "largest_bucket": max(sizes, default=0),
        }


def _build_index(name: str, ordering: CrawlOrdering):
    if name == "heap":
        return HeapIndex()
    if name == "bucketed":
        return BucketedIndex(compile_band_of(ordering))
    raise ValueError(
        f"unknown frontier index {name!r}; expected one of {FRONTIER_INDEXES}"
    )


@dataclass
class FrontierEntry:
    """In-memory mirror of one CRAWL row plus bookkeeping for ordering."""

    url: str
    oid: int
    sid: int
    relevance: float = 0.0
    numtries: int = 0
    serverload: int = 0
    discovered: int = 0
    lastvisited: Optional[int] = None
    hub_score: float = 0.0
    authority_score: float = 0.0
    status: str = "frontier"
    rid: Optional[RecordId] = None

    def as_record(self) -> Dict[str, Any]:
        return {
            "relevance": self.relevance,
            "numtries": self.numtries,
            "serverload": self.serverload,
            "discovered": self.discovered,
            "lastvisited": self.lastvisited,
            "hub_score": self.hub_score,
            "authority_score": self.authority_score,
        }


class Frontier:
    """Priority frontier backed by the CRAWL table."""

    def __init__(
        self,
        database: Database,
        ordering: Optional[CrawlOrdering] = None,
        index: Optional[str] = None,
    ) -> None:
        self.database = database
        self.ordering = ordering or aggressive_discovery()
        self._entry_key = self.ordering.compile_entry_key()
        self._index_name = index or _default_frontier_index()
        if self._index_name not in FRONTIER_INDEXES:
            raise ValueError(
                f"unknown frontier index {self._index_name!r}; "
                f"expected one of {FRONTIER_INDEXES}"
            )
        # CRAWL rows are built positionally for bulk loading; pin the order.
        crawl_columns = tuple(database.table("CRAWL").schema.column_names)
        expected = (
            "oid", "url", "sid", "relevance", "numtries",
            "serverload", "lastvisited", "kcid", "status",
        )
        if crawl_columns != expected:
            raise ValueError(f"CRAWL schema order {crawl_columns} != {expected}")
        self._entries: Dict[str, FrontierEntry] = {}
        #: oid -> normalized URL of every known entry (distillation results
        #: are keyed by oid; this avoids rebuilding the inverse per lookup).
        self._url_of_oid: Dict[int, str] = {}
        self._server_load: Dict[int, int] = {}
        self._index = _build_index(self._index_name, self.ordering)
        # Index hygiene: the structure is lazily invalidated, so it
        # accumulates tuples for dead/visited entries and superseded
        # priorities.  A live count of frontier-status entries (maintained
        # on every status transition) makes the dead fraction O(1) to
        # estimate; when dead tuples outnumber live ones the index is
        # rebuilt from scratch, so a pop_batch drain costs
        # O(k + dead-since-last-compaction), never O(total push history).
        self._frontier_count = 0
        self._heap_tuples_scanned = 0
        self._heap_compactions = 0
        # A plain int (not itertools.count) so checkpoints can persist it.
        self._next_discovered = 0
        # Round buffering (batched engine): pending CRAWL inserts/updates.
        self._buffering = False
        self._pending_new: list[FrontierEntry] = []
        self._pending_changes: Dict[str, Dict[str, Any]] = {}

    # -- policy ------------------------------------------------------------------
    def set_ordering(self, ordering: CrawlOrdering) -> None:
        """Switch crawl policy dynamically (the paper's one-line policy change)."""
        self.ordering = ordering
        self._entry_key = ordering.compile_entry_key()
        self._index = _build_index(self._index_name, ordering)
        self._rebuild_heap()

    def _rebuild_heap(self) -> None:
        self._index.clear()
        count = 0
        for url, entry in self._entries.items():
            if entry.status == "frontier":
                self._push(entry)
                count += 1
        self._frontier_count = count

    def _set_status(self, entry: FrontierEntry, status: str) -> None:
        """Transition an entry's status, keeping the live frontier count exact."""
        if entry.status == "frontier":
            self._frontier_count -= 1
        if status == "frontier":
            self._frontier_count += 1
        entry.status = status

    def _maybe_compact_heap(self) -> None:
        """Rebuild the index when dead tuples outnumber live frontier entries."""
        if (
            len(self._index) >= _COMPACT_MIN_HEAP
            and len(self._index) > 2 * self._frontier_count
        ):
            self._rebuild_heap()
            self._heap_compactions += 1

    def heap_stats(self) -> Dict[str, Any]:
        """Hygiene counters: index size, live entries, tuples scanned, compactions.

        ``heap_size`` keeps its historical name (total prioritised tuples,
        whatever the structure); ``index``/``buckets``/``largest_bucket``
        describe the configured priority structure.
        """
        stats: Dict[str, Any] = {
            "heap_size": len(self._index),
            "frontier_size": self._frontier_count,
            "tuples_scanned": self._heap_tuples_scanned,
            "compactions": self._heap_compactions,
            "index": self._index.name,
        }
        stats.update(self._index.stats())
        return stats

    # -- membership --------------------------------------------------------------------
    def __len__(self) -> int:
        return self._frontier_count

    def __contains__(self, url: str) -> bool:
        return normalize_url(url) in self._entries

    def known_urls(self) -> list[str]:
        return list(self._entries)

    def entry(self, url: str) -> FrontierEntry:
        return self._entries[normalize_url(url)]

    def get_normalized(self, normalized_url: str) -> Optional[FrontierEntry]:
        """Entry lookup for a URL the caller has *already normalised*.

        One dict probe; the hot link-recording path normalises every
        target anyway and should not pay for it twice.
        """
        return self._entries.get(normalized_url)

    def is_empty(self) -> bool:
        return len(self) == 0

    # -- adding and updating ----------------------------------------------------------------
    def add_url(self, url: str, relevance: float = 0.0) -> FrontierEntry:
        """Register a URL; raises its priority if it is already known and unvisited.

        ``relevance`` here is the *crawl priority* of the unvisited page —
        for soft focus, the relevance of the page(s) citing it.
        """
        normalized = normalize_url(url)
        existing = self._entries.get(normalized)
        if existing is not None:
            self._raise_priority(existing, relevance)
            return existing
        return self._add_entry(normalized, url_oid(normalized), server_sid(normalized), relevance)

    def _raise_priority(self, entry: FrontierEntry, relevance: float) -> None:
        if entry.status == "frontier" and relevance > entry.relevance:
            entry.relevance = relevance
            self._sync_row(entry, {"relevance": relevance})
            self._push(entry)

    def _add_entry(
        self,
        normalized: str,
        oid: int,
        sid: int,
        relevance: float,
        discovered: Optional[int] = None,
    ) -> FrontierEntry:
        entry = FrontierEntry(
            url=normalized,
            oid=oid,
            sid=sid,
            relevance=relevance,
            serverload=self._server_load.get(sid, 0),
            discovered=self._next_discovered if discovered is None else discovered,
        )
        # Sharded checkout passes coordinator-assigned discovery numbers
        # (monotone in the global round order); keep the local counter
        # strictly ahead so the two numbering sources can never collide.
        self._next_discovered = max(self._next_discovered + 1, entry.discovered + 1)
        self._frontier_count += 1
        if self._buffering:
            self._pending_new.append(entry)
        else:
            entry.rid = self.database.table("CRAWL").insert(self._crawl_row(entry))
        self._entries[normalized] = entry
        self._url_of_oid[oid] = normalized
        self._push(entry)
        return entry

    def url_of_oid(self, oid: int) -> Optional[str]:
        """The known URL with object id *oid*, if any (distillation views)."""
        return self._url_of_oid.get(oid)

    def add_many(self, targets, relevance: float) -> None:
        """Bulk :meth:`add_url` over pre-resolved ``(normalized, oid, sid)`` triples.

        The link-recording path has already normalised and hashed every
        out-link target; this entry point skips re-deriving them.  Per
        target the semantics are exactly :meth:`add_url`'s (shared
        helpers, so the two can never drift apart).
        """
        entries = self._entries
        for normalized, oid, sid in targets:
            existing = entries.get(normalized)
            if existing is not None:
                self._raise_priority(existing, relevance)
            else:
                self._add_entry(normalized, oid, sid, relevance)

    def add_many_discovered(self, targets, relevance: float) -> None:
        """:meth:`add_many` over ``(normalized, oid, sid, discovered)`` quads.

        The sharded engine's shard-aware checkout: each shard owns only a
        slice of the frontier, so discovery numbers — which drive the
        breadth-first ordering — are assigned by the coordinator over the
        round's *global* expansion order and passed through here.  Known
        targets keep their original number (exactly like ``add_many``);
        new ones adopt the coordinator's.
        """
        entries = self._entries
        for normalized, oid, sid, discovered in targets:
            existing = entries.get(normalized)
            if existing is not None:
                self._raise_priority(existing, relevance)
            else:
                self._add_entry(normalized, oid, sid, relevance, discovered=discovered)

    def _crawl_row(self, entry: FrontierEntry) -> tuple:
        """The entry's CRAWL row, positional in the pinned schema order."""
        status = "frontier" if entry.status == "in_flight" else entry.status
        return (
            entry.oid,
            entry.url,
            entry.sid,
            entry.relevance,
            entry.numtries,
            entry.serverload,
            entry.lastvisited,
            None,  # kcid: unknown until the page is classified
            status,
        )

    def add_seed(self, url: str) -> FrontierEntry:
        """Seeds (the examples D(C*)) enter with maximal priority."""
        return self.add_url(url, relevance=1.0)

    def boost(self, url: str, relevance: float) -> None:
        """Raise the priority of an unvisited URL (used by hub-neighbour boosting)."""
        normalized = normalize_url(url)
        entry = self._entries.get(normalized)
        if entry is None or entry.status != "frontier":
            return
        if relevance > entry.relevance:
            entry.relevance = relevance
            self._sync_row(entry, {"relevance": relevance})
            self._push(entry)

    def update_scores(self, url: str, hub_score: float = 0.0, authority_score: float = 0.0) -> None:
        """Attach distillation scores (used by maintenance orderings)."""
        entry = self._entries.get(normalize_url(url))
        if entry is None:
            return
        entry.hub_score = hub_score
        entry.authority_score = authority_score
        if entry.status == "frontier":
            self._push(entry)

    def record_failure(self, url: str, max_retries: int, permanent: bool = False) -> None:
        """Record a failed fetch; the URL is retried unless exhausted or permanent."""
        entry = self.entry(url)
        entry.numtries += 1
        if permanent or entry.numtries > max_retries:
            self._set_status(entry, "dead")
        else:
            self._set_status(entry, "frontier")
            self._push(entry)
        self._sync_row(entry, {"numtries": entry.numtries, "status": entry.status})

    def record_visit(
        self,
        url: str,
        relevance: float,
        tick: int,
        kcid: Optional[int] = None,
    ) -> FrontierEntry:
        """Mark a URL visited, store its measured relevance and best leaf class."""
        entry = self.entry(url)
        self._set_status(entry, "visited")
        entry.relevance = relevance
        entry.numtries += 1
        entry.lastvisited = tick
        self._server_load[entry.sid] = self._server_load.get(entry.sid, 0) + 1
        entry.serverload = self._server_load[entry.sid]
        self._sync_row(
            entry,
            {
                "relevance": relevance,
                "numtries": entry.numtries,
                "lastvisited": tick,
                "kcid": kcid,
                "status": "visited",
                "serverload": entry.serverload,
            },
        )
        return entry

    # -- popping --------------------------------------------------------------------------
    def pop_next(self) -> Optional[str]:
        """Return the best frontier URL under the current ordering, or None if empty."""
        batch = self.pop_batch(1)
        return batch[0] if batch else None

    def pop_batch(self, k: int) -> list[str]:
        """Check out up to *k* frontier URLs in one heap drain.

        One continuous drain of the heap, not *k* independent top-level
        pops: every popped entry is validated lazily (stale priorities are
        re-queued, non-frontier entries discarded) and accepted entries are
        marked ``in_flight`` so they cannot be returned twice within the
        drain.  Ties under the ordering come out in stable oid order
        (see :meth:`_push`), so a batched checkout is deterministic.
        """
        self._maybe_compact_heap()
        checked_out: list[str] = []
        while len(checked_out) < k:
            item = self._index.pop_min()
            if item is None:
                break
            key, _oid, url = item
            self._heap_tuples_scanned += 1
            entry = self._entries.get(url)
            if entry is None or entry.status != "frontier":
                continue
            current_key = self._current_key(entry)
            if key != current_key:
                # Priority changed since this entry was pushed (e.g. the
                # lazily-updated serverload moved): re-queue at the current
                # priority instead of losing the URL.
                self._push(entry)
                continue
            self._set_status(entry, "in_flight")
            checked_out.append(url)
        return checked_out

    def peek_batch(self, k: int) -> list[str]:
        """A side-effect-free preview of what :meth:`pop_batch(k)` would return.

        Drains the index exactly as a checkout would — lazily re-keying
        stale tuples, discarding dead ones — but never touches entry
        status, and pushes the accepted tuples straight back, so a
        subsequent :meth:`pop_batch` yields the same sequence from the
        same state.  This is the "optimistic snapshot of the next
        checkout" the cross-round prefetch pipeline speculates on.
        """
        accepted: List[_IndexItem] = []
        taken: set[str] = set()
        while len(accepted) < k:
            item = self._index.pop_min()
            if item is None:
                break
            key, _oid, url = item
            entry = self._entries.get(url)
            if entry is None or entry.status != "frontier" or url in taken:
                continue
            current_key = self._current_key(entry)
            if key != current_key:
                self._push(entry)
                continue
            taken.add(url)
            accepted.append(item)
        for item in accepted:
            self._index.push(item)
        return [url for _key, _oid, url in accepted]

    def requeue(self, url: str) -> None:
        """Return an in-flight URL to the frontier (e.g. after a transient failure)."""
        entry = self.entry(url)
        if entry.status == "in_flight":
            self._set_status(entry, "frontier")
            self._push(entry)

    def current_key(self, entry: FrontierEntry) -> tuple:
        """The entry's ordering key right now (value tuple, shard-comparable).

        The sharded engine's checkout ships these with each candidate so
        the coordinator can merge per-shard candidate lists exactly as a
        single global heap would — same key function, same oid
        tie-break.
        """
        return self._current_key(entry)

    # -- internals ------------------------------------------------------------------------------
    def _current_key(self, entry: FrontierEntry) -> tuple:
        # The crude, lazily-updated serverload of the paper: read the shared
        # per-server counter at key-construction time.
        return self._entry_key(entry, self._server_load.get(entry.sid, 0))

    def _push(self, entry: FrontierEntry) -> None:
        # Tie-break equal ordering keys by oid — a stable function of the
        # URL — so checkout order is independent of insertion history.
        self._index.push((self._current_key(entry), entry.oid, entry.url))

    def _sync_row(self, entry: FrontierEntry, changes: Mapping[str, Any]) -> None:
        if self._buffering:
            self._pending_changes.setdefault(entry.url, {}).update(changes)
            return
        if entry.rid is None:
            return
        # ``in_flight`` is frontier-internal; the table only knows the paper's states.
        changes = dict(changes)
        if changes.get("status") == "in_flight":
            changes["status"] = "frontier"
        self.database.table("CRAWL").update_row(entry.rid, changes)

    # -- round buffering (batched engine) ---------------------------------------------
    def begin_batch(self) -> None:
        """Start buffering CRAWL-table writes for one crawl round.

        In-memory entries (the authoritative state for ordering decisions)
        keep updating immediately; only the table writes are deferred.
        """
        self._buffering = True

    def flush_batch(self) -> None:
        """Write the round's buffered CRAWL inserts and updates in bulk."""
        crawl = self.database.table("CRAWL")
        new_entries = self._pending_new
        if new_entries:
            # New rows are built from the *current* entry state, so any
            # same-round boost is folded into the insert itself.
            rids = crawl.insert_many([self._crawl_row(entry) for entry in new_entries])
            for entry, rid in zip(new_entries, rids):
                entry.rid = rid
                self._pending_changes.pop(entry.url, None)
        updates = []
        for url, changes in self._pending_changes.items():
            entry = self._entries[url]
            if entry.rid is None:
                continue
            if changes.get("status") == "in_flight":
                changes = dict(changes)
                changes["status"] = "frontier"
            updates.append((entry.rid, changes))
        if updates:
            crawl.update_rows(updates)
        self._pending_new = []
        self._pending_changes = {}
        self._buffering = False

    # -- checkpointing ------------------------------------------------------------------
    def state_snapshot(self) -> Dict[str, Any]:
        """Serialisable frontier state, captured at a round boundary.

        Record ids are encoded as plain tuples; they stay valid across a
        database recovery because the snapshot-plus-WAL scheme restores
        heap pages (and therefore rid assignment) exactly.  Must not be
        called while round buffering is active — buffered table writes
        belong to an unfinished round.
        """
        if self._buffering or self._pending_new or self._pending_changes:
            raise RuntimeError("cannot snapshot the frontier mid-round")
        entry_fields = [f.name for f in fields(FrontierEntry) if f.name != "rid"]
        return {
            "entries": [
                (
                    {name: getattr(entry, name) for name in entry_fields},
                    (
                        (entry.rid.page_id.file_id, entry.rid.page_id.page_no, entry.rid.slot)
                        if entry.rid is not None
                        else None
                    ),
                )
                for entry in self._entries.values()
            ],
            "server_load": dict(self._server_load),
            "next_discovered": self._next_discovered,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Rebuild entries, server loads, and the priority heap from a snapshot.

        The heap is rebuilt from current priorities; the original heap may
        also have carried stale (lazily invalidated) entries, but those
        are re-keyed on pop anyway, so checkout order is unchanged.
        """
        self._entries = {}
        self._url_of_oid = {}
        for field_map, rid in state["entries"]:
            entry = FrontierEntry(**field_map)
            if rid is not None:
                file_id, page_no, slot = rid
                entry.rid = RecordId(PageId(file_id, page_no), slot)
            self._entries[entry.url] = entry
            self._url_of_oid[entry.oid] = entry.url
        self._server_load = dict(state["server_load"])
        self._next_discovered = state["next_discovered"]
        self._rebuild_heap()
