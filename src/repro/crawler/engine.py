"""The crawl engine: pluggable serial / batched execution of the crawl loop.

The paper presents the crawler as a *system* — a classifier-guided
frontier feeding a fetch/classify/record pipeline with a periodic HITS
distiller (§2, §3.2, §3.7).  This module is that pipeline, factored out
of :class:`~repro.crawler.focused.FocusedCrawler` (now a thin driver)
into a :class:`CrawlEngine` with two interchangeable execution modes:

* **serial** — the reference loop: one URL checked out, fetched,
  classified and recorded at a time, with full-table distillation.  This
  reproduces the seed crawler's behaviour operation for operation and is
  the baseline every optimisation is benchmarked against.
* **batched** — the scaled pipeline, one *round* at a time:

  1. *checkout*: the top-K frontier URLs in a single heap drain
     (:meth:`Frontier.pop_batch`), deterministic under oid tie-breaking;
  2. *fetch*: the round's URLs go through the fetch stage — a thread
     pool (``CrawlerConfig.fetch_workers``) or, with
     ``fetch_mode="async"``, an asyncio pipeline that keeps up to
     ``max_inflight`` fetches outstanding on the configured
     :mod:`~repro.webgraph.transport` and hands completed pages to
     classification while later fetches are still in flight — either
     way results are committed in checkout order;
  3. *classify*: one :meth:`HierarchicalModel.classify_batch` pass scores
     every fetched page — relevance and best leaf from a single posterior
     recursion, per-term work shared across the batch — behind an LRU of
     outcomes keyed by page oid;
  4. *record*: CRAWL and LINK writes buffer across the round and flush
     through minidb's bulk ``insert_many`` / ``update_rows``, cutting
     per-row page and index churn;
  5. *distill*: when due, the incremental distiller folds only the link
     rows recorded since the last run into cached adjacency
     (:class:`~repro.distiller.db_distiller.IncrementalDistiller`)
     instead of re-scanning the whole LINK table.

With ``batch_size=1`` the batched mode visits pages in exactly the same
order as the serial mode and records bit-for-bit identical relevance
values (tests enforce this); larger K changes the interleaving but, on a
bounded web, converges to the same crawl set.
"""

from __future__ import annotations

import asyncio
import os
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.classifier.compiled import CompiledHierarchicalModel
from repro.classifier.model import BatchClassification, HierarchicalModel
from repro.classifier.tokenizer import TermFrequencies, term_frequencies
from repro.core.caching import LRUCache
from repro.distiller.compiled import compile_links, compiled_weighted_hits
from repro.distiller.db_distiller import IncrementalDistiller
from repro.distiller.hits import DistillationResult, weighted_hits
from repro.distiller.score_store import ScoreTableStore
from repro.distiller.weights import Link
from repro.minidb import Database, StorageConfig
from repro.minidb.pages import RecordId
from repro.minidb.table import Table
from repro.taxonomy.tree import TopicTaxonomy
from repro.webgraph.fetch import Fetcher, FetchResult, FetchStatus
from repro.webgraph.cassette import transport_for_config
from repro.webgraph.transport import FetchTransport
from repro.webgraph.urls import host_of, normalize_url, server_sid, url_oid

from .frontier import Frontier, FrontierEntry
from .policies import CrawlOrdering, FetchPolicy

#: Relevance assigned to a link target before anything is known about it
#: when the crawl runs unfocused (ordering ignores it anyway).
_UNFOCUSED_PRIORITY = 0.0

#: Engine modes accepted by ``CrawlerConfig.engine``.  "auto" resolves to
#: "serial"/"batched" by batch size — never to "sharded", which must be
#: requested explicitly (it changes the process model, not just the
#: schedule).
ENGINE_MODES = ("auto", "serial", "batched", "sharded")

#: Scoring backends accepted by ``CrawlerConfig.score_backend``.
SCORE_BACKENDS = ("python", "numpy")

#: Fetch-stage modes accepted by ``CrawlerConfig.fetch_mode``.  "auto"
#: resolves to "threaded" (the PR-1 pipeline shape); "async" switches the
#: batched engine to the asyncio overlap pipeline.
FETCH_MODES = ("auto", "threaded", "async")


def _default_fetch_mode() -> str:
    """The session default: ``REPRO_FETCH_MODE`` env var, else ``"auto"``.

    Mirrors ``REPRO_SCORE_BACKEND``: CI (and operators) can run the whole
    system through the async fetch pipeline without threading a flag
    through every entry point.
    """
    return os.environ.get("REPRO_FETCH_MODE", "auto")


def _default_prefetch() -> bool:
    """The session default: ``REPRO_PREFETCH`` env var, else off.

    Mirrors ``REPRO_FETCH_MODE``: CI can run the whole suite with
    cross-round speculation enabled without threading a flag through
    every entry point.  Any value other than ``""``/``"0"`` enables it.
    """
    return os.environ.get("REPRO_PREFETCH", "").strip() not in ("", "0")


def _default_score_backend() -> str:
    """The session default: ``REPRO_SCORE_BACKEND`` env var, else ``"python"``.

    The env override lets CI (and operators) run the whole system on the
    columnar backend without threading a flag through every entry point;
    the in-repo default stays the seed-faithful ``"python"`` path.
    """
    return os.environ.get("REPRO_SCORE_BACKEND", "python")


def _default_shards() -> int:
    """The session default shard count: ``REPRO_ENGINE_SHARDS``, else 0.

    0 means "unset": an explicit ``engine="sharded"`` config then runs
    with one shard.  Mirrors ``REPRO_FETCH_MODE`` — CI can run a whole
    suite sharded N-wide without threading a flag through entry points.
    Setting the env var does **not** switch engines by itself; it only
    supplies N for configs that ask for sharding.
    """
    raw = os.environ.get("REPRO_ENGINE_SHARDS", "").strip()
    if not raw:
        return 0
    count = int(raw)
    if count < 1:
        raise ValueError(f"REPRO_ENGINE_SHARDS must be >= 1, got {raw!r}")
    return count


@dataclass
class CrawlerConfig:
    """Knobs of a crawl run."""

    #: Stop after this many successful page fetches.
    max_pages: int = 1000
    #: Focus mode: "soft" (default), "hard", or "none" (unfocused baseline).
    focus_mode: str = "soft"
    #: Crawl ordering; defaults to aggressive discovery (or BFS when unfocused).
    ordering: Optional[CrawlOrdering] = None
    #: Run the distiller every this many successful fetches (0 disables it).
    distill_every: int = 200
    #: Distillation iterations per run and relevance threshold ρ.
    distill_iterations: int = 5
    rho: float = 0.1
    #: After distillation, boost unvisited out-neighbours of this many top hubs.
    hub_boost_top_k: int = 10
    #: Boosted pages get at least this frontier priority.
    hub_boost_priority: float = 0.5
    #: Give up on a URL after this many failed fetch attempts.
    max_retries: int = 2
    #: Give up on the whole crawl after this many consecutive frontier misses.
    stagnation_patience: int = 50
    #: Record the best-leaf class of every visited page (topic census support).
    record_best_leaf: bool = True
    #: URLs checked out per engine round (the K of the batched pipeline).
    batch_size: int = 1
    #: Worker threads in the batched fetch stage (<= 1 fetches inline).
    fetch_workers: int = 1
    #: Fetch-stage mode: "auto"/"threaded" keep the PR-1 pipeline shape;
    #: "async" runs the round's fetches through an asyncio pipeline that
    #: overlaps transport latency with classification and writes.
    fetch_mode: str = field(default_factory=_default_fetch_mode)
    #: Cross-round prefetch (async fetch mode only): at the tail of a
    #: round, speculatively ``prepare()``+fetch the frontier's projected
    #: next checkout while the current round's classify/write/distill
    #: completes.  The round boundary reconciles the speculation against
    #: the post-commit frontier (confirm-or-replay), so pages, relevance
    #: floats, and all table contents stay bit-identical to the
    #: non-prefetch async path.
    prefetch: bool = field(default_factory=_default_prefetch)
    #: Maximum fetches outstanding at once in async mode (0 = round size).
    max_inflight: int = 0
    #: Per-server cap on outstanding async fetches (0 = unlimited) — the
    #: politeness back-stop of :class:`~repro.crawler.policies.FetchPolicy`.
    per_server_inflight: int = 0
    #: Fetch transport: "simulated" (default, bit-for-bit the PR-1
    #: fetcher), "latency" (wall-clock latency/jitter/timeout injection),
    #: or "http" (real network, requires aiohttp).
    transport: str = "simulated"
    #: Keyword options for the transport (see ``webgraph.transport``);
    #: plain data so the choice rides along inside crawl checkpoints.
    transport_options: dict = field(default_factory=dict)
    #: Path of a fetch cassette (see ``webgraph.cassette``).  Empty
    #: disables cassettes; set, the crawl either records every fetch
    #: into the file or replays it, per ``cassette_mode``.
    cassette_path: str = ""
    #: "record", "replay", or "auto" (replay when the file exists,
    #: record otherwise).  The resolved mode is persisted back here at
    #: engine build time so checkpoints resume in the same mode.
    cassette_mode: str = "auto"
    #: Strict replay raises CassetteMismatch on any request the cassette
    #: does not hold; non-strict degrades misses to NOT_FOUND.
    cassette_strict: bool = True
    #: Engine mode: "auto" picks "batched" when batch_size > 1, else "serial".
    #: "sharded" partitions the crawl by host hash over N workers (see
    #: ``shards``); drive it through :meth:`FocusSystem.start`, which
    #: builds the sharded crawler in place of a :class:`CrawlEngine`.
    engine: str = "auto"
    #: Worker count for ``engine="sharded"``: 0 defers to the
    #: ``REPRO_ENGINE_SHARDS`` env var (unset env -> 1 shard).
    shards: int = field(default_factory=_default_shards)
    #: How sharded workers run: "process" (default — N spawned worker
    #: processes, the multi-core path) or "inprocess" (all shards in this
    #: process: required for fault injection / injected transports, and
    #: what the determinism tests use to control message schedules).
    shard_runner: str = "process"
    #: Capacity of the batched path's LRU of classification outcomes (by oid).
    posterior_cache_size: int = 4096
    #: Save a crawl checkpoint every this many successful fetches (0 disables;
    #: requires a durable database and an attached checkpoint manager).
    checkpoint_every: int = 0
    #: Also save a checkpoint when this many wall-clock seconds have
    #: passed since the last one (0 disables).  Complements
    #: ``checkpoint_every`` for real-network crawls, where a fetch count
    #: is a poor proxy for elapsed (and therefore at-risk) work.
    checkpoint_interval_s: float = 0.0
    #: Scoring backend: "python" is the seed-faithful reference path
    #: (bit-for-bit); "numpy" compiles classification and distillation
    #: into columnar array kernels (1e-9-equivalent, several times faster).
    score_backend: str = field(default_factory=_default_score_backend)
    #: Group-commit batch for the write-ahead log of a durable crawl
    #: database: 0 keeps the seed behaviour (OS flush per record, fsync
    #: only at checkpoints); N >= 1 fsyncs once per N appended records.
    #: Legacy knob — superseded by ``storage`` (see :meth:`resolve_storage`).
    wal_fsync_batch: int = 0
    #: Segment-file compaction cadence of a durable crawl database:
    #: consider compacting at every Nth checkpoint (0 disables).  Long
    #: crawls rewrite CRAWL rows and the HUBS/AUTH tables constantly, so
    #: without compaction the segment file grows without bound.
    #: Legacy knob — superseded by ``storage``.
    compact_every: int = 1
    #: Compact only when at least this fraction of the segment file's
    #: payload bytes is dead (superseded images); bounds the file at
    #: roughly live/(1 - ratio) bytes between compactions.
    #: Legacy knob — superseded by ``storage``.
    compact_min_garbage_ratio: float = 0.5
    #: Storage policy of the crawl database as one object (WAL group
    #: commit, compaction, buffer-pool size).  When set it wins over the
    #: three legacy knobs above; when None, :meth:`resolve_storage`
    #: folds the legacy knobs into an equivalent StorageConfig, so old
    #: configs (including pickled checkpoints) keep working unchanged.
    storage: Optional[StorageConfig] = None

    def resolve_storage(self) -> StorageConfig:
        """The effective storage policy: ``storage`` or the folded legacy knobs.

        ``getattr`` defaults keep configs unpickled from pre-StorageConfig
        checkpoints (which lack the newer fields entirely) resumable.
        """
        storage = getattr(self, "storage", None)
        if storage is not None:
            return storage
        return StorageConfig(
            wal_fsync_batch=getattr(self, "wal_fsync_batch", 0),
            compact_every=getattr(self, "compact_every", 1),
            compact_min_garbage_ratio=getattr(self, "compact_min_garbage_ratio", 0.5),
        )

    def resolve_shards(self) -> int:
        """The effective worker count for ``engine="sharded"`` (>= 1)."""
        shards = getattr(self, "shards", 0)
        return shards if shards and shards > 0 else 1


#: Speculative prepares launched per top-up step.  Small so the draw
#: stream stays close behind the confirmed frontier (late speculation
#: sees more of the round's priority updates and goes stale less often).
_PREFETCH_CHUNK = 8


@dataclass
class _Speculation:
    """In-flight cross-round speculation: the projected next checkout.

    ``snapshots[i]`` is the combined transport + server-pool draw state
    *after* the first ``i`` speculative prepares (``snapshots[0]`` is the
    pre-speculation base), so reconciliation can keep any confirmed
    prefix of the speculative draw stream, rewind to the first mismatch,
    and replay the rest in canonical checkout order.
    """

    urls: List[str] = field(default_factory=list)
    pendings: List[object] = field(default_factory=list)
    tasks: List["asyncio.Task"] = field(default_factory=list)
    snapshots: List[dict] = field(default_factory=list)

    def undone(self) -> int:
        return sum(1 for task in self.tasks if not task.done())


@dataclass
class PageVisit:
    """One successfully fetched and classified page, in fetch order."""

    tick: int
    url: str
    relevance: float
    server: str
    out_degree: int
    best_leaf_cid: Optional[int] = None


@dataclass
class CrawlTrace:
    """Everything a crawl run produced, for metrics and experiments."""

    visits: List[PageVisit] = field(default_factory=list)
    fetched_urls: List[str] = field(default_factory=list)
    failed_urls: List[str] = field(default_factory=list)
    distillations: int = 0
    stagnated: bool = False
    last_distillation: Optional[DistillationResult] = None

    @property
    def pages_fetched(self) -> int:
        return len(self.visits)

    def relevance_series(self) -> List[float]:
        return [visit.relevance for visit in self.visits]

    def visited_set(self) -> set[str]:
        return set(self.fetched_urls)


class OutcomeLRU(LRUCache):
    """A small LRU of classification outcomes keyed by page oid.

    Lets the batched pipeline skip re-scoring a page whose posterior was
    computed recently — relevant for retry storms and for the §3.2 crawl
    maintenance orderings that revisit known pages.  The eviction policy
    lives in the shared :class:`~repro.core.caching.LRUCache`; the
    classifier's term-vector cache reuses the same policy.
    """


class BufferedLinkWriter:
    """Round-buffered LINK writes: one bulk insert plus coalesced weight refreshes.

    The serial path inserts a page's out-links and immediately walks the
    ``link_dst`` index to refresh ``wgt_fwd`` of every edge pointing at the
    freshly classified page, paying a full row update (with unconditional
    index maintenance) per edge.  The buffered writer accumulates a whole
    round, then flushes one ``insert_many`` and one ``update_rows`` —
    ``wgt_fwd`` is unindexed, so the refresh becomes a pure heap write.
    Refreshes are applied after the round's inserts in visit order, which
    yields the same final table state as the serial interleaving.
    """

    def __init__(self, table: Table) -> None:
        self.table = table
        self._rows: List[tuple] = []
        self._refresh: "OrderedDict[int, float]" = OrderedDict()

    def record(self, rows: Sequence[tuple], source_oid: int, relevance: float) -> None:
        self._rows.extend(rows)
        self._refresh[source_oid] = relevance

    def flush(self) -> List[RecordId]:
        """Write the buffered round; returns the rids whose weights changed in place."""
        if self._rows:
            self.table.insert_many(self._rows)
            self._rows = []
        updated: List[RecordId] = []
        updates: List[Tuple[RecordId, float]] = []
        for oid, relevance in self._refresh.items():
            for rid in self.table.lookup_rids("link_dst", (oid,)):
                updates.append((rid, relevance))
                updated.append(rid)
        if updates:
            self.table.update_column("wgt_fwd", updates)
        self._refresh = OrderedDict()
        return updated


class CrawlEngine:
    """Executes crawl rounds against a frontier, in serial or batched mode."""

    def __init__(
        self,
        fetcher: Fetcher,
        classifier: HierarchicalModel,
        taxonomy: TopicTaxonomy,
        database: Database,
        config: CrawlerConfig,
        frontier: Frontier,
        trace: CrawlTrace,
        transport: Optional[FetchTransport] = None,
    ) -> None:
        if config.engine not in ENGINE_MODES:
            raise ValueError(
                f"unknown engine mode {config.engine!r}; expected one of {ENGINE_MODES}"
            )
        if config.engine == "sharded":
            raise ValueError(
                "engine='sharded' is not a CrawlEngine mode: it partitions the "
                "crawl across worker processes.  Drive it through "
                "FocusSystem.start/crawl (repro.crawler.sharded builds the "
                "coordinator and shard workers)."
            )
        if config.score_backend not in SCORE_BACKENDS:
            raise ValueError(
                f"unknown score backend {config.score_backend!r}; "
                f"expected one of {SCORE_BACKENDS}"
            )
        if config.fetch_mode not in FETCH_MODES:
            raise ValueError(
                f"unknown fetch mode {config.fetch_mode!r}; expected one of {FETCH_MODES}"
            )
        if config.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if config.checkpoint_interval_s < 0:
            raise ValueError("checkpoint_interval_s must be >= 0")
        self.fetcher = fetcher
        #: The fetch I/O layer; built from config unless injected (tests).
        #: Cassette-aware: a ``cassette_path`` wraps the configured
        #: transport in a recorder, or replays an existing cassette with
        #: no inner transport at all.
        self.transport: FetchTransport = transport or transport_for_config(config, fetcher)
        #: Validates the inflight knobs eagerly (FetchPolicy raises on
        #: negatives) and is reused by every async round.
        self.fetch_policy = FetchPolicy(
            max_inflight=config.max_inflight,
            per_server_inflight=config.per_server_inflight,
        )
        self.classifier = classifier
        self.taxonomy = taxonomy
        self.database = database
        self.config = config
        self.frontier = frontier
        self.trace = trace
        #: Checkpoint sink (e.g. :class:`repro.core.checkpoint.CheckpointManager`);
        #: when set and ``config.checkpoint_every`` is positive, the engine
        #: calls ``checkpointer.save()`` at round boundaries.
        self.checkpointer = None
        self._tick = 0
        self._since_distillation = 0
        self._since_checkpoint = 0
        self._last_checkpoint_s: Optional[float] = None
        self._stagnation_misses = 0
        #: Wall-clock seconds of round processing (classify + commit) that
        #: ran while fetches were still in flight, and total round
        #: processing time — the async pipeline's overlap instrumentation.
        self.fetch_overlap_s = 0.0
        self._round_process_s = 0.0
        #: Cross-round speculation state and counters (prefetch mode).
        self._spec: Optional[_Speculation] = None
        self._gate: Optional[asyncio.Semaphore] = None
        self._server_gates: Dict[str, asyncio.Semaphore] = {}
        self._prefetch_launched = 0
        self._prefetch_hits = 0
        self._prefetch_stale = 0
        self._prefetch_drained = 0
        #: oid -> measured relevance of every visited page, in visit order.
        self._relevance: Dict[int, float] = {}
        self._outcome_cache = OutcomeLRU(config.posterior_cache_size)
        self._link_writer = BufferedLinkWriter(database.table("LINK"))
        self._score_store = ScoreTableStore(database)
        self._incremental: Optional[IncrementalDistiller] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        #: Columnar scorer (score_backend="numpy"), compiled lazily so the
        #: python path never pays for it.
        self._compiled_model: Optional[CompiledHierarchicalModel] = None
        #: Cumulative wall-clock seconds per pipeline stage (monitoring and
        #: the throughput bench's per-stage breakdown).
        self.stage_timings: Dict[str, float] = {
            "fetch": 0.0,
            "classify": 0.0,
            "write": 0.0,
            "distill": 0.0,
        }
        # Link rows are built positionally for bulk loading; pin the order.
        link_columns = tuple(database.table("LINK").schema.column_names)
        expected = ("oid_src", "sid_src", "oid_dst", "sid_dst", "wgt_fwd", "wgt_rev")
        if link_columns != expected:
            raise ValueError(f"LINK schema order {link_columns} != {expected}")

    # -- mode ------------------------------------------------------------------------
    @property
    def batched(self) -> bool:
        if self.config.engine == "auto":
            return self.config.batch_size > 1
        return self.config.engine == "batched"

    @property
    def async_fetch(self) -> bool:
        """True when the batched engine runs the asyncio fetch pipeline."""
        return self.config.fetch_mode == "async"

    @property
    def prefetch_enabled(self) -> bool:
        """True when the batched async pipeline speculates across rounds.

        The ``getattr`` default keeps configs unpickled from pre-prefetch
        checkpoints (which lack the field entirely) resumable.
        """
        return (
            self.batched
            and self.async_fetch
            and bool(getattr(self.config, "prefetch", False))
        )

    def prefetch_stale_ratio(self) -> float:
        """Fraction of speculative prepares discarded at reconciliation."""
        if not self._prefetch_launched:
            return 0.0
        return (self._prefetch_stale + self._prefetch_drained) / self._prefetch_launched

    def prefetch_stats(self) -> Dict[str, float]:
        """Speculation counters: launched/hit/stale/drained plus the ratio."""
        return {
            "launched": self._prefetch_launched,
            "hits": self._prefetch_hits,
            "stale": self._prefetch_stale,
            "drained": self._prefetch_drained,
            "stale_ratio": self.prefetch_stale_ratio(),
        }

    def fetch_overlap_ratio(self) -> float:
        """Fraction of round processing that ran while fetches were in flight.

        0.0 for the serial/threaded paths (they drain the fetch stage
        before processing); approaches 1.0 when the async pipeline hides
        nearly all classification/write work behind transport latency.
        """
        if self._round_process_s <= 0.0:
            return 0.0
        return self.fetch_overlap_s / self._round_process_s

    def pipeline_stats(self) -> Dict[str, object]:
        """Saturation counters: fetch overlap, speculation, frontier shape."""
        return {
            "prefetch_enabled": self.prefetch_enabled,
            "fetch_overlap_ratio": self.fetch_overlap_ratio(),
            "prefetch": self.prefetch_stats(),
            "frontier": self.frontier.heap_stats(),
        }

    # -- public API ------------------------------------------------------------------
    def run(self, budget: int, max_rounds: Optional[int] = None) -> CrawlTrace:
        """Run the crawl loop until the page budget or the frontier is exhausted.

        *max_rounds* caps how many rounds this call executes (one frontier
        checkout in serial mode, one batch in batched mode) and then
        returns with the crawl still resumable — the cooperative-
        scheduling hook the multi-tenant :mod:`repro.service` job manager
        interleaves jobs with.  Crucially the *budget* stays the full
        page budget either way: batched round sizing is a function of
        ``budget - pages_fetched``, so slicing a crawl into stepped calls
        visits bit-for-bit the pages a single ``run(budget)`` would.
        """
        if max_rounds is not None and max_rounds < 1:
            raise ValueError("max_rounds must be >= 1 (or None for unlimited)")
        if self.config.checkpoint_interval_s and self.checkpointer is not None:
            # The wall clock is not resumable state: the interval timer
            # starts fresh on every run (initial and resumed alike).
            self._last_checkpoint_s = time.monotonic()
        try:
            if self.batched:
                return self._run_batched(budget, max_rounds)
            return self._run_serial(budget, max_rounds)
        finally:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
                self._pool = None

    def run_distillation(self) -> DistillationResult:
        """Re-score hubs/authorities over the current crawl graph and boost frontier URLs."""
        started = time.perf_counter()
        # The live map is safe to hand over: distillation only reads it.
        relevance = self._relevance
        if self.batched:
            result = self._incremental_distiller().run(
                relevance, max_iterations=self.config.distill_iterations
            )
        elif self.config.score_backend == "numpy":
            result = compiled_weighted_hits(
                compile_links(self.links_from_table()),
                relevance=relevance,
                rho=self.config.rho,
                max_iterations=self.config.distill_iterations,
            )
        else:
            result = weighted_hits(
                self.links_from_table(),
                relevance=relevance,
                rho=self.config.rho,
                max_iterations=self.config.distill_iterations,
            )
        self._store_scores(result)
        self._boost_hub_neighbours(result)
        self.trace.distillations += 1
        self.trace.last_distillation = result
        self._since_distillation = 0
        self.stage_timings["distill"] += time.perf_counter() - started
        return result

    def links_from_table(self) -> list[Link]:
        """Materialise the full LINK table (the serial distillation feed)."""
        table = self.database.table("LINK")
        schema = table.schema
        links = []
        for row in table.rows():
            mapping = schema.row_to_mapping(row)
            links.append(
                Link(
                    oid_src=mapping["oid_src"],
                    sid_src=mapping["sid_src"],
                    oid_dst=mapping["oid_dst"],
                    sid_dst=mapping["sid_dst"],
                    wgt_fwd=mapping["wgt_fwd"],
                    wgt_rev=mapping["wgt_rev"],
                )
            )
        return links

    def relevance_map(self) -> Dict[int, float]:
        """oid -> R(page) of every visited page, in visit order."""
        return dict(self._relevance)

    def cache_stats(self) -> Dict[str, int]:
        """Hit/miss counters of the classification-outcome LRU (monitoring)."""
        return {
            "hits": self._outcome_cache.hits,
            "misses": self._outcome_cache.misses,
            "entries": len(self._outcome_cache),
        }

    # -- checkpointing ----------------------------------------------------------------
    def state_snapshot(self) -> Dict[str, object]:
        """Everything the engine needs to continue a crawl after a restart.

        Captured at a round boundary: link/CRAWL write buffers are empty,
        so the tables plus this dict are the complete crawl state.  The
        outcome LRU persists only its counters — its entries are a pure
        cache, and recomputing a posterior yields bit-identical floats.
        """
        return {
            "tick": self._tick,
            "since_distillation": self._since_distillation,
            "since_checkpoint": self._since_checkpoint,
            "stagnation_misses": self._stagnation_misses,
            "relevance": dict(self._relevance),
            "outcome_cache": {
                "hits": self._outcome_cache.hits,
                "misses": self._outcome_cache.misses,
            },
            "prefetch": {
                "launched": self._prefetch_launched,
                "hits": self._prefetch_hits,
                "stale": self._prefetch_stale,
                "drained": self._prefetch_drained,
            },
            "delta_cache": (
                self._incremental.cache.state_snapshot()
                if self._incremental is not None
                else None
            ),
            "trace": self.trace,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Adopt a checkpointed engine state (the database must already be recovered)."""
        self._tick = state["tick"]
        self._since_distillation = state["since_distillation"]
        self._since_checkpoint = state["since_checkpoint"]
        self._stagnation_misses = state["stagnation_misses"]
        self._relevance = dict(state["relevance"])
        self._outcome_cache = OutcomeLRU(self.config.posterior_cache_size)
        self._outcome_cache.hits = state["outcome_cache"]["hits"]
        self._outcome_cache.misses = state["outcome_cache"]["misses"]
        # .get defaults keep pre-prefetch checkpoints resumable.
        prefetch = state.get("prefetch") or {}
        self._prefetch_launched = prefetch.get("launched", 0)
        self._prefetch_hits = prefetch.get("hits", 0)
        self._prefetch_stale = prefetch.get("stale", 0)
        self._prefetch_drained = prefetch.get("drained", 0)
        # The score-table rid cache is soft state; rebuild it from the
        # replayed tables rather than trusting pre-crash record ids.
        self._score_store.invalidate()
        if state["delta_cache"] is not None:
            self._incremental_distiller().cache.restore_state(state["delta_cache"])
        # The trace object is shared with the driving crawler; refill it in
        # place instead of rebinding so every reference stays live.
        saved: CrawlTrace = state["trace"]
        self.trace.visits[:] = saved.visits
        self.trace.fetched_urls[:] = saved.fetched_urls
        self.trace.failed_urls[:] = saved.failed_urls
        self.trace.distillations = saved.distillations
        self.trace.stagnated = saved.stagnated
        self.trace.last_distillation = saved.last_distillation

    # -- serial mode -----------------------------------------------------------------
    def _run_serial(self, budget: int, max_rounds: Optional[int] = None) -> CrawlTrace:
        rounds = 0
        while self.trace.pages_fetched < budget:
            if max_rounds is not None and rounds >= max_rounds:
                break
            rounds += 1
            url = self.frontier.pop_next()
            if url is None:
                self.trace.stagnated = True
                break
            if self._visit_serial(url):
                self._stagnation_misses = 0
            else:
                self._stagnation_misses += 1
                if self._stagnation_misses >= self.config.stagnation_patience:
                    self.trace.stagnated = True
                    break
            if (
                self.config.distill_every
                and self._since_distillation >= self.config.distill_every
            ):
                self.run_distillation()
            self._maybe_checkpoint()
        return self.trace

    def _visit_serial(self, url: str) -> bool:
        """Fetch, classify, persist, and expand one URL.  Returns True on success."""
        started = time.perf_counter()
        result = self.transport.fetch(url)
        self.stage_timings["fetch"] += time.perf_counter() - started
        if result.status is not FetchStatus.OK:
            # SERVER_ERROR is transient (retry in a later round); every
            # other non-OK status — NOT_FOUND, SKIPPED (robots, redirect
            # cap/loop, content gate) — is permanent.
            permanent = result.status is not FetchStatus.SERVER_ERROR
            self.frontier.record_failure(url, self.config.max_retries, permanent=permanent)
            self.trace.failed_urls.append(url)
            return False

        self._tick += 1
        started = time.perf_counter()
        frequencies = term_frequencies(result.tokens)
        if self.config.score_backend == "numpy":
            outcome = self._scorer().classify_batch([frequencies])[0]
            relevance = outcome.relevance
            best_leaf = outcome.best_leaf_cid if self.config.record_best_leaf else None
            hard_accepts = (
                self.taxonomy.good_ancestor_of(outcome.best_leaf_cid) is not None
                if self.config.focus_mode == "hard"
                else True
            )
        else:
            relevance = self.classifier.relevance(frequencies)
            best_leaf = (
                self.classifier.best_leaf(frequencies) if self.config.record_best_leaf else None
            )
            hard_accepts = (
                self.classifier.hard_focus_accepts(frequencies)
                if self.config.focus_mode == "hard"
                else True
            )
        self.stage_timings["classify"] += time.perf_counter() - started
        entry = self.frontier.record_visit(url, relevance, self._tick, kcid=best_leaf)
        self._relevance[entry.oid] = relevance
        started = time.perf_counter()
        expansion = self._record_links_serial(entry, result.out_links, relevance)
        self.stage_timings["write"] += time.perf_counter() - started
        self._expand(expansion, relevance, hard_accepts)
        self._finish_visit(url, result, relevance, best_leaf)
        return True

    def _record_links_serial(
        self, source_entry: FrontierEntry, targets: Sequence[str], relevance: float
    ) -> List[Tuple[str, int, int]]:
        """Insert the page's LINK rows and refresh incoming E_F weights immediately."""
        link_table = self.database.table("LINK")
        rows, expansion = self._link_rows(source_entry, targets, relevance)
        if rows:
            link_table.insert_many(rows)
        # Refresh E_F of edges that point at the page we just classified.
        for rid in link_table.lookup_rids("link_dst", (source_entry.oid,)):
            link_table.update_row(rid, {"wgt_fwd": relevance})
        return expansion

    # -- batched mode ----------------------------------------------------------------
    def _run_batched(self, budget: int, max_rounds: Optional[int] = None) -> CrawlTrace:
        config = self.config
        # Create the delta cache up front so every flushed round feeds it.
        self._incremental_distiller()
        if self.prefetch_enabled:
            # One event loop for the whole run: speculative fetch tasks
            # must survive round boundaries.
            return asyncio.run(self._run_batched_prefetch(budget, max_rounds))
        stop = False
        rounds = 0
        while not stop and self.trace.pages_fetched < budget:
            if max_rounds is not None and rounds >= max_rounds:
                break
            rounds += 1
            round_size = min(config.batch_size, budget - self.trace.pages_fetched)
            urls = self.frontier.pop_batch(round_size)
            if not urls:
                self.trace.stagnated = True
                break
            self.frontier.begin_batch()
            if self.async_fetch:
                stop = asyncio.run(self._async_round(urls))
            else:
                started = time.perf_counter()
                results = self._fetch_stage(urls)
                self.stage_timings["fetch"] += time.perf_counter() - started
                started = time.perf_counter()
                stop = self._process_group(list(zip(urls, results)))
                self._round_process_s += time.perf_counter() - started
            started = time.perf_counter()
            self.frontier.flush_batch()
            updated = self._link_writer.flush()
            self.stage_timings["write"] += time.perf_counter() - started
            if updated:
                self._incremental_distiller().note_updated(updated)
            if (
                config.distill_every
                and self._since_distillation >= config.distill_every
            ):
                self.run_distillation()
            self._maybe_checkpoint()
        return self.trace

    def _fetch_stage(self, urls: Sequence[str]) -> List[FetchResult]:
        """Fetch the round's URLs, returning results in checkout order.

        The pool engages only when fetch outcomes cannot depend on shared
        draw order: the simulated transient-failure stream is one
        sequential generator (the "network"), and draining it from worker
        threads would make the crawl depend on thread scheduling.  Real
        (or failure-free simulated) transports go through the pool.
        """
        transport = self.transport
        if len(urls) == 1 or self.config.fetch_workers <= 1 or transport.order_sensitive:
            return [transport.fetch(url) for url in urls]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.config.fetch_workers,
                thread_name_prefix="crawl-fetch",
            )
        return list(self._pool.map(transport.fetch, urls))

    def _process_group(self, group: Sequence[Tuple[str, FetchResult]]) -> bool:
        """Record failures, classify, and commit one contiguous result group.

        *group* is a checkout-order slice of the round.  The threaded
        path hands the whole round over as one group; the async path
        hands over each contiguous completed prefix as it drains, so
        processing overlaps the still-in-flight tail.  Returns True when
        the stagnation patience ran out (the round still finishes).
        """
        config = self.config
        stop = False
        fetched: List[Tuple[str, FetchResult]] = []
        for url, result in group:
            if result.status is FetchStatus.OK:
                fetched.append((url, result))
                self._stagnation_misses = 0
                continue
            permanent = result.status is not FetchStatus.SERVER_ERROR
            self.frontier.record_failure(url, config.max_retries, permanent=permanent)
            self.trace.failed_urls.append(url)
            self._stagnation_misses += 1
            if self._stagnation_misses >= config.stagnation_patience:
                self.trace.stagnated = True
                stop = True
        started = time.perf_counter()
        outcomes = self._classify_stage(fetched)
        self.stage_timings["classify"] += time.perf_counter() - started
        for (url, result), outcome in zip(fetched, outcomes):
            self._commit_visit(url, result, outcome)
        return stop

    async def _async_round(self, urls: Sequence[str]) -> bool:
        """One crawl round on the asyncio fetch pipeline.

        Up to ``FetchPolicy.effective_inflight`` fetches stay outstanding
        (optionally capped per server); completed pages are classified and
        committed — in checkout order, as contiguous completed prefixes —
        while later fetches are still in flight.  Determinism rests on the
        transport contract: every draw happens in :meth:`prepare`, called
        here synchronously in checkout order, and classification outcomes
        are grouping-invariant, so completion timing can change only the
        wall clock, never the crawl.
        """
        transport = self.transport
        started = time.perf_counter()
        pendings = [transport.prepare(url) for url in urls]
        self.stage_timings["fetch"] += time.perf_counter() - started
        gate = asyncio.Semaphore(self.fetch_policy.effective_inflight(len(urls)))
        tasks = self._spawn_wait_tasks(pendings, gate, {})
        return await self._drain_round(urls, tasks, speculate=False)

    def _spawn_wait_tasks(
        self,
        pendings: Sequence[object],
        gate: asyncio.Semaphore,
        server_gates: Dict[str, asyncio.Semaphore],
    ) -> List["asyncio.Task"]:
        """Wrap prepared fetches in gated wait tasks on the running loop."""
        transport = self.transport
        per_server = self.fetch_policy.per_server_inflight

        async def wait_one(pending):
            async with gate:
                if per_server:
                    host = host_of(pending.url)
                    server_gate = server_gates.setdefault(
                        host, asyncio.Semaphore(per_server)
                    )
                    async with server_gate:
                        return await transport.wait(pending)
                return await transport.wait(pending)

        return [asyncio.create_task(wait_one(pending)) for pending in pendings]

    async def _drain_round(
        self, urls: Sequence[str], tasks: List["asyncio.Task"], speculate: bool
    ) -> bool:
        """Await the round's tasks in checkout order, processing done prefixes.

        With *speculate* on, the drain also tops up the cross-round
        speculation stream between groups, and counts still-undone
        speculative fetches toward the overlap credit — processing that
        runs while *any* fetch is in flight is hidden latency.
        """
        stop = False
        index = 0

        def undone(start: int) -> int:
            return sum(1 for task in tasks[start:] if not task.done())

        try:
            if speculate:
                self._topup_speculation(undone(0))
            while index < len(tasks):
                waited = time.perf_counter()
                head = await tasks[index]
                self.stage_timings["fetch"] += time.perf_counter() - waited
                group = [(urls[index], head)]
                index += 1
                while index < len(tasks) and tasks[index].done():
                    group.append((urls[index], tasks[index].result()))
                    index += 1
                if speculate:
                    # Top up *before* processing: the slack this group's
                    # completion just opened is exactly the window the
                    # next round's fetches should be sleeping through.
                    self._topup_speculation(undone(index))
                    in_flight = undone(index)
                    if self._spec is not None:
                        in_flight += self._spec.undone()
                else:
                    in_flight = len(tasks) - index
                started = time.perf_counter()
                if self._process_group(group):
                    stop = True
                elapsed = time.perf_counter() - started
                self._round_process_s += elapsed
                if in_flight:
                    self.fetch_overlap_s += elapsed
        finally:
            # Only reachable with pending tasks if processing raised
            # (e.g. a test kill switch): don't leak them into the loop.
            for task in tasks[index:]:
                task.cancel()
        return stop

    # -- cross-round prefetch ----------------------------------------------------------
    async def _run_batched_prefetch(
        self, budget: int, max_rounds: Optional[int]
    ) -> CrawlTrace:
        """The batched loop with cross-round speculation (async fetch mode).

        Identical round boundary work to :meth:`_run_batched`; the only
        differences are (a) one event loop spans the whole run so
        speculative fetch tasks survive round boundaries, and (b) each
        round's checkout is reconciled against the live speculation
        stream before fetching (:meth:`_reconcile_speculation`).
        """
        config = self.config
        self._gate = asyncio.Semaphore(
            self.fetch_policy.effective_inflight(config.batch_size)
        )
        self._server_gates = {}
        stop = False
        rounds = 0
        try:
            while not stop and self.trace.pages_fetched < budget:
                if max_rounds is not None and rounds >= max_rounds:
                    break
                rounds += 1
                round_size = min(config.batch_size, budget - self.trace.pages_fetched)
                urls = self.frontier.pop_batch(round_size)
                if not urls:
                    self.trace.stagnated = True
                    break
                tasks = self._reconcile_speculation(urls)
                self.frontier.begin_batch()
                stop = await self._drain_round(urls, tasks, speculate=True)
                started = time.perf_counter()
                self.frontier.flush_batch()
                updated = self._link_writer.flush()
                self.stage_timings["write"] += time.perf_counter() - started
                if updated:
                    self._incremental_distiller().note_updated(updated)
                if (
                    config.distill_every
                    and self._since_distillation >= config.distill_every
                ):
                    self.run_distillation()
                self._maybe_checkpoint()
                if not stop and self.trace.pages_fetched < budget:
                    self._respeculate_round_end()
        finally:
            # Leave the draw streams canonical (and the loop task-free)
            # no matter how the run ends.
            self._drain_speculation()
        return self.trace

    def _draw_state_snapshot(self) -> dict:
        """Every RNG stream (and counter) a ``prepare()`` call advances.

        ``prepare`` draws from the transport stack (latency RNG, fetcher
        RNG, fetcher stats — all inside ``transport.state_snapshot()``)
        *and* from the shared server pool's failure/latency generator,
        which is checkpointed separately; speculation must rewind both.
        """
        servers = getattr(self.fetcher.web, "servers", None)
        return {
            "transport": self.transport.state_snapshot(),
            "servers": servers.rng_state() if servers is not None else None,
        }

    def _draw_state_restore(self, state: dict) -> None:
        self.transport.restore_state(state["transport"])
        if state["servers"] is not None:
            self.fetcher.web.servers.restore_rng(state["servers"])

    def _topup_speculation(self, undone_round: int) -> None:
        """Extend the speculative stream while the pipeline has slack.

        Keeps roughly one round's worth of fetches in flight: when the
        undone round tail plus undone speculation drops below the batch
        size, peek the frontier's projected next checkout and prepare a
        chunk of it.  Draws happen here, synchronously — after every
        confirmed draw so far — which is exactly their canonical position
        if the projection holds; reconciliation rewinds them if not.
        """
        config = self.config
        spec = self._spec
        spec_len = 0 if spec is None else len(spec.urls)
        if spec_len >= 2 * config.batch_size:
            return
        if undone_round + (0 if spec is None else spec.undone()) >= config.batch_size:
            return
        want = min(_PREFETCH_CHUNK, 2 * config.batch_size - spec_len)
        preview = self.frontier.peek_batch(spec_len + want)
        if spec is None:
            spec = self._spec = _Speculation(snapshots=[self._draw_state_snapshot()])
        known = set(spec.urls)
        new_urls = [url for url in preview if url not in known][:want]
        if not new_urls:
            return
        started = time.perf_counter()
        pendings = []
        for url in new_urls:
            pendings.append(self.transport.prepare(url))
            spec.snapshots.append(self._draw_state_snapshot())
        self.stage_timings["fetch"] += time.perf_counter() - started
        spec.urls.extend(new_urls)
        spec.pendings.extend(pendings)
        spec.tasks.extend(
            self._spawn_wait_tasks(pendings, self._gate, self._server_gates)
        )
        self._prefetch_launched += len(new_urls)

    def _respeculate_round_end(self) -> None:
        """Correct the speculative stream at the round tail, where it is cheap.

        Every priority update this round makes (visits, expansions,
        failures, distillation boosts) is applied by now, so a projection
        taken here almost always survives the next round's
        reconciliation.  Mid-round speculation, by contrast, goes stale
        whenever a freshly discovered link outranks the queue — so trim
        the speculative tail back to its still-confirmed prefix (rewind
        the draws now, not at reconcile) and extend with the accurate
        projection, letting the next round's latency tick down through
        the boundary work.
        """
        projection = self.frontier.peek_batch(self.config.batch_size)
        spec = self._spec
        if spec is not None:
            limit = min(len(projection), len(spec.urls))
            prefix = 0
            while prefix < limit and projection[prefix] == spec.urls[prefix]:
                prefix += 1
            if prefix < len(spec.urls):
                self._prefetch_stale += len(spec.urls) - prefix
                for task in spec.tasks[prefix:]:
                    task.cancel()
                self._draw_state_restore(spec.snapshots[prefix])
                del spec.urls[prefix:]
                del spec.pendings[prefix:]
                del spec.tasks[prefix:]
                del spec.snapshots[prefix + 1 :]
        else:
            spec = self._spec = _Speculation(snapshots=[self._draw_state_snapshot()])
        new_urls = projection[len(spec.urls) :]
        if not new_urls:
            return
        started = time.perf_counter()
        pendings = []
        for url in new_urls:
            pendings.append(self.transport.prepare(url))
            spec.snapshots.append(self._draw_state_snapshot())
        self.stage_timings["fetch"] += time.perf_counter() - started
        spec.urls.extend(new_urls)
        spec.pendings.extend(pendings)
        spec.tasks.extend(
            self._spawn_wait_tasks(pendings, self._gate, self._server_gates)
        )
        self._prefetch_launched += len(new_urls)

    def _reconcile_speculation(self, urls: Sequence[str]) -> List["asyncio.Task"]:
        """Turn a canonical checkout into fetch tasks, reusing confirmed speculation.

        The longest common prefix of the speculative stream and the
        canonical checkout is confirmed: those prepares drew in exactly
        the order the non-prefetch path would have, so their in-flight
        tasks are adopted as-is.  Everything past the first mismatch is
        cancelled, the draw streams rewind to the confirmed-prefix
        snapshot, and the rest of the round prepares freshly — the
        replay leg of the confirm-or-replay contract.
        """
        spec = self._spec
        if spec is not None:
            limit = min(len(urls), len(spec.urls))
            prefix = 0
            while prefix < limit and urls[prefix] == spec.urls[prefix]:
                prefix += 1
            self._prefetch_hits += prefix
            if prefix == len(urls):
                # Whole round served from speculation; the surviving
                # suffix (drawn after this round's prepares — its
                # canonical position) stays live for the next round.
                tasks = spec.tasks[:prefix]
                self._spec = (
                    _Speculation(
                        urls=spec.urls[prefix:],
                        pendings=spec.pendings[prefix:],
                        tasks=spec.tasks[prefix:],
                        snapshots=spec.snapshots[prefix:],
                    )
                    if prefix < len(spec.urls)
                    else None
                )
                return tasks
            self._prefetch_stale += len(spec.urls) - prefix
            for task in spec.tasks[prefix:]:
                task.cancel()
            self._draw_state_restore(spec.snapshots[prefix])
            confirmed = spec.tasks[:prefix]
            self._spec = None
        else:
            prefix = 0
            confirmed = []
        started = time.perf_counter()
        pendings = [self.transport.prepare(url) for url in urls[prefix:]]
        self.stage_timings["fetch"] += time.perf_counter() - started
        return confirmed + self._spawn_wait_tasks(
            pendings, self._gate, self._server_gates
        )

    def _drain_speculation(self) -> None:
        """Cancel all speculation and rewind the draw streams to canonical.

        Runs before every checkpoint save and at prefetch-loop exit, so
        persisted transport/server RNG state never includes speculative
        draws — a resumed crawl replays them from the round boundary,
        bit for bit.
        """
        spec = self._spec
        if spec is None:
            return
        self._prefetch_drained += len(spec.urls)
        for task in spec.tasks:
            task.cancel()
        self._draw_state_restore(spec.snapshots[0])
        self._spec = None

    def _classify_stage(
        self, fetched: Sequence[Tuple[str, FetchResult]]
    ) -> List[BatchClassification]:
        """Score the round's pages in one batch, behind the outcome LRU."""
        outcomes: List[Optional[BatchClassification]] = []
        pending: List[TermFrequencies] = []
        positions: List[Tuple[int, int]] = []
        for index, (url, result) in enumerate(fetched):
            oid = self.frontier.entry(url).oid
            cached = self._outcome_cache.get(oid)
            outcomes.append(cached)
            if cached is None:
                pending.append(term_frequencies(result.tokens))
                positions.append((index, oid))
        if pending:
            scorer = (
                self._scorer()
                if self.config.score_backend == "numpy"
                else self.classifier
            )
            for (index, oid), outcome in zip(positions, scorer.classify_batch(pending)):
                outcomes[index] = outcome
                self._outcome_cache.put(oid, outcome)
        return outcomes  # type: ignore[return-value]

    def _commit_visit(self, url: str, result: FetchResult, outcome: BatchClassification) -> None:
        """Record one classified page: frontier state, links, expansion, trace."""
        self._tick += 1
        relevance = outcome.relevance
        best_leaf = outcome.best_leaf_cid if self.config.record_best_leaf else None
        entry = self.frontier.record_visit(url, relevance, self._tick, kcid=best_leaf)
        self._relevance[entry.oid] = relevance
        rows, expansion = self._link_rows(entry, result.out_links, relevance)
        self._link_writer.record(rows, entry.oid, relevance)
        hard_accepts = (
            self.taxonomy.good_ancestor_of(outcome.best_leaf_cid) is not None
            if self.config.focus_mode == "hard"
            else True
        )
        self._expand(expansion, relevance, hard_accepts)
        self._finish_visit(url, result, relevance, best_leaf)

    # -- shared steps ----------------------------------------------------------------
    def _finish_visit(
        self, url: str, result: FetchResult, relevance: float, best_leaf: Optional[int]
    ) -> None:
        self.trace.visits.append(
            PageVisit(
                tick=self._tick,
                url=url,
                relevance=relevance,
                server=result.server,
                out_degree=len(result.out_links),
                best_leaf_cid=best_leaf,
            )
        )
        self.trace.fetched_urls.append(url)
        self._since_distillation += 1
        self._since_checkpoint += 1

    def _maybe_checkpoint(self) -> None:
        """Save a resume point when one is due (round boundaries only).

        Two independent triggers: every ``checkpoint_every`` successful
        fetches, and every ``checkpoint_interval_s`` wall-clock seconds —
        the latter bounds at-risk work when fetches are slow (real
        networks) rather than plentiful.  The counter/timer reset
        *before* the save so the persisted engine state carries zero
        progress-toward-next-checkpoint, matching what a resumed engine
        starts from.
        """
        if self.checkpointer is None:
            return
        count_due = (
            self.config.checkpoint_every
            and self._since_checkpoint >= self.config.checkpoint_every
        )
        interval = self.config.checkpoint_interval_s
        time_due = (
            interval
            and self._last_checkpoint_s is not None
            and time.monotonic() - self._last_checkpoint_s >= interval
        )
        if not (count_due or time_due):
            return
        # The checkpoint must capture canonical draw-stream state: any
        # live cross-round speculation is cancelled and rewound first.
        self._drain_speculation()
        self._since_checkpoint = 0
        if interval:
            self._last_checkpoint_s = time.monotonic()
        self.checkpointer.save()

    def _expand(
        self, expansion: Sequence[Tuple[str, int, int]], relevance: float, hard_accepts: bool
    ) -> None:
        """Apply the focus rule to decide whether/with what priority to enqueue out-links.

        *expansion* is the pre-resolved ``(normalized, oid, sid)`` target
        list built by :meth:`_link_rows`, so enqueueing never re-derives
        URL hashes.  (It is de-duplicated and excludes self-links; both
        were no-ops under per-target ``add_url`` — a duplicate or the
        just-visited page can never raise its own frontier priority.)
        """
        mode = self.config.focus_mode
        if mode == "hard" and not hard_accepts:
            return
        priority = relevance if mode != "none" else _UNFOCUSED_PRIORITY
        self.frontier.add_many(expansion, priority)

    def _link_rows(
        self, source_entry: FrontierEntry, targets: Sequence[str], relevance: float
    ) -> Tuple[List[tuple], List[Tuple[str, int, int]]]:
        """LINK rows (in schema order) plus the expansion triples for a page.

        ``wgt_rev`` of the new edges is the source's relevance (E_B).
        ``wgt_fwd`` (E_F) needs the *destination's* relevance: known
        destinations use their CRAWL relevance, unknown ones inherit the
        source relevance until they are visited; edges pointing *to* this
        page are refreshed once its own relevance is known (immediately in
        serial mode, at round flush in batched mode).

        The second return value carries each distinct non-self target as
        ``(normalized_url, oid, sid)`` for :meth:`_expand`, sharing the
        normalisation/hash work already done here.
        """
        rows: List[tuple] = []
        expansion: List[Tuple[str, int, int]] = []
        seen: set[int] = set()
        for target in targets:
            normalized = normalize_url(target)
            target_oid = url_oid(normalized)
            if target_oid in seen or target_oid == source_entry.oid:
                continue
            seen.add(target_oid)
            target_entry = self.frontier.get_normalized(normalized)
            if target_entry is not None:
                target_sid = target_entry.sid
                forward = (
                    target_entry.relevance if target_entry.status == "visited" else relevance
                )
            else:
                target_sid = server_sid(normalized)
                forward = relevance
            rows.append(
                (
                    source_entry.oid,
                    source_entry.sid,
                    target_oid,
                    target_sid,
                    forward,
                    relevance,
                )
            )
            expansion.append((normalized, target_oid, target_sid))
        return rows, expansion

    # -- scoring plumbing ------------------------------------------------------------
    def _scorer(self) -> CompiledHierarchicalModel:
        """The columnar classifier, compiled on first use (numpy backend only).

        Compiled per engine — i.e. per crawl run — so taxonomy re-marking
        between crawls is always reflected; the compiled arrays are a pure
        cache and are rebuilt (identically) after a checkpoint resume.
        """
        if self._compiled_model is None:
            self._compiled_model = CompiledHierarchicalModel(self.classifier)
        return self._compiled_model

    # -- distillation plumbing -------------------------------------------------------
    def _incremental_distiller(self) -> IncrementalDistiller:
        if self._incremental is None:
            self._incremental = IncrementalDistiller(
                self.database,
                rho=self.config.rho,
                max_iterations=self.config.distill_iterations,
                backend=self.config.score_backend,
            )
        return self._incremental

    def _store_scores(self, result: DistillationResult) -> None:
        # Delta writes: only scores that changed since the last
        # distillation touch the heap (see ScoreTableStore).
        self._score_store.store("HUBS", result.hub_scores)
        self._score_store.store("AUTH", result.authority_scores)

    def _boost_hub_neighbours(self, result: DistillationResult) -> None:
        """Raise frontier priority of unvisited pages cited by the best hubs (§3.7)."""
        if not result.hub_scores or self.config.hub_boost_top_k <= 0:
            return
        top_hubs = {oid for oid, _ in result.top_hubs(self.config.hub_boost_top_k)}
        link_table = self.database.table("LINK")
        schema = link_table.schema
        for hub_oid in top_hubs:
            for row in link_table.lookup("link_src", (hub_oid,)):
                mapping = schema.row_to_mapping(row)
                if mapping["sid_src"] == mapping["sid_dst"]:
                    continue
                target_url = self.frontier.url_of_oid(mapping["oid_dst"])
                if target_url is None:
                    continue
                self.frontier.boost(target_url, self.config.hub_boost_priority)
