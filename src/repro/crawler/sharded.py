"""The sharded crawl engine: N workers, one deterministic crawl.

``engine="sharded"`` partitions a crawl by server — shard ``i`` owns
every host with ``server_sid(host) % N == i`` — across N workers, each
holding a frontier shard, a private server-pool RNG, and its own durable
minidb (segment + WAL) under ``<checkpoint_dir>/shard-XX``.  A
coordinator drives lockstep rounds; all cross-shard effects travel as
:mod:`repro.crawler.handoff` messages and are applied in one canonical
order, so the page sequence, relevance floats, and logical table state
are a pure function of the crawl content:

* ``N=1`` is bit-identical to the batched :class:`~.engine.CrawlEngine`
  (same server-pool stream, same heap keys, same ticks);
* ``N>=2`` runs are bit-identical to *each other* for any N and any
  message-delivery timing: per-host RNG substreams make fetch outcomes
  shard-count invariant, and coordinator-assigned ticks/discovery
  numbers make ordering timing-invariant.

One round is five hops: (1) the coordinator asks every shard for its
best *k* frontier candidates; (2) shards check them out locally;
(3) the coordinator merges by frontier key and selects the global
top-K; (4) shards fetch/classify their selections in global position
order and report outcomes; (5) the coordinator assigns ticks and
discovery numbers, routes link handoffs by destination shard, folds the
merged edge list (distillation runs coordinator-side over the union),
and sends each shard its :class:`~.handoff.ApplyRound` slice.

Durability: shards stamp a WAL cut marker per applied round
(:meth:`~repro.minidb.Database.log_cut`); a checkpoint is a barrier —
sync every shard WAL, atomically write the coordinator manifest
(:mod:`repro.core.checkpoint`), then snapshot each shard database.
Resume reopens every shard with ``replay_upto_cut=<manifest round>``,
rewinding all N databases to one common round boundary no matter where
a crash landed.
"""

from __future__ import annotations

import copy
import time
import traceback
from collections import deque
from dataclasses import asdict, replace
from hashlib import blake2b
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.classifier.compiled import CompiledHierarchicalModel
from repro.classifier.model import HierarchicalModel
from repro.classifier.tokenizer import term_frequencies
from repro.classifier.training import ModelInstaller
from repro.core.schema import create_crawl_tables, create_focus_database
from repro.distiller.compiled import CompiledLinkGraph, compiled_weighted_hits
from repro.distiller.hits import DistillationResult, weighted_hits
from repro.distiller.weights import Link
from repro.minidb import Database
from repro.taxonomy.tree import TopicTaxonomy
from repro.webgraph.fetch import Fetcher, FetchStats, FetchStatus
from repro.webgraph.servers import ServerPool
from repro.webgraph.transport import build_transport
from repro.webgraph.urls import normalize_url, server_sid, url_oid

from .engine import _UNFOCUSED_PRIORITY, CrawlerConfig, CrawlTrace, OutcomeLRU, PageVisit
from .frontier import Frontier
from .handoff import (
    ApplyLinks,
    ApplyRound,
    CandidateReply,
    CheckoutRequest,
    HandoffRecord,
    MessagePipe,
    OutcomeRecord,
    OutcomeReply,
    SelectionMsg,
    merge_handoffs,
    shard_of_sid,
)
from .policies import aggressive_discovery, breadth_first

__all__ = [
    "InProcessShardRunner",
    "MultiprocessShardRunner",
    "ShardServerPool",
    "ShardWorker",
    "ShardedCheckpointManager",
    "ShardedCrawler",
    "ShardedEngine",
    "build_sharded_crawler",
    "shard_db_path",
]

#: Stage keys shared with :class:`~.engine.CrawlEngine.stage_timings`.
_STAGES = ("fetch", "classify", "write")


def shard_db_path(checkpoint_dir: str, shard: int) -> str:
    """The durable database directory of one shard."""
    return str(Path(checkpoint_dir) / f"shard-{shard:02d}")


class ShardServerPool(ServerPool):
    """A server pool whose failure/latency stream is split per host.

    The single-stream pool makes fetch outcomes depend on the *global*
    interleaving of fetches — fine for one worker, fatal for N: moving a
    host to another shard would shift every draw after it.  Here each
    host draws from its own ``default_rng`` seeded by
    ``blake2b(f"{failure_seed}:{host}")``, so a host's outcome sequence
    depends only on the order of fetches *from that host* — which the
    coordinator fixes in global position order — never on N or on what
    other shards are doing.  Used for ``N >= 2``; ``N=1`` keeps the
    sequential clone so it stays bit-identical to the batched engine,
    latencies included.
    """

    def __init__(self, profiles, failure_seed: int) -> None:
        super().__init__(profiles=profiles, rng=np.random.default_rng(0))
        self.failure_seed = failure_seed
        self._host_rngs: Dict[str, np.random.Generator] = {}

    def _host_rng(self, name: str) -> np.random.Generator:
        rng = self._host_rngs.get(name)
        if rng is None:
            digest = blake2b(
                f"{self.failure_seed}:{name}".encode(), digest_size=8
            ).digest()
            rng = np.random.default_rng(int.from_bytes(digest, "big"))
            self._host_rngs[name] = rng
        return rng

    def simulate_fetch(self, name: str) -> tuple[bool, float]:
        profile = self.get(name)
        rng = self._host_rng(name)
        latency = float(rng.exponential(profile.mean_latency_ms))
        if rng.random() < profile.failure_rate:
            return False, latency * 2.5
        return True, latency

    def rng_state(self) -> dict:
        return {
            name: rng.bit_generator.state for name, rng in self._host_rngs.items()
        }

    def restore_rng(self, state: dict) -> None:
        self._host_rngs = {}
        for name, rng_state in state.items():
            rng = np.random.default_rng(0)
            rng.bit_generator.state = rng_state
            self._host_rngs[name] = rng


class ShardWorker:
    """One shard: a frontier, a database, a fetch stream, a classifier.

    Process-agnostic — the in-process runner holds these directly, the
    multiprocessing runner builds one from the pickled *payload* inside
    each spawned worker.  All crawl-visible decisions (ticks, discovery
    numbers, selection) come from the coordinator; the worker's job is
    to execute its slice and keep its tables bit-identical to the same
    slice of a single-engine crawl.
    """

    def __init__(self, payload: Dict[str, Any]) -> None:
        self.shard: int = payload["shard"]
        self.shards: int = payload["shards"]
        self.config: CrawlerConfig = payload["config"]
        self.classifier: HierarchicalModel = payload["model"]
        self.taxonomy: TopicTaxonomy = payload["taxonomy"]
        failure_seed: int = payload["failure_seed"]
        web = payload["web"]
        # Private fetch stream: sequential clone at N=1 (bit-identical to
        # the batched engine), per-host substreams at N>=2 (N-invariant).
        if self.shards == 1:
            pool = web.servers.clone()
            pool.reseed(failure_seed)
        else:
            pool = ShardServerPool(web.servers.profiles, failure_seed)
        self.pool = pool
        self.web = copy.copy(web)
        self.web.servers = pool
        self.fetcher = Fetcher(self.web, failure_seed=failure_seed)
        self.transport = build_transport(
            self.config.transport, self.fetcher, self.config.transport_options
        )
        wrap = payload.get("transport_wrap")
        if wrap is not None:
            self.transport = wrap(self.transport)

        db_path = payload.get("db_path")
        resume = payload.get("resume")
        self.durable = db_path is not None
        pages = payload.get("buffer_pool_pages", 2048)
        storage = self.config.resolve_storage()
        if db_path is None:
            self.database = create_focus_database(pages)
        elif resume is None:
            self.database = create_focus_database(pages, path=db_path, storage=storage)
        else:
            # Rewind to the manifest's round: replay the WAL only through
            # the last cut marker <= round and truncate the rest.
            self.database = Database.open(
                db_path,
                buffer_pool_pages=pages,
                storage=storage,
                replay_upto_cut=resume["round"],
            )
            create_crawl_tables(self.database)
        if not self.database.has_table("TAXONOMY"):
            ModelInstaller(self.database).install(self.classifier)

        ordering = self.config.ordering
        if ordering is None:
            ordering = (
                breadth_first() if self.config.focus_mode == "none" else aggressive_discovery()
            )
        self.frontier = Frontier(self.database, ordering)
        self._link_table = self.database.table("LINK")
        self._outcome_cache = OutcomeLRU(self.config.posterior_cache_size)
        self._compiled_model: Optional[CompiledHierarchicalModel] = None
        self.timings: Dict[str, float] = {stage: 0.0 for stage in _STAGES}
        if resume is not None:
            self.frontier.restore_state(resume["frontier"])
            self.transport.restore_state(resume["fetcher"])
            self.pool.restore_rng(resume["server_rng"])
            self.timings.update(resume.get("timings", {}))

    # -- message dispatch ---------------------------------------------------------
    def handle(self, message: Any) -> Tuple[bool, Any]:
        """Process one coordinator message; returns ``(replied, value)``."""
        if isinstance(message, CheckoutRequest):
            return True, self.checkout(message)
        if isinstance(message, SelectionMsg):
            return True, self.fetch_round(message)
        if isinstance(message, ApplyRound):
            self.apply_round(message)
            return False, None
        op = message[0]
        if op == "seeds":
            self.frontier.add_many_discovered(message[1], 1.0)
            return False, None
        if op == "ping":
            return True, ("ok", self.shard)
        if op == "sync_wal":
            if self.durable:
                self.database.sync_wal()
            return True, ("ok", self.shard)
        if op == "checkpoint_db":
            if self.durable:
                self.database.checkpoint(
                    app_state={"shard": self.shard, "round": message[1]}
                )
            return True, ("ok", self.shard)
        if op == "manifest_state":
            return True, self.manifest_state()
        if op == "io_snapshot":
            return True, self.database.io_snapshot()
        if op == "heap_stats":
            return True, self.frontier.heap_stats()
        raise ValueError(f"unknown shard message {message!r}")

    # -- round protocol -----------------------------------------------------------
    def checkout(self, message: CheckoutRequest) -> CandidateReply:
        """Pop this shard's best *k* candidates with their frontier keys."""
        urls = self.frontier.pop_batch(message.k)
        candidates = []
        for url in urls:
            entry = self.frontier.entry(url)
            candidates.append((self.frontier.current_key(entry), entry.oid, url))
        return CandidateReply(round=message.round, shard=self.shard, candidates=candidates)

    def fetch_round(self, message: SelectionMsg) -> OutcomeReply:
        """Fetch and classify the selected URLs, in global position order."""
        for url in message.rejected:
            self.frontier.requeue(url)
        stats_before = asdict(self.fetcher.stats)
        started = time.perf_counter()
        results = [
            (pos, url, self.transport.fetch(url)) for pos, url in message.selected
        ]
        self.timings["fetch"] += time.perf_counter() - started

        # Classification mirrors CrawlEngine._classify_stage: one batch
        # of cache misses, outcomes re-slotted in order.
        started = time.perf_counter()
        ok_items = [item for item in results if item[2].status is FetchStatus.OK]
        outcomes: List[Any] = []
        pending = []
        positions = []
        for index, (pos, url, result) in enumerate(ok_items):
            oid = self.frontier.entry(url).oid
            cached = self._outcome_cache.get(oid)
            outcomes.append(cached)
            if cached is None:
                pending.append(term_frequencies(result.tokens))
                positions.append((index, oid))
        if pending:
            scorer = (
                self._scorer()
                if self.config.score_backend == "numpy"
                else self.classifier
            )
            for (index, oid), outcome in zip(positions, scorer.classify_batch(pending)):
                outcomes[index] = outcome
                self._outcome_cache.put(oid, outcome)
        self.timings["classify"] += time.perf_counter() - started

        records: List[OutcomeRecord] = []
        ok_cursor = 0
        for pos, url, result in results:
            entry = self.frontier.entry(url)
            if result.status is not FetchStatus.OK:
                records.append(
                    OutcomeRecord(
                        pos=pos,
                        url=url,
                        oid=entry.oid,
                        sid=entry.sid,
                        ok=False,
                        permanent=result.status is FetchStatus.NOT_FOUND,
                    )
                )
                continue
            outcome = outcomes[ok_cursor]
            ok_cursor += 1
            relevance = outcome.relevance
            best_leaf = (
                outcome.best_leaf_cid if self.config.record_best_leaf else None
            )
            hard_accepts = (
                self.taxonomy.good_ancestor_of(outcome.best_leaf_cid) is not None
                if self.config.focus_mode == "hard"
                else True
            )
            seen: set[int] = set()
            targets: List[Tuple[str, int, int]] = []
            for target in result.out_links:
                normalized = normalize_url(target)
                target_oid = url_oid(normalized)
                if target_oid in seen or target_oid == entry.oid:
                    continue
                seen.add(target_oid)
                targets.append((normalized, target_oid, server_sid(normalized)))
            records.append(
                OutcomeRecord(
                    pos=pos,
                    url=url,
                    oid=entry.oid,
                    sid=entry.sid,
                    ok=True,
                    server=result.server,
                    relevance=relevance,
                    best_leaf=best_leaf,
                    hard_accepts=hard_accepts,
                    out_degree=len(result.out_links),
                    targets=targets,
                )
            )
        stats_after = asdict(self.fetcher.stats)
        delta = {key: stats_after[key] - stats_before[key] for key in stats_after}
        return OutcomeReply(
            round=message.round,
            shard=self.shard,
            outcomes=records,
            fetch_stats=delta,
            timings=dict(self.timings),
        )

    def apply_round(self, message: ApplyRound) -> None:
        """Commit this shard's slice of the round (see ApplyRound's contract)."""
        started = time.perf_counter()
        self.frontier.begin_batch()
        for url, permanent in message.failures:
            self.frontier.record_failure(
                url, self.config.max_retries, permanent=permanent
            )
        records = merge_handoffs([batch.records for batch in message.links])
        # Visits and expansions interleave in global position order (a
        # visit at pos sorts before its own links at (pos, 0..)): the
        # serverload snapshot a new frontier entry takes must count
        # exactly the visits the batched engine had committed when it
        # expanded the same link.
        ops: List[Tuple[int, int, Any]] = [
            (visit[4], -1, visit) for visit in message.visits
        ]
        ops.extend((record.pos, record.link_idx, record) for record in records)
        ops.sort(key=lambda op: (op[0], op[1]))
        for _pos, link_idx, op in ops:
            if link_idx < 0:
                url, tick, relevance, best_leaf, _pos = op
                self.frontier.record_visit(url, relevance, tick, kcid=best_leaf)
            elif op.expand:
                self.frontier.add_many_discovered(
                    [(op.dst_url, op.dst_oid, op.dst_sid, op.discovered)],
                    op.priority,
                )

        rows = []
        for record in records:
            # wgt_fwd needs the destination's relevance; this shard owns
            # the destination, so the lookup is local and exact.
            entry = self.frontier.get_normalized(record.dst_url)
            if entry is not None and entry.status == "visited":
                forward = entry.relevance
            else:
                forward = record.src_relevance
            rows.append(
                (
                    record.src_oid,
                    record.src_sid,
                    record.dst_oid,
                    record.dst_sid,
                    forward,
                    record.src_relevance,
                )
            )
        if rows:
            self._link_table.insert_many(rows)
        # Refresh E_F of edges into this round's locally visited pages
        # (the sharded BufferedLinkWriter.flush).
        updates = []
        for url, _tick, relevance, _leaf, _pos in message.visits:
            oid = self.frontier.entry(url).oid
            for rid in self._link_table.lookup_rids("link_dst", (oid,)):
                updates.append((rid, relevance))
        if updates:
            self._link_table.update_column("wgt_fwd", updates)

        if message.scores is not None:
            hub_items, auth_items = message.scores
            hubs = self.database.table("HUBS")
            auth = self.database.table("AUTH")
            hubs.truncate()
            auth.truncate()
            hubs.insert_many(hub_items)
            auth.insert_many(auth_items)
        if message.boost_hubs:
            schema = self._link_table.schema
            for hub_oid in message.boost_hubs:
                for row in self._link_table.lookup("link_src", (hub_oid,)):
                    mapping = schema.row_to_mapping(row)
                    if mapping["sid_src"] == mapping["sid_dst"]:
                        continue
                    target_url = self.frontier.url_of_oid(mapping["oid_dst"])
                    if target_url is None:
                        continue
                    self.frontier.boost(target_url, message.boost_priority)

        self.frontier.flush_batch()
        if message.log_cut and self.durable:
            self.database.log_cut(message.round)
        self.timings["write"] += time.perf_counter() - started

    # -- checkpoint support -------------------------------------------------------
    def manifest_state(self) -> Dict[str, Any]:
        """This shard's slice of the coordinator manifest (round boundary only)."""
        return {
            "frontier": self.frontier.state_snapshot(),
            "fetcher": self.transport.state_snapshot(),
            "server_rng": self.pool.rng_state(),
            "timings": dict(self.timings),
        }

    def close(self) -> None:
        if not self.database.closed:
            self.database.close()

    def _scorer(self) -> CompiledHierarchicalModel:
        if self._compiled_model is None:
            self._compiled_model = CompiledHierarchicalModel(self.classifier)
        return self._compiled_model


def _shard_worker_main(conn, payload: Dict[str, Any]) -> None:
    """Entry point of a spawned shard worker process."""
    try:
        worker = ShardWorker(payload)
    except Exception:
        conn.send(("__shard_error__", traceback.format_exc()))
        return
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        if isinstance(message, tuple) and message and message[0] == "close":
            worker.close()
            try:
                conn.send(("closed", worker.shard))
            except OSError:
                pass
            break
        try:
            replied, value = worker.handle(message)
        except Exception:
            conn.send(("__shard_error__", traceback.format_exc()))
            break
        if replied:
            conn.send(value)


class InProcessShardRunner:
    """All shards in this process, behind per-shard FIFO message pipes.

    The runner only *drains* a shard's inbox when the coordinator needs
    something from it, so pending fire-and-forget messages (applies,
    seeds) sit queued exactly as they would in a real pipe.  *schedule*
    permutes the order shards are serviced in — the seam the
    determinism tests drive random delivery orders through; correctness
    never depends on it because per-pipe FIFO is preserved and all
    cross-shard merges are canonical.
    """

    def __init__(
        self,
        payloads: Sequence[Dict[str, Any]],
        schedule: Optional[Callable[[List[int]], List[int]]] = None,
    ) -> None:
        self.workers = [ShardWorker(payload) for payload in payloads]
        self.pipes = [MessagePipe() for _ in payloads]
        self.replies: List[deque] = [deque() for _ in payloads]
        self.schedule = schedule

    def _order(self, shards: Sequence[int]) -> List[int]:
        shards = list(shards)
        if self.schedule is None:
            return shards
        permuted = list(self.schedule(list(shards)))
        if sorted(permuted) != sorted(shards):
            raise ValueError("schedule must permute the shard list, not change it")
        return permuted

    def _drain(self, shard: int) -> None:
        for message in self.pipes[shard].drain():
            replied, value = self.workers[shard].handle(message)
            if replied:
                self.replies[shard].append(value)

    def send(self, shard: int, message: Any) -> None:
        self.pipes[shard].send(message)

    def request(self, shard: int, message: Any) -> Any:
        self.send(shard, message)
        self._drain(shard)
        return self.replies[shard].popleft()

    def gather(self, messages: Dict[int, Any]) -> Dict[int, Any]:
        for shard, message in messages.items():
            self.send(shard, message)
        out = {}
        for shard in self._order(list(messages)):
            self._drain(shard)
            out[shard] = self.replies[shard].popleft()
        return out

    def broadcast(self, message: Any) -> Dict[int, Any]:
        return self.gather({shard: message for shard in range(len(self.workers))})

    def stop(self) -> None:
        for shard in range(len(self.workers)):
            self.pipes[shard].drain()  # unprocessed messages die with the runner
        for worker in self.workers:
            worker.close()


class MultiprocessShardRunner:
    """N spawned worker processes, one duplex pipe each (the multi-core path)."""

    def __init__(self, payloads: Sequence[Dict[str, Any]]) -> None:
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        self.processes = []
        self.conns = []
        for payload in payloads:
            parent, child = ctx.Pipe()
            process = ctx.Process(
                target=_shard_worker_main, args=(child, payload), daemon=True
            )
            process.start()
            child.close()
            self.processes.append(process)
            self.conns.append(parent)

    def _recv(self, shard: int) -> Any:
        try:
            reply = self.conns[shard].recv()
        except EOFError:
            raise RuntimeError(f"shard {shard} worker process died") from None
        if isinstance(reply, tuple) and reply and reply[0] == "__shard_error__":
            raise RuntimeError(f"shard {shard} worker failed:\n{reply[1]}")
        return reply

    def send(self, shard: int, message: Any) -> None:
        self.conns[shard].send(message)

    def request(self, shard: int, message: Any) -> Any:
        self.send(shard, message)
        return self._recv(shard)

    def gather(self, messages: Dict[int, Any]) -> Dict[int, Any]:
        for shard, message in messages.items():
            self.send(shard, message)
        return {shard: self._recv(shard) for shard in messages}

    def broadcast(self, message: Any) -> Dict[int, Any]:
        return self.gather({shard: message for shard in range(len(self.conns))})

    def stop(self) -> None:
        for conn in self.conns:
            try:
                conn.send(("close",))
            except (OSError, BrokenPipeError):
                pass
        for shard, conn in enumerate(self.conns):
            try:
                conn.recv()
            except (EOFError, OSError):
                pass
            conn.close()
        for process in self.processes:
            process.join(timeout=10)
            if process.is_alive():
                process.terminate()


class ShardedEngine:
    """The coordinator: merges checkouts, assigns ticks, routes handoffs.

    Owns every global decision — selection, ticks, discovery numbers,
    stagnation, distillation — and the merged columnar edge list the
    sharded HITS reduction runs over.  Duck-types the slice of
    :class:`~.engine.CrawlEngine` that :class:`~repro.core.system.CrawlHandle`
    and the service job manager drive: ``run(budget, max_rounds)``,
    ``stage_timings``, ``checkpointer``, ``run_distillation``.
    """

    def __init__(
        self,
        runner,
        config: CrawlerConfig,
        trace: CrawlTrace,
        shards: int,
        durable: bool,
    ) -> None:
        self.runner = runner
        self.config = config
        self.trace = trace
        self.shards = shards
        self.durable = durable
        self.checkpointer = None
        self._round = 0
        self._tick = 0
        self._since_distillation = 0
        self._since_checkpoint = 0
        self._last_checkpoint_s: Optional[float] = None
        self._stagnation_misses = 0
        self._next_discovered = 0
        #: oid -> measured relevance of every visited page, in visit order.
        self._relevance: Dict[int, float] = {}
        self._sid_of: Dict[int, int] = {}
        self._url_of_oid: Dict[int, str] = {}
        #: The merged crawl graph in canonical append order — exactly the
        #: LINK insert order of the equivalent single-engine crawl.
        self._rows: List[tuple] = []
        self._dst_positions: Dict[int, List[int]] = {}
        self._graph: Optional[CompiledLinkGraph] = None
        self._graph_len = 0
        #: Handoff accounting: "src->dst" -> records routed so far.
        self._handoff_watermarks: Dict[str, int] = {}
        self.fetch_stats = FetchStats()
        self._shard_timings: Dict[int, Dict[str, float]] = {}
        self._distill_s = 0.0

    # -- public surface ----------------------------------------------------------
    @property
    def stage_timings(self) -> Dict[str, float]:
        """Per-stage totals across shards (write lags one round per shard)."""
        totals = {stage: 0.0 for stage in _STAGES}
        for timings in self._shard_timings.values():
            for stage in _STAGES:
                totals[stage] += timings.get(stage, 0.0)
        totals["distill"] = self._distill_s
        return totals

    def fetch_overlap_ratio(self) -> float:
        return 0.0

    def url_of_oid(self, oid: int) -> Optional[str]:
        return self._url_of_oid.get(oid)

    def add_seeds(self, urls: Sequence[str]) -> None:
        per_shard: Dict[int, List[Tuple[str, int, int, int]]] = {}
        for url in urls:
            normalized = normalize_url(url)
            oid = url_oid(normalized)
            sid = server_sid(normalized)
            number = self._next_discovered
            self._next_discovered += 1
            self._sid_of.setdefault(oid, sid)
            self._url_of_oid.setdefault(oid, normalized)
            per_shard.setdefault(shard_of_sid(sid, self.shards), []).append(
                (normalized, oid, sid, number)
            )
        for shard, quads in per_shard.items():
            self.runner.send(shard, ("seeds", quads))
        self.runner.broadcast(("ping",))

    def run(self, budget: int, max_rounds: Optional[int] = None) -> CrawlTrace:
        """Run lockstep rounds until the budget or every frontier is exhausted."""
        if max_rounds is not None and max_rounds < 1:
            raise ValueError("max_rounds must be >= 1 (or None for unlimited)")
        if self.config.checkpoint_interval_s and self.checkpointer is not None:
            self._last_checkpoint_s = time.monotonic()
        stop = False
        rounds = 0
        while not stop and self.trace.pages_fetched < budget:
            if max_rounds is not None and rounds >= max_rounds:
                break
            rounds += 1
            if not self._run_round(budget):
                self.trace.stagnated = True
                break
            stop = self.trace.stagnated
        # The final round's ApplyRound is fire-and-forget; barrier so the
        # shard databases are consistent with the trace when run() returns.
        self.runner.broadcast(("ping",))
        return self.trace

    def run_distillation(self) -> DistillationResult:
        """Sharded reduction outside a round (the top_hubs-on-demand path)."""
        result, hub_parts, auth_parts, boost = self._compute_distillation()
        for shard in range(self.shards):
            self.runner.send(
                shard,
                ApplyRound(
                    round=self._round,
                    scores=(hub_parts[shard], auth_parts[shard]),
                    boost_hubs=boost,
                    boost_priority=self.config.hub_boost_priority,
                    log_cut=False,
                ),
            )
        self.runner.broadcast(("ping",))
        return result

    # -- the round ---------------------------------------------------------------
    def _run_round(self, budget: int) -> bool:
        """One five-hop round; returns False when every frontier came up empty."""
        self._round += 1
        round_no = self._round
        k = min(self.config.batch_size, budget - self.trace.pages_fetched)

        # Hops 1-2: checkout.  The global top-k is a subset of the union
        # of per-shard top-ks (each shard returns its k best).
        replies = self.runner.broadcast(CheckoutRequest(round=round_no, k=k))
        candidates: List[Tuple[tuple, int, str, int]] = []
        for shard in range(self.shards):
            for key, oid, url in replies[shard].candidates:
                candidates.append((key, oid, url, shard))
        candidates.sort(key=lambda item: (item[0], item[1]))
        selected = candidates[:k]
        if not selected:
            return False

        # Hop 3: selection fan-out (global positions), rejects returned.
        selections: Dict[int, SelectionMsg] = {}
        for shard in range(self.shards):
            selections[shard] = SelectionMsg(round=round_no)
        for pos, (_key, _oid, url, shard) in enumerate(selected):
            selections[shard].selected.append((pos, url))
        for _key, _oid, url, shard in candidates[k:]:
            selections[shard].rejected.append(url)
        involved = {
            shard
            for shard, message in selections.items()
            if message.selected or message.rejected
        }

        # Hop 4: fetch + classify, outcomes merged back in position order.
        outcome_replies = self.runner.gather(
            {shard: selections[shard] for shard in involved}
        )
        outcomes: List[OutcomeRecord] = []
        for shard, reply in outcome_replies.items():
            self._shard_timings[shard] = reply.timings
            for field_name, value in reply.fetch_stats.items():
                setattr(
                    self.fetch_stats,
                    field_name,
                    getattr(self.fetch_stats, field_name) + value,
                )
            outcomes.extend(reply.outcomes)
        outcomes.sort(key=lambda record: record.pos)

        # Global commit: stagnation scan, ticks, trace, edge folding, and
        # handoff routing — all in checkout order, exactly the order
        # CrawlEngine._process_group/_commit_visit would walk.
        failures: Dict[int, List[Tuple[str, bool]]] = {}
        visits: Dict[int, List[Tuple[str, int, float, Optional[int]]]] = {}
        handoffs: Dict[int, Dict[int, List[HandoffRecord]]] = {}
        successes: List[OutcomeRecord] = []
        for record in outcomes:
            src_shard = shard_of_sid(record.sid, self.shards)
            if not record.ok:
                failures.setdefault(src_shard, []).append(
                    (record.url, record.permanent)
                )
                self.trace.failed_urls.append(record.url)
                self._stagnation_misses += 1
                if self._stagnation_misses >= self.config.stagnation_patience:
                    self.trace.stagnated = True
                continue
            successes.append(record)
            self._stagnation_misses = 0
            self._tick += 1
            visits.setdefault(src_shard, []).append(
                (record.url, self._tick, record.relevance, record.best_leaf, record.pos)
            )
            self._relevance[record.oid] = record.relevance
            self._sid_of.setdefault(record.oid, record.sid)
            self._url_of_oid.setdefault(record.oid, record.url)
            mode = self.config.focus_mode
            expand = not (mode == "hard" and not record.hard_accepts)
            priority = record.relevance if mode != "none" else _UNFOCUSED_PRIORITY
            for link_idx, (target_url, target_oid, target_sid) in enumerate(
                record.targets
            ):
                number = self._next_discovered
                self._next_discovered += 1
                self._sid_of.setdefault(target_oid, target_sid)
                self._url_of_oid.setdefault(target_oid, target_url)
                handoff = HandoffRecord(
                    round=round_no,
                    pos=record.pos,
                    link_idx=link_idx,
                    src_oid=record.oid,
                    src_sid=record.sid,
                    dst_url=target_url,
                    dst_oid=target_oid,
                    dst_sid=target_sid,
                    src_relevance=record.relevance,
                    discovered=number,
                    expand=expand,
                    priority=priority,
                )
                dst_shard = shard_of_sid(target_sid, self.shards)
                handoffs.setdefault(dst_shard, {}).setdefault(src_shard, []).append(
                    handoff
                )
                self._append_edge(handoff)
            self.trace.visits.append(
                PageVisit(
                    tick=self._tick,
                    url=record.url,
                    relevance=record.relevance,
                    server=record.server,
                    out_degree=record.out_degree,
                    best_leaf_cid=record.best_leaf,
                )
            )
            self.trace.fetched_urls.append(record.url)
            self._since_distillation += 1
            self._since_checkpoint += 1
        # E_F refresh of the merged graph for this round's visits (the
        # coordinator-side mirror of BufferedLinkWriter.flush).
        for record in successes:
            self._patch_forward(record.oid, record.relevance)

        distilled = bool(
            self.config.distill_every
            and self._since_distillation >= self.config.distill_every
        )
        if distilled:
            _result, hub_parts, auth_parts, boost = self._compute_distillation()

        # Hop 5: per-shard apply.
        for shard in range(self.shards):
            links = [
                ApplyLinks(src_shard=src, records=records)
                for src, records in sorted(handoffs.get(shard, {}).items())
            ]
            for batch in links:
                key = f"{batch.src_shard}->{shard}"
                self._handoff_watermarks[key] = self._handoff_watermarks.get(
                    key, 0
                ) + len(batch.records)
            message = ApplyRound(
                round=round_no,
                failures=failures.get(shard, []),
                visits=visits.get(shard, []),
                links=links,
                scores=(hub_parts[shard], auth_parts[shard]) if distilled else None,
                boost_hubs=boost if distilled else [],
                boost_priority=self.config.hub_boost_priority,
                log_cut=self.durable,
            )
            if (
                message.failures
                or message.visits
                or message.links
                or distilled
                or self.durable
            ):
                self.runner.send(shard, message)
        self._maybe_checkpoint()
        return True

    # -- merged-graph distillation -------------------------------------------------
    def _append_edge(self, record: HandoffRecord) -> None:
        relevance = self._relevance.get(record.dst_oid)
        forward = relevance if relevance is not None else record.src_relevance
        row = (
            record.src_oid,
            record.src_sid,
            record.dst_oid,
            record.dst_sid,
            forward,
            record.src_relevance,
        )
        position = len(self._rows)
        self._rows.append(row)
        self._dst_positions.setdefault(record.dst_oid, []).append(position)

    def _patch_forward(self, oid: int, relevance: float) -> None:
        for position in self._dst_positions.get(oid, ()):
            row = self._rows[position]
            patched = row[:4] + (relevance, row[5])
            self._rows[position] = patched
            if self._graph is not None and position < self._graph_len:
                # update_row no-ops for keys add_row dropped (nepotistic).
                self._graph.update_row(position, patched)

    def _ensure_graph(self) -> CompiledLinkGraph:
        if self._graph is None:
            self._graph = CompiledLinkGraph()
            self._graph_len = 0
        for position in range(self._graph_len, len(self._rows)):
            self._graph.add_row(self._rows[position], key=position)
        self._graph_len = len(self._rows)
        return self._graph

    def _compute_distillation(self):
        started = time.perf_counter()
        if self.config.score_backend == "numpy":
            result = compiled_weighted_hits(
                self._ensure_graph(),
                relevance=self._relevance,
                rho=self.config.rho,
                max_iterations=self.config.distill_iterations,
            )
        else:
            result = weighted_hits(
                [Link(*row) for row in self._rows],
                relevance=self._relevance,
                rho=self.config.rho,
                max_iterations=self.config.distill_iterations,
            )
        self.trace.distillations += 1
        self.trace.last_distillation = result
        self._since_distillation = 0
        hub_parts: List[List[Tuple[int, float]]] = [[] for _ in range(self.shards)]
        auth_parts: List[List[Tuple[int, float]]] = [[] for _ in range(self.shards)]
        for oid, score in result.hub_scores.items():
            hub_parts[shard_of_sid(self._sid_of[oid], self.shards)].append((oid, score))
        for oid, score in result.authority_scores.items():
            auth_parts[shard_of_sid(self._sid_of[oid], self.shards)].append(
                (oid, score)
            )
        if result.hub_scores and self.config.hub_boost_top_k > 0:
            boost = [
                oid for oid, _ in result.top_hubs(self.config.hub_boost_top_k)
            ]
        else:
            boost = []
        self._distill_s += time.perf_counter() - started
        return result, hub_parts, auth_parts, boost

    # -- checkpointing -----------------------------------------------------------
    def _maybe_checkpoint(self) -> None:
        if self.checkpointer is None:
            return
        count_due = (
            self.config.checkpoint_every
            and self._since_checkpoint >= self.config.checkpoint_every
        )
        interval = self.config.checkpoint_interval_s
        time_due = (
            interval
            and self._last_checkpoint_s is not None
            and time.monotonic() - self._last_checkpoint_s >= interval
        )
        if not (count_due or time_due):
            return
        self._since_checkpoint = 0
        if interval:
            self._last_checkpoint_s = time.monotonic()
        self.checkpointer.save()

    def state_snapshot(self) -> Dict[str, Any]:
        """The coordinator's complete crawl state (round boundaries only)."""
        return {
            "round": self._round,
            "tick": self._tick,
            "since_distillation": self._since_distillation,
            "since_checkpoint": self._since_checkpoint,
            "stagnation_misses": self._stagnation_misses,
            "next_discovered": self._next_discovered,
            "relevance": dict(self._relevance),
            "sid_of": dict(self._sid_of),
            "url_of_oid": dict(self._url_of_oid),
            "rows": list(self._rows),
            "watermarks": dict(self._handoff_watermarks),
            "fetch_stats": asdict(self.fetch_stats),
            "shard_timings": {
                shard: dict(t) for shard, t in self._shard_timings.items()
            },
            "distill_s": self._distill_s,
            "trace": self.trace,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._round = state["round"]
        self._tick = state["tick"]
        self._since_distillation = state["since_distillation"]
        self._since_checkpoint = state["since_checkpoint"]
        self._stagnation_misses = state["stagnation_misses"]
        self._next_discovered = state["next_discovered"]
        self._relevance = dict(state["relevance"])
        self._sid_of = dict(state["sid_of"])
        self._url_of_oid = dict(state["url_of_oid"])
        self._rows = list(state["rows"])
        self._dst_positions = {}
        for position, row in enumerate(self._rows):
            self._dst_positions.setdefault(row[2], []).append(position)
        self._graph = None  # rebuilt (identically) on the next distillation
        self._graph_len = 0
        self._handoff_watermarks = dict(state["watermarks"])
        self.fetch_stats = FetchStats(**state["fetch_stats"])
        self._shard_timings = {
            shard: dict(t) for shard, t in state["shard_timings"].items()
        }
        self._distill_s = state["distill_s"]
        saved: CrawlTrace = state["trace"]
        self.trace.visits[:] = saved.visits
        self.trace.fetched_urls[:] = saved.fetched_urls
        self.trace.failed_urls[:] = saved.failed_urls
        self.trace.distillations = saved.distillations
        self.trace.stagnated = saved.stagnated
        self.trace.last_distillation = saved.last_distillation


class _AggregateFetcher:
    """Duck-types the ``.stats`` surface of :class:`Fetcher` for CrawlHandle."""

    def __init__(self, engine: ShardedEngine) -> None:
        self._engine = engine

    @property
    def stats(self) -> FetchStats:
        return self._engine.fetch_stats


class _ShardedDatabaseStub:
    """Stands in for ``crawler.database``: sharded crawls have N of them.

    Knows how to close (shut the runner down) and report aggregated I/O;
    anything table-shaped raises with a pointer at the per-shard
    databases under the checkpoint directory.
    """

    sharded = True

    def __init__(self, crawler: "ShardedCrawler") -> None:
        self._crawler = crawler
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._crawler.shutdown()

    def io_snapshot(self) -> Dict[str, Any]:
        return self._crawler.io_snapshot()

    def __getattr__(self, name: str):
        raise AttributeError(
            f"sharded crawls keep one database per shard (shard-XX/ under the "
            f"checkpoint directory); {name!r} is not available on the "
            f"coordinator stub"
        )


class ShardedCrawler:
    """Duck-types :class:`~.focused.FocusedCrawler` over a shard fleet."""

    def __init__(
        self,
        engine: ShardedEngine,
        config: CrawlerConfig,
        trace: CrawlTrace,
    ) -> None:
        self.engine = engine
        self.config = config
        self.trace = trace
        self.database = _ShardedDatabaseStub(self)
        self.fetcher = _AggregateFetcher(engine)
        self._shutdown = False

    def add_seeds(self, urls: Sequence[str]) -> None:
        self.engine.add_seeds(urls)

    def top_hubs(self, k: int = 10) -> List[Tuple[str, float]]:
        if self.trace.last_distillation is None:
            self.engine.run_distillation()
        result = self.trace.last_distillation
        return [
            (self.engine.url_of_oid(oid) or str(oid), score)
            for oid, score in result.top_hubs(k)
        ]

    def top_authorities(self, k: int = 10) -> List[Tuple[str, float]]:
        if self.trace.last_distillation is None:
            self.engine.run_distillation()
        result = self.trace.last_distillation
        return [
            (self.engine.url_of_oid(oid) or str(oid), score)
            for oid, score in result.top_authorities(k)
        ]

    def io_snapshot(self) -> Dict[str, Any]:
        """Aggregated I/O counters plus the per-shard breakdown."""
        replies = self.engine.runner.broadcast(("io_snapshot",))
        shards = [replies[shard] for shard in range(self.engine.shards)]
        totals: Dict[str, Any] = {}
        for snapshot in shards:
            for key, value in snapshot.items():
                if isinstance(value, (int, float)):
                    totals[key] = totals.get(key, 0.0) + value
        totals["shards"] = [dict(snapshot) for snapshot in shards]
        return totals

    def heap_stats(self) -> List[Dict[str, int]]:
        replies = self.engine.runner.broadcast(("heap_stats",))
        return [replies[shard] for shard in range(self.engine.shards)]

    def checkpoint_manager(self, path: str, **kwargs) -> "ShardedCheckpointManager":
        return ShardedCheckpointManager(self, path, **kwargs)

    def shutdown(self) -> None:
        if self._shutdown:
            return
        self._shutdown = True
        self.database._closed = True
        self.engine.runner.stop()


class ShardedCheckpointManager:
    """Kill-safe checkpoints for a shard fleet: manifest-then-shards.

    ``save()`` is a barrier protocol: (1) fsync every shard WAL — each
    already carries a cut marker per applied round; (2) atomically write
    the coordinator manifest (round, engine state, per-shard frontier /
    RNG / transport snapshots, handoff watermarks); (3) snapshot each
    shard database.  A crash anywhere leaves the *last committed
    manifest* authoritative, and every shard can rewind to its round via
    ``replay_upto_cut`` — shard snapshots are pure acceleration.
    """

    def __init__(
        self,
        crawler: ShardedCrawler,
        path: str,
        *,
        seeds: Sequence[str],
        good_topics: Sequence[str],
        fetch_failure_seed: int = 0,
        focused: bool = True,
        ops=None,
        checkpoints_saved: int = 0,
    ) -> None:
        from repro.core.checkpoint import CoordinatorManifest, write_coordinator_manifest

        self._manifest_cls = CoordinatorManifest
        self._write_manifest = write_coordinator_manifest
        self.crawler = crawler
        self.path = str(path)
        self.seeds = list(seeds)
        self.good_topics = list(good_topics)
        self.fetch_failure_seed = fetch_failure_seed
        self.focused = focused
        self.ops = ops
        self.checkpoints_saved = checkpoints_saved
        self.save_seconds = 0.0

    def attach(self) -> None:
        self.crawler.engine.checkpointer = self

    def save(self) -> None:
        started = time.perf_counter()
        engine = self.crawler.engine
        runner = engine.runner
        if engine.durable:
            runner.broadcast(("sync_wal",))
        shard_states = runner.broadcast(("manifest_state",))
        for shard, state in shard_states.items():
            engine._shard_timings[shard] = dict(state.get("timings", {}))
        manifest = self._manifest_cls(
            round=engine._round,
            shards=engine.shards,
            config=self.crawler.config,
            focused=self.focused,
            seeds=self.seeds,
            good_topics=self.good_topics,
            fetch_failure_seed=self.fetch_failure_seed,
            engine_state=engine.state_snapshot(),
            shard_states=[shard_states[shard] for shard in range(engine.shards)],
            checkpoints_saved=self.checkpoints_saved + 1,
        )
        self._write_manifest(self.path, manifest, ops=self.ops)
        self.checkpoints_saved += 1
        runner.broadcast(("checkpoint_db", engine._round))
        self.save_seconds += time.perf_counter() - started


def _shard_payloads(
    web,
    model: HierarchicalModel,
    taxonomy: TopicTaxonomy,
    config: CrawlerConfig,
    *,
    shards: int,
    fetch_failure_seed: int,
    buffer_pool_pages: int,
    checkpoint_dir: Optional[str],
    transport_wrap,
    manifest,
) -> List[Dict[str, Any]]:
    payloads = []
    for shard in range(shards):
        resume = None
        if manifest is not None:
            resume = {"round": manifest.round, **manifest.shard_states[shard]}
        payloads.append(
            {
                "shard": shard,
                "shards": shards,
                "config": config,
                "web": web,
                "model": model,
                "taxonomy": taxonomy,
                "failure_seed": fetch_failure_seed,
                "buffer_pool_pages": buffer_pool_pages,
                "db_path": (
                    shard_db_path(checkpoint_dir, shard) if checkpoint_dir else None
                ),
                "resume": resume,
                "transport_wrap": transport_wrap,
            }
        )
    return payloads


def build_sharded_crawler(
    web,
    model: HierarchicalModel,
    taxonomy: TopicTaxonomy,
    config: CrawlerConfig,
    *,
    focused: bool = True,
    fetch_failure_seed: int = 0,
    checkpoint_dir: Optional[str] = None,
    buffer_pool_pages: int = 2048,
    transport_wrap=None,
    schedule: Optional[Callable[[List[int]], List[int]]] = None,
    manifest=None,
) -> ShardedCrawler:
    """Construct the shard fleet + coordinator for ``engine="sharded"``.

    With *manifest* (a :class:`~repro.core.checkpoint.CoordinatorManifest`)
    the fleet resumes: every shard database reopens with
    ``replay_upto_cut=manifest.round`` and the coordinator adopts the
    manifest's engine state.
    """
    config = replace(config)
    if not focused:
        # Mirror UnfocusedCrawler: measure relevance, never use it.
        config.focus_mode = "none"
        if config.ordering is None:
            config.ordering = breadth_first()
        config.distill_every = 0
    shards = config.resolve_shards()
    runner_kind = getattr(config, "shard_runner", "process") or "process"
    if runner_kind not in ("process", "inprocess"):
        raise ValueError(
            f"unknown shard_runner {runner_kind!r}; expected 'process' or 'inprocess'"
        )
    if transport_wrap is not None and runner_kind != "inprocess":
        raise ValueError(
            "a wrapped transport cannot cross a process boundary; use "
            "shard_runner='inprocess' for transport-wrapped sharded crawls"
        )
    if schedule is not None and runner_kind != "inprocess":
        raise ValueError("delivery schedules only apply to shard_runner='inprocess'")
    storage = config.resolve_storage()
    if (
        checkpoint_dir is not None
        and shards > 1
        and storage.ops is not None
        and storage.ops_factory is None
    ):
        raise ValueError(
            "sharded durable crawls need storage.ops_factory (one FileOps per "
            "shard database); a single shared storage.ops instance would "
            "entangle the shards' file and fault-injection state"
        )
    payloads = _shard_payloads(
        web,
        model,
        taxonomy,
        config,
        shards=shards,
        fetch_failure_seed=fetch_failure_seed,
        buffer_pool_pages=buffer_pool_pages,
        checkpoint_dir=checkpoint_dir,
        transport_wrap=transport_wrap,
        manifest=manifest,
    )
    if runner_kind == "inprocess":
        runner = InProcessShardRunner(payloads, schedule=schedule)
    else:
        for payload in payloads:
            payload.pop("transport_wrap")
        runner = MultiprocessShardRunner(payloads)
    trace = CrawlTrace()
    engine = ShardedEngine(
        runner, config, trace, shards=shards, durable=checkpoint_dir is not None
    )
    crawler = ShardedCrawler(engine, config, trace)
    if manifest is not None:
        engine.restore_state(manifest.engine_state)
    return crawler
