"""SingleProbe: document-at-a-time classification against the database.

This is the paper's Figure 2 access path: for every term of the test
document an index probe retrieves the per-child θ statistics, and the
child log-likelihoods are updated term by term.  Two probe variants are
reproduced, matching the first two bars of Figure 8(a):

* ``mode="stat"`` ("SQL" in the figure) probes the per-node ``STAT_<c0>``
  table through its tid index — one small record per (child, term);
* ``mode="blob"`` probes the ``BLOB`` table keyed by (pcid, tid) — one
  packed record holding every child's θ for that term.

Either way the access pattern is a random probe per distinct term per
internal node, which is exactly why the paper finds SingleProbe
disk-bound for large taxonomies.  The documents themselves are read from
the ``DOCUMENT`` table through the did index (random I/O as well), so the
experiment's doc-scan / probe breakdown is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional

from repro.minidb import Database
from repro.taxonomy.tree import ROOT_CID, TopicTaxonomy

from .model import normalize_log_scores
from .tokenizer import TermFrequencies
from .training import ModelInstaller, stat_table_name


@dataclass
class ClassificationResult:
    """Outcome of classifying one document."""

    relevance: float
    posteriors: Dict[int, float] = field(default_factory=dict)
    best_leaf: Optional[int] = None


@dataclass
class ProbeCost:
    """I/O accounting for a classification run (drives Figure 8 breakdowns)."""

    doc_scan_cost: float = 0.0
    probe_cost: float = 0.0
    join_cost: float = 0.0
    documents: int = 0
    probes: int = 0

    def total(self) -> float:
        return self.doc_scan_cost + self.probe_cost + self.join_cost


def propagate_posteriors(
    taxonomy: TopicTaxonomy,
    conditional_fn: Callable[[int], Dict[int, float]],
    restrict_to_paths: bool = True,
) -> Dict[int, float]:
    """Chain-rule propagation of Pr[c | d] down the taxonomy.

    ``conditional_fn(c0_cid)`` must return Pr[ci | c0, d] for the children
    of c0.  With ``restrict_to_paths`` only the root and path nodes are
    expanded (all the soft-focus relevance needs).
    """
    posteriors: Dict[int, float] = {ROOT_CID: 1.0}
    frontier = (
        {n.cid for n in taxonomy.evaluation_frontier()} if restrict_to_paths else None
    )
    for node in taxonomy.nodes():
        if node.is_leaf:
            continue
        if frontier is not None and node.cid not in frontier:
            continue
        parent_probability = posteriors.get(node.cid, 0.0)
        if parent_probability <= 0.0:
            continue
        for child_cid, probability in conditional_fn(node.cid).items():
            posteriors[child_cid] = parent_probability * probability
    return posteriors


class SingleProbeClassifier:
    """Per-document classifier probing the DB once per (internal node, term)."""

    def __init__(self, database: Database, taxonomy: TopicTaxonomy, mode: str = "blob") -> None:
        if mode not in ("blob", "stat"):
            raise ValueError(f"mode must be 'blob' or 'stat', got {mode!r}")
        self.database = database
        self.taxonomy = taxonomy
        self.mode = mode
        self.cost = ProbeCost()
        self._taxonomy_cache: Dict[int, list[dict]] = {}

    # -- metadata -------------------------------------------------------------------
    def _children_metadata(self, c0_cid: int) -> list[dict]:
        """Child rows (kcid, logprior, logdenom) of c0, cached in memory.

        The TAXONOMY table is tiny (one row per class) and any real engine
        would keep it cached; the interesting I/O is the θ probes.
        """
        if c0_cid not in self._taxonomy_cache:
            rows = self.database.table("TAXONOMY").lookup("taxonomy_pcid", (c0_cid,))
            schema = self.database.table("TAXONOMY").schema
            children = [schema.row_to_mapping(row) for row in rows]
            self._taxonomy_cache[c0_cid] = [
                child for child in children if child["logdenom"] is not None
            ]
        return self._taxonomy_cache[c0_cid]

    # -- probing -----------------------------------------------------------------------
    def _probe(self, c0_cid: int, tid: int) -> Optional[list[tuple[int, float]]]:
        """Retrieve (kcid, logtheta) records for (c0, tid); None when t ∉ F(c0)."""
        self.cost.probes += 1
        if self.mode == "blob":
            table = self.database.table("BLOB")
            rows = table.lookup("blob_key", (c0_cid, tid))
            if not rows:
                return None
            schema = table.schema
            payload = schema.row_to_mapping(rows[0])["stat"]
            return ModelInstaller.decode_blob(payload)
        table = self.database.table(stat_table_name(c0_cid))
        rows = table.lookup(f"{stat_table_name(c0_cid).lower()}_tid", (tid,))
        if not rows:
            return None
        schema = table.schema
        return [
            (mapping["kcid"], mapping["logtheta"])
            for mapping in (schema.row_to_mapping(row) for row in rows)
        ]

    def conditional_posteriors(self, c0_cid: int, document: TermFrequencies) -> Dict[int, float]:
        """Pr[ci | c0, d] computed with one probe per term (Figure 2)."""
        children = self._children_metadata(c0_cid)
        if not children:
            return {}
        log_scores = {child["kcid"]: 0.0 for child in children}
        logdenom = {child["kcid"]: child["logdenom"] for child in children}
        before = self.database.stats.copy()
        for tid, freq in document.items():
            records = self._probe(c0_cid, tid)
            if records is None:
                continue  # t ∉ F(c0)
            present = {kcid for kcid, _ in records}
            for kcid, logtheta in records:
                if kcid in log_scores:
                    log_scores[kcid] += freq * logtheta
            for kcid in log_scores:
                if kcid not in present:
                    log_scores[kcid] -= freq * logdenom[kcid]
        self.cost.probe_cost += self.database.stats.diff(before).simulated_cost()
        for child in children:
            prior = child["logprior"] if child["logprior"] is not None else 0.0
            log_scores[child["kcid"]] += prior
        return normalize_log_scores(log_scores)

    # -- classification ------------------------------------------------------------------
    def classify(self, document: TermFrequencies) -> ClassificationResult:
        """Classify one in-memory document (already tokenised)."""
        posteriors = propagate_posteriors(
            self.taxonomy,
            lambda c0: self.conditional_posteriors(c0, document),
            restrict_to_paths=True,
        )
        relevance = sum(
            posteriors.get(node.cid, 0.0) for node in self.taxonomy.good_nodes()
        )
        self.cost.documents += 1
        return ClassificationResult(relevance=float(relevance), posteriors=posteriors)

    def relevance(self, document: TermFrequencies) -> float:
        return self.classify(document).relevance

    def classify_batch(self, dids: Iterable[int]) -> Dict[int, ClassificationResult]:
        """Classify documents stored in the DOCUMENT table, one did at a time."""
        results: Dict[int, ClassificationResult] = {}
        document_table = self.database.table("DOCUMENT")
        schema = document_table.schema
        for did in dids:
            before = self.database.stats.copy()
            rows = document_table.lookup("document_did", (did,))
            frequencies = TermFrequencies(
                {
                    mapping["tid"]: mapping["freq"]
                    for mapping in (schema.row_to_mapping(row) for row in rows)
                }
            )
            self.cost.doc_scan_cost += self.database.stats.diff(before).simulated_cost()
            results[did] = self.classify(frequencies)
        return results
