"""Columnar NumPy scoring core: the classifier compiled into array kernels.

The reference classification path (:class:`~repro.classifier.model.
HierarchicalModel`) walks Python dicts per document, per taxonomy node,
per term.  This module *compiles* a trained model once into flat NumPy
structures and scores whole batches with vectorized kernels:

* one shared term-id → row mapping over the union of all feature sets,
  and one dense ``(n_terms, n_children_total)`` log-likelihood matrix
  covering every child of every internal node side by side.  Entry
  ``(t, j)`` is ``logtheta(child_j, t)`` when the statistic is stored,
  the smoothed ``-logdenom(child_j)`` when term *t* is a feature of
  child_j's node without a stored statistic — exactly the tuples the
  reference path caches lazily in ``NodeModel._term_vectors`` — and
  ``0.0`` when *t* is not a feature of that node (no contribution, as
  in the reference's feature filter);
* a batch of documents packed once into a sparse COO doc-term batch;
  all per-(node, child) log-likelihood sums are produced by one fancy
  index plus one ``np.bincount`` scatter-add per child column (a
  CSR-style sparse × dense product without leaving NumPy);
* the Equation-2 chain rule as a running ``(docs, classes)`` posterior
  matrix, from which Equation-3 relevance (sum over good classes) and
  the best leaf (argmax over leaves, first-winner tie-breaking like the
  reference ``max``) are read off with two reductions.

Numerics: the kernels perform the same operations as the reference path
but accumulate in different association orders, so results agree to
floating-point tolerance rather than bit-for-bit — tests enforce 1e-9 on
posteriors, relevance, and best-leaf identity.  Within the compiled
backend itself, scoring is deterministic and independent of batch
packing: every accumulation (``np.bincount``) visits a document's
entries in the document's own packing order, so a batch of one
reproduces a batch of K bit for bit (checkpoint/resume relies on this).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.taxonomy.tree import ROOT_CID, TopicTaxonomy

from .model import _MIN_LOG, BatchClassification, HierarchicalModel
from .tokenizer import TermFrequencies


class CompiledHierarchicalModel:
    """A trained :class:`HierarchicalModel` compiled for batch scoring.

    Compilation snapshots the model statistics *and* the taxonomy's
    good/leaf marking; the crawl engine builds one per crawl run, so
    re-marking good topics between crawls (§3.7) is picked up by the
    next run's compile.
    """

    def __init__(self, model: HierarchicalModel) -> None:
        self.model = model
        taxonomy: TopicTaxonomy = model.taxonomy
        # Shared vocabulary: the union of every node's feature set.
        tids = sorted({tid for node in model.nodes.values() for tid in node.feature_tids})
        self._term_row: Dict[int, int] = {tid: g for g, tid in enumerate(tids)}
        #: The same mapping as a sorted array: row g holds the g-th tid, so
        #: a searchsorted position *is* the matrix row (vectorized packing).
        self._sorted_tids = np.array(tids, dtype=np.int64)
        n_terms = len(tids)

        # Parent-before-child evaluation order, as in the reference path.
        nodes = [
            model.nodes[node.cid]
            for node in taxonomy.nodes()
            if not node.is_leaf and node.cid in model.nodes
        ]
        cids = [node.cid for node in taxonomy.nodes()]
        self._column_of_cid = {cid: col for col, cid in enumerate(cids)}
        self._n_classes = len(cids)
        self._root_col = self._column_of_cid[ROOT_CID]

        # One dense matrix over (shared term row, flattened child column):
        # each node owns a contiguous column slice [start, stop).
        n_children_total = sum(len(node.child_cids) for node in nodes)
        vectors = np.zeros((n_terms, n_children_total), dtype=np.float64)
        logprior = np.zeros(n_children_total, dtype=np.float64)
        #: per node: (column slice start, stop, posterior column of the
        #: node, posterior columns of its children).
        self._node_plan: List[tuple] = []
        start = 0
        for node in nodes:
            stop = start + len(node.child_cids)
            child_col = {cid: start + i for i, cid in enumerate(node.child_cids)}
            feature_rows = np.fromiter(
                (self._term_row[tid] for tid in sorted(node.feature_tids)),
                dtype=np.int64,
                count=len(node.feature_tids),
            )
            # Feature terms default to the smoothed -logdenom of each child;
            # stored (child, term) statistics override pointwise.  Terms
            # outside the node's feature set keep 0.0 (they contribute
            # nothing, matching the reference path's feature filter).
            defaults = np.array(
                [-node.logdenom[cid] for cid in node.child_cids], dtype=np.float64
            )
            if len(feature_rows):
                vectors[feature_rows, start:stop] = defaults
            feature_tids = node.feature_tids
            for (cid, tid), value in node.logtheta.items():
                if tid in feature_tids:
                    vectors[self._term_row[tid], child_col[cid]] = value
            logprior[start:stop] = [
                node.logprior.get(cid, 0.0) for cid in node.child_cids
            ]
            self._node_plan.append(
                (
                    start,
                    stop,
                    self._column_of_cid[node.cid],
                    [self._column_of_cid[cid] for cid in node.child_cids],
                )
            )
            start = stop
        self._vectors = vectors
        self._logprior = logprior
        self._n_children_total = n_children_total

        leaves = taxonomy.leaves()
        self._leaf_cols = np.array(
            [self._column_of_cid[n.cid] for n in leaves], dtype=np.int64
        )
        self._leaf_cids = np.array([n.cid for n in leaves], dtype=np.int64)
        self._good_cols = np.array(
            [self._column_of_cid[n.cid] for n in taxonomy.good_nodes()], dtype=np.int64
        )

    # -- document packing ---------------------------------------------------------
    def _pack(self, documents: Sequence[TermFrequencies]):
        """COO doc-term batch restricted to the shared feature vocabulary.

        Vocabulary filtering runs as one ``searchsorted`` over the whole
        batch instead of a Python dict probe per term; a document's entries
        stay in its own dict-iteration order, so packing is independent of
        how documents are grouped into batches.
        """
        empty = (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
        n_vocab = len(self._sorted_tids)
        if n_vocab == 0:
            return empty
        tid_arrays = []
        freq_arrays = []
        lengths = []
        for document in documents:
            by_tid = document.by_tid
            count = len(by_tid)
            lengths.append(count)
            tid_arrays.append(np.fromiter(by_tid.keys(), np.int64, count))
            freq_arrays.append(np.fromiter(by_tid.values(), np.float64, count))
        if not tid_arrays:
            return empty
        tids = np.concatenate(tid_arrays)
        if not len(tids):
            return empty
        freqs = np.concatenate(freq_arrays)
        doc_idx = np.repeat(np.arange(len(documents), dtype=np.int64), lengths)
        positions = np.searchsorted(self._sorted_tids, tids)
        # Position n_vocab means "greater than every vocab tid"; clamp to a
        # safe row — the equality test below rejects it regardless.
        positions[positions == n_vocab] = 0
        valid = self._sorted_tids[positions] == tids
        return doc_idx[valid], positions[valid], freqs[valid]

    # -- scoring ------------------------------------------------------------------
    def posterior_matrix(self, documents: Sequence[TermFrequencies]) -> np.ndarray:
        """Pr[c | d] for every document × taxonomy class (Equation 2)."""
        n_docs = len(documents)
        posteriors = np.zeros((n_docs, self._n_classes), dtype=np.float64)
        posteriors[:, self._root_col] = 1.0
        if n_docs == 0:
            return posteriors
        doc_idx, term_row, freqs = self._pack(documents)
        n_children = self._n_children_total
        if len(term_row):
            # Per-entry contributions for every child of every node at
            # once: one fancy index plus one scatter-add per child column.
            weighted = self._vectors[term_row] * freqs[:, None]
            scores = np.empty((n_docs, n_children), dtype=np.float64)
            for j in range(n_children):
                scores[:, j] = np.bincount(
                    doc_idx, weights=weighted[:, j], minlength=n_docs
                )
            scores += self._logprior
        else:
            scores = np.broadcast_to(self._logprior, (n_docs, n_children)).copy()
        for start, stop, parent_col, child_cols in self._node_plan:
            node_scores = scores[:, start:stop]
            # Softmax with the same -700 exponent floor as the reference.
            peak = node_scores.max(axis=1, keepdims=True)
            exponentials = np.exp(np.maximum(node_scores - peak, _MIN_LOG))
            conditionals = exponentials / exponentials.sum(axis=1, keepdims=True)
            parent = posteriors[:, parent_col]
            posteriors[:, child_cols] = parent[:, None] * conditionals
        return posteriors

    def classify_batch(
        self, documents: Sequence[TermFrequencies]
    ) -> List[BatchClassification]:
        """Drop-in for :meth:`HierarchicalModel.classify_batch` (1e-9 tolerance)."""
        if not documents:
            return []
        posteriors = self.posterior_matrix(documents)
        if len(self._good_cols):
            relevance = posteriors[:, self._good_cols].sum(axis=1)
        else:
            relevance = np.zeros(len(documents), dtype=np.float64)
        best = self._leaf_cids[np.argmax(posteriors[:, self._leaf_cols], axis=1)]
        return [
            BatchClassification(relevance=float(r), best_leaf_cid=int(b))
            for r, b in zip(relevance, best)
        ]

    def relevance(self, document: TermFrequencies) -> float:
        """Soft-focus relevance of one document (Equation 3)."""
        return self.classify_batch([document])[0].relevance

    def best_leaf(self, document: TermFrequencies) -> int:
        return self.classify_batch([document])[0].best_leaf_cid
