"""classifier: hierarchical naive Bayes guiding the focused crawler (paper §2.1).

Three interchangeable classification backends are provided; they compute
identical relevance numbers and differ only in how they touch storage:

* :class:`~repro.classifier.model.HierarchicalModel` — in-memory reference
  implementation (fast path used by the crawler by default).
* :class:`~repro.classifier.single_probe.SingleProbeClassifier` — the
  per-term index-probe access path of Figure 2 (modes "stat" and "blob").
* :class:`~repro.classifier.bulk_probe.BulkProbeClassifier` — the
  set-at-a-time join plan of Figure 3.
"""

from .bulk_probe import BulkProbeClassifier
from .compiled import CompiledHierarchicalModel
from .features import FeatureSelectionConfig, fisher_scores, select_features
from .model import HierarchicalModel, NodeModel, normalize_log_scores
from .single_probe import (
    ClassificationResult,
    ProbeCost,
    SingleProbeClassifier,
    propagate_posteriors,
)
from .tokenizer import (
    STOPWORDS,
    TermFrequencies,
    term_frequencies,
    term_frequencies_by_term,
    tokenize_text,
)
from .training import (
    ClassifierTrainer,
    ModelInstaller,
    TrainingConfig,
    stat_table_name,
    sync_taxonomy_marks,
)

__all__ = [
    "BulkProbeClassifier",
    "ClassificationResult",
    "ClassifierTrainer",
    "CompiledHierarchicalModel",
    "FeatureSelectionConfig",
    "HierarchicalModel",
    "ModelInstaller",
    "NodeModel",
    "ProbeCost",
    "STOPWORDS",
    "SingleProbeClassifier",
    "TermFrequencies",
    "TrainingConfig",
    "fisher_scores",
    "normalize_log_scores",
    "propagate_posteriors",
    "select_features",
    "stat_table_name",
    "sync_taxonomy_marks",
    "term_frequencies",
    "term_frequencies_by_term",
    "tokenize_text",
]
