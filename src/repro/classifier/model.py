"""The hierarchical naive-Bayes model and its in-memory classifier.

The model mirrors the paper's on-disk representation (§2.1.1):

* for every internal node c0, a feature set F(c0),
* for every child ci of c0 and every feature term with non-zero count in
  D(ci), ``logtheta(ci, t)``,
* per child, ``logdenom(ci)`` (log of the smoothing denominator) and
  ``logprior(ci)`` (log Pr[ci | c0]).

Classification follows Equation (2): the chain rule refines Pr[c | d]
from the root downward, and the soft-focus relevance (Equation 3) is the
sum of Pr[c | d] over the good classes.

The in-memory classifier here is numerically the reference
implementation; the DB-backed :mod:`single_probe` and :mod:`bulk_probe`
classifiers must agree with it (tests enforce this), differing only in
their I/O access paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence

from repro.core.caching import LRUCache
from repro.taxonomy.tree import ROOT_CID, TopicTaxonomy

from .tokenizer import TermFrequencies

#: Log-probability floor used when normalising (avoids exp underflow noise).
_MIN_LOG = -700.0

#: Per-node bound on the cached term vectors of the shared-work batch path.
#: Long crawls see an unbounded stream of distinct (mostly background)
#: terms; without a bound the cache grows with crawl length.  Eviction is
#: LRU (the same policy as the engine's outcome cache) and is harmless for
#: correctness: a recomputed vector is bit-identical to the evicted one.
TERM_VECTOR_CACHE_CAPACITY = 65536


@dataclass
class NodeModel:
    """Per-internal-node statistics: the paper's STAT_c0 table plus priors."""

    cid: int
    child_cids: list[int]
    feature_tids: set[int]
    logprior: Dict[int, float]
    logdenom: Dict[int, float]
    logtheta: Dict[tuple[int, int], float] = field(default_factory=dict)
    #: Lazily built per-term log-likelihood vectors (one float per child),
    #: shared across documents by the batch classification path.  Bounded
    #: LRU (see :data:`TERM_VECTOR_CACHE_CAPACITY`) so a long crawl's tail
    #: of rare terms cannot grow the cache without limit.
    _term_vectors: LRUCache = field(
        default_factory=lambda: LRUCache(TERM_VECTOR_CACHE_CAPACITY),
        compare=False,
        repr=False,
    )

    def class_conditional_loglikelihoods(self, document: TermFrequencies) -> Dict[int, float]:
        """log Pr[d | ci] up to an additive constant shared by all children.

        For a feature term with no stored (ci, t) entry the smoothed
        probability is 1/denom(ci), i.e. log θ = −logdenom(ci), exactly as
        in the SingleProbe pseudocode (Figure 2).
        """
        scores = {cid: 0.0 for cid in self.child_cids}
        for tid, freq in document.items():
            if tid not in self.feature_tids:
                continue
            for cid in self.child_cids:
                theta = self.logtheta.get((cid, tid))
                if theta is None:
                    scores[cid] -= freq * self.logdenom[cid]
                else:
                    scores[cid] += freq * theta
        return scores

    def conditional_posteriors(self, document: TermFrequencies) -> Dict[int, float]:
        """Pr[ci | c0, d] for every child ci, normalised over the children."""
        loglikes = self.class_conditional_loglikelihoods(document)
        scores = {
            cid: loglikes[cid] + self.logprior.get(cid, 0.0) for cid in self.child_cids
        }
        return normalize_log_scores(scores)

    # -- shared-work batch path ----------------------------------------------------
    def _term_vector(self, tid: int) -> tuple:
        """Per-child log θ for one feature term, cached across documents.

        Entry i is ``logtheta(child_i, tid)`` when stored, else the smoothed
        ``-logdenom(child_i)`` — the same values the reference path looks up
        per (child, term), folded into one tuple so scoring a batch pays the
        dictionary probes only once per distinct term.
        """
        vector = self._term_vectors.peek(tid)
        if vector is None:
            logtheta = self.logtheta
            vector = tuple(
                logtheta[(cid, tid)] if (cid, tid) in logtheta else -self.logdenom[cid]
                for cid in self.child_cids
            )
            self._term_vectors.put(tid, vector)
        return vector

    def conditional_posteriors_shared(self, document: TermFrequencies) -> Dict[int, float]:
        """Bit-for-bit equal to :meth:`conditional_posteriors`, via cached vectors.

        ``freq * (-logdenom)`` equals ``-(freq * logdenom)`` exactly in IEEE
        arithmetic and the accumulation visits terms and children in the
        same order, so the floats match the reference path bit for bit
        (tests enforce this).
        """
        totals = [0.0] * len(self.child_cids)
        feature_tids = self.feature_tids
        cache = self._term_vectors
        # Below capacity no eviction can occur, so read the backing dict
        # directly (seed-speed); at capacity, route through the LRU so
        # recently used vectors survive eviction.
        vectors = cache.raw if len(cache) < cache.capacity else cache
        for tid, freq in document.items():
            vector = vectors.get(tid)
            if vector is None:
                if tid not in feature_tids:
                    continue
                vector = self._term_vector(tid)
            totals = [total + freq * value for total, value in zip(totals, vector)]
        scores = {
            cid: totals[i] + self.logprior.get(cid, 0.0)
            for i, cid in enumerate(self.child_cids)
        }
        return normalize_log_scores(scores)


def normalize_log_scores(scores: Mapping[int, float]) -> Dict[int, float]:
    """Softmax-normalise a map of log scores into probabilities."""
    if not scores:
        return {}
    peak = max(scores.values())
    exponentials = {
        key: math.exp(max(value - peak, _MIN_LOG)) for key, value in scores.items()
    }
    total = sum(exponentials.values())
    return {key: value / total for key, value in exponentials.items()}


@dataclass(frozen=True)
class BatchClassification:
    """One document's outcome from :meth:`HierarchicalModel.classify_batch`."""

    relevance: float
    best_leaf_cid: int


@dataclass
class HierarchicalModel:
    """The trained classifier: one :class:`NodeModel` per internal taxonomy node."""

    taxonomy: TopicTaxonomy
    nodes: Dict[int, NodeModel]

    # -- inference ---------------------------------------------------------------
    def node_posteriors(
        self, document: TermFrequencies, restrict_to_paths: bool = False
    ) -> Dict[int, float]:
        """Pr[c | d] for every class (or only path/good-reachable classes).

        Implements the chain-rule recursion of Equation (2): the root has
        probability 1; each evaluated internal node distributes its
        probability over its children.
        """
        posteriors: Dict[int, float] = {ROOT_CID: 1.0}
        frontier_cids = (
            {n.cid for n in self.taxonomy.evaluation_frontier()}
            if restrict_to_paths
            else None
        )
        # Parent-before-child order (BFS cid assignment makes sorting by cid valid,
        # but walk the tree explicitly to be safe).
        for node in self.taxonomy.nodes():
            if node.is_leaf or node.cid not in self.nodes:
                continue
            if frontier_cids is not None and node.cid not in frontier_cids:
                continue
            parent_probability = posteriors.get(node.cid)
            if parent_probability is None or parent_probability <= 0.0:
                continue
            conditionals = self.nodes[node.cid].conditional_posteriors(document)
            for child_cid, probability in conditionals.items():
                posteriors[child_cid] = parent_probability * probability
        return posteriors

    def classify_batch(
        self, documents: Sequence[TermFrequencies]
    ) -> list["BatchClassification"]:
        """Score many documents in one pass, sharing per-node work.

        Each document's full posterior map is computed once (the chain rule
        of Equation 2) and both the soft-focus relevance and the best leaf
        are read off it, instead of the two independent recursions the
        reference accessors perform.  Per-node, per-term log-likelihood
        vectors are cached across the whole batch (and across batches) via
        :meth:`NodeModel._term_vector`.  Relevance and best-leaf values are
        bit-for-bit identical to :meth:`relevance` / :meth:`best_leaf`.
        """
        good = self.taxonomy.good_nodes()
        leaves = self.taxonomy.leaves()
        internal = [
            node
            for node in self.taxonomy.nodes()
            if not node.is_leaf and node.cid in self.nodes
        ]
        results = []
        for document in documents:
            posteriors: Dict[int, float] = {ROOT_CID: 1.0}
            for node in internal:
                parent_probability = posteriors.get(node.cid)
                if parent_probability is None or parent_probability <= 0.0:
                    continue
                conditionals = self.nodes[node.cid].conditional_posteriors_shared(document)
                for child_cid, probability in conditionals.items():
                    posteriors[child_cid] = parent_probability * probability
            relevance = (
                float(sum(posteriors.get(node.cid, 0.0) for node in good)) if good else 0.0
            )
            best_leaf = max(leaves, key=lambda n: posteriors.get(n.cid, 0.0)).cid
            results.append(
                BatchClassification(relevance=relevance, best_leaf_cid=best_leaf)
            )
        return results

    def relevance_batch(self, documents: Sequence[TermFrequencies]) -> list[float]:
        """Soft-focus relevance for a batch of documents (see :meth:`classify_batch`)."""
        return [outcome.relevance for outcome in self.classify_batch(documents)]

    def relevance(self, document: TermFrequencies) -> float:
        """Soft-focus relevance R(d) = Σ_{good c} Pr[c | d] (Equation 3)."""
        good = self.taxonomy.good_nodes()
        if not good:
            return 0.0
        posteriors = self.node_posteriors(document, restrict_to_paths=True)
        return float(sum(posteriors.get(node.cid, 0.0) for node in good))

    def best_leaf(self, document: TermFrequencies) -> int:
        """The highest-posterior leaf class (used by the hard focus rule)."""
        posteriors = self.node_posteriors(document, restrict_to_paths=False)
        leaves = self.taxonomy.leaves()
        return max(leaves, key=lambda n: posteriors.get(n.cid, 0.0)).cid

    def hard_focus_accepts(self, document: TermFrequencies) -> bool:
        """Hard focus rule (§2.1.2): expand links only when the best leaf's
        good ancestor exists."""
        best = self.best_leaf(document)
        return self.taxonomy.good_ancestor_of(best) is not None

    # -- introspection --------------------------------------------------------------
    def internal_cids(self) -> list[int]:
        return sorted(self.nodes)

    def feature_count(self) -> int:
        return sum(len(node.feature_tids) for node in self.nodes.values())

    def parameter_count(self) -> int:
        return sum(len(node.logtheta) for node in self.nodes.values())
