"""The hierarchical naive-Bayes model and its in-memory classifier.

The model mirrors the paper's on-disk representation (§2.1.1):

* for every internal node c0, a feature set F(c0),
* for every child ci of c0 and every feature term with non-zero count in
  D(ci), ``logtheta(ci, t)``,
* per child, ``logdenom(ci)`` (log of the smoothing denominator) and
  ``logprior(ci)`` (log Pr[ci | c0]).

Classification follows Equation (2): the chain rule refines Pr[c | d]
from the root downward, and the soft-focus relevance (Equation 3) is the
sum of Pr[c | d] over the good classes.

The in-memory classifier here is numerically the reference
implementation; the DB-backed :mod:`single_probe` and :mod:`bulk_probe`
classifiers must agree with it (tests enforce this), differing only in
their I/O access paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.taxonomy.tree import ROOT_CID, TopicTaxonomy

from .tokenizer import TermFrequencies

#: Log-probability floor used when normalising (avoids exp underflow noise).
_MIN_LOG = -700.0


@dataclass
class NodeModel:
    """Per-internal-node statistics: the paper's STAT_c0 table plus priors."""

    cid: int
    child_cids: list[int]
    feature_tids: set[int]
    logprior: Dict[int, float]
    logdenom: Dict[int, float]
    logtheta: Dict[tuple[int, int], float] = field(default_factory=dict)

    def class_conditional_loglikelihoods(self, document: TermFrequencies) -> Dict[int, float]:
        """log Pr[d | ci] up to an additive constant shared by all children.

        For a feature term with no stored (ci, t) entry the smoothed
        probability is 1/denom(ci), i.e. log θ = −logdenom(ci), exactly as
        in the SingleProbe pseudocode (Figure 2).
        """
        scores = {cid: 0.0 for cid in self.child_cids}
        for tid, freq in document.items():
            if tid not in self.feature_tids:
                continue
            for cid in self.child_cids:
                theta = self.logtheta.get((cid, tid))
                if theta is None:
                    scores[cid] -= freq * self.logdenom[cid]
                else:
                    scores[cid] += freq * theta
        return scores

    def conditional_posteriors(self, document: TermFrequencies) -> Dict[int, float]:
        """Pr[ci | c0, d] for every child ci, normalised over the children."""
        loglikes = self.class_conditional_loglikelihoods(document)
        scores = {
            cid: loglikes[cid] + self.logprior.get(cid, 0.0) for cid in self.child_cids
        }
        return normalize_log_scores(scores)


def normalize_log_scores(scores: Mapping[int, float]) -> Dict[int, float]:
    """Softmax-normalise a map of log scores into probabilities."""
    if not scores:
        return {}
    peak = max(scores.values())
    exponentials = {
        key: math.exp(max(value - peak, _MIN_LOG)) for key, value in scores.items()
    }
    total = sum(exponentials.values())
    return {key: value / total for key, value in exponentials.items()}


@dataclass
class HierarchicalModel:
    """The trained classifier: one :class:`NodeModel` per internal taxonomy node."""

    taxonomy: TopicTaxonomy
    nodes: Dict[int, NodeModel]

    # -- inference ---------------------------------------------------------------
    def node_posteriors(
        self, document: TermFrequencies, restrict_to_paths: bool = False
    ) -> Dict[int, float]:
        """Pr[c | d] for every class (or only path/good-reachable classes).

        Implements the chain-rule recursion of Equation (2): the root has
        probability 1; each evaluated internal node distributes its
        probability over its children.
        """
        posteriors: Dict[int, float] = {ROOT_CID: 1.0}
        frontier_cids = (
            {n.cid for n in self.taxonomy.evaluation_frontier()}
            if restrict_to_paths
            else None
        )
        # Parent-before-child order (BFS cid assignment makes sorting by cid valid,
        # but walk the tree explicitly to be safe).
        for node in self.taxonomy.nodes():
            if node.is_leaf or node.cid not in self.nodes:
                continue
            if frontier_cids is not None and node.cid not in frontier_cids:
                continue
            parent_probability = posteriors.get(node.cid)
            if parent_probability is None or parent_probability <= 0.0:
                continue
            conditionals = self.nodes[node.cid].conditional_posteriors(document)
            for child_cid, probability in conditionals.items():
                posteriors[child_cid] = parent_probability * probability
        return posteriors

    def relevance(self, document: TermFrequencies) -> float:
        """Soft-focus relevance R(d) = Σ_{good c} Pr[c | d] (Equation 3)."""
        good = self.taxonomy.good_nodes()
        if not good:
            return 0.0
        posteriors = self.node_posteriors(document, restrict_to_paths=True)
        return float(sum(posteriors.get(node.cid, 0.0) for node in good))

    def best_leaf(self, document: TermFrequencies) -> int:
        """The highest-posterior leaf class (used by the hard focus rule)."""
        posteriors = self.node_posteriors(document, restrict_to_paths=False)
        leaves = self.taxonomy.leaves()
        return max(leaves, key=lambda n: posteriors.get(n.cid, 0.0)).cid

    def hard_focus_accepts(self, document: TermFrequencies) -> bool:
        """Hard focus rule (§2.1.2): expand links only when the best leaf's
        good ancestor exists."""
        best = self.best_leaf(document)
        return self.taxonomy.good_ancestor_of(best) is not None

    # -- introspection --------------------------------------------------------------
    def internal_cids(self) -> list[int]:
        return sorted(self.nodes)

    def feature_count(self) -> int:
        return sum(len(node.feature_tids) for node in self.nodes.values())

    def parameter_count(self) -> int:
        return sum(len(node.logtheta) for node in self.nodes.values())
