"""Feature selection per internal taxonomy node.

§2.1.1: "Of all the terms in the universe, a subset F(c0) is selected.
Intuitively, these are terms that provide the maximum discrimination
power between documents belonging to different subtrees of c0.  Because
training data is limited and noisy, accuracy may in fact be reduced by
including more terms."

The companion paper the authors cite (Chakrabarti et al., VLDB Journal
1998) uses a Fisher discriminant score; we implement the same idea: for
each candidate term, the ratio of between-class scatter of its relative
frequency to its within-class scatter.  Terms must also appear in at
least ``min_document_frequency`` training documents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np


@dataclass
class FeatureSelectionConfig:
    """Knobs for per-node feature selection."""

    #: Maximum number of feature terms retained per internal node.
    max_features: int = 600
    #: A term must occur in at least this many training documents (across
    #: all children of the node) to be considered.
    min_document_frequency: int = 2
    #: Small constant protecting the Fisher ratio from zero within-class scatter.
    epsilon: float = 1e-9


def fisher_scores(
    class_term_frequencies: Sequence[Dict[str, List[float]]],
    epsilon: float = 1e-9,
) -> Dict[str, float]:
    """Fisher discriminant score per term.

    ``class_term_frequencies[i]`` maps a term to the list of its relative
    frequencies in each document of class ``i`` (documents where the term
    does not occur contribute 0 and must be included by the caller).
    """
    terms: set[str] = set()
    for per_class in class_term_frequencies:
        terms.update(per_class)
    scores: Dict[str, float] = {}
    for term in terms:
        means = []
        variances = []
        for per_class in class_term_frequencies:
            values = np.asarray(per_class.get(term, [0.0]), dtype=float)
            means.append(float(values.mean()))
            variances.append(float(values.var()))
        means_arr = np.asarray(means)
        between = 0.0
        for i in range(len(means_arr)):
            for j in range(i + 1, len(means_arr)):
                between += float((means_arr[i] - means_arr[j]) ** 2)
        within = float(np.sum(variances)) + epsilon
        scores[term] = between / within
    return scores


def select_features(
    documents_per_child: Sequence[Sequence[Dict[str, int]]],
    config: FeatureSelectionConfig,
) -> List[str]:
    """Select F(c0) given each child's training documents (term->count maps).

    Returns the selected terms sorted by decreasing Fisher score.  When a
    child has no training documents it simply contributes nothing to the
    scatter computation (the trainer guards against fully-empty nodes).
    """
    # Document frequency filter.
    document_frequency: Dict[str, int] = {}
    for child_docs in documents_per_child:
        for doc in child_docs:
            for term in doc:
                document_frequency[term] = document_frequency.get(term, 0) + 1
    candidates = {
        term
        for term, df in document_frequency.items()
        if df >= config.min_document_frequency
    }
    if not candidates:
        # Degenerate training sets: fall back to every observed term.
        candidates = set(document_frequency)

    # Relative frequencies per class, aligned per document (zeros included).
    class_term_frequencies: List[Dict[str, List[float]]] = []
    for child_docs in documents_per_child:
        per_class: Dict[str, List[float]] = {term: [] for term in candidates}
        for doc in child_docs:
            total = sum(doc.values()) or 1
            for term in candidates:
                per_class[term].append(doc.get(term, 0) / total)
        if not child_docs:
            for term in candidates:
                per_class[term].append(0.0)
        class_term_frequencies.append(per_class)

    scores = fisher_scores(class_term_frequencies, config.epsilon)
    ranked = sorted(candidates, key=lambda term: (-scores.get(term, 0.0), term))
    return ranked[: config.max_features]
