"""Tokenisation and term-frequency extraction.

The paper hashes terms to 32-bit ids (``tid``) and represents a document
as rows ``(did, tid, freq)`` of the DOCUMENT table.  The synthetic web
already hands the crawler token lists, but the tokenizer also accepts raw
text so the classifier can be used on real documents.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Union

from repro.webgraph.vocabulary import term_id

_WORD_RE = re.compile(r"[a-z0-9]+")

#: Minimal stopword list applied to raw text (token-list inputs are trusted).
STOPWORDS = frozenset(
    "a an and are as at be by for from has have in is it of on or that the to was were with".split()
)


@dataclass(frozen=True)
class TermFrequencies:
    """A bag-of-terms document ready for classification.

    ``by_tid`` is the paper's ``freq(d, t)`` keyed by hashed term id;
    ``length`` is n(d) restricted to the retained terms.
    """

    by_tid: Dict[int, int]

    @property
    def length(self) -> int:
        return sum(self.by_tid.values())

    def __len__(self) -> int:
        return len(self.by_tid)

    def items(self):
        return self.by_tid.items()


def tokenize_text(text: str, min_length: int = 2) -> list[str]:
    """Split raw text into lowercase word tokens, dropping stopwords and short tokens."""
    tokens = []
    for token in _WORD_RE.findall(text.lower()):
        if len(token) >= min_length and token not in STOPWORDS:
            tokens.append(token)
    return tokens


def term_frequencies(document: Union[str, Sequence[str]]) -> TermFrequencies:
    """Build :class:`TermFrequencies` from raw text or a pre-tokenised list.

    Hashes once per *distinct* token rather than once per occurrence:
    token strings are counted first (a C-speed ``Counter``), then each
    unique token is mapped through :func:`term_id`.  Distinct tokens that
    collide to the same 32-bit id have their counts summed, so the result
    is identical to hashing every occurrence.
    """
    if isinstance(document, str):
        tokens: Iterable[str] = tokenize_text(document)
    else:
        tokens = document
    by_tid: Dict[int, int] = {}
    for token, count in Counter(tokens).items():
        tid = term_id(token)
        by_tid[tid] = by_tid.get(tid, 0) + count
    return TermFrequencies(by_tid)


def term_frequencies_by_term(document: Union[str, Sequence[str]]) -> Dict[str, int]:
    """Like :func:`term_frequencies` but keyed by the term string (training-time use)."""
    if isinstance(document, str):
        tokens: Iterable[str] = tokenize_text(document)
    else:
        tokens = document
    return dict(Counter(tokens))
