"""BulkProbe: set-at-a-time classification expressed as relational joins.

This is the paper's Figure 3 access path ("CLI" in Figure 8a): instead of
probing the statistics index once per term per document, a whole batch of
documents is classified with

* one inner join ``STAT_c0 ⋈ DOCUMENT ⋈ TAXONOMY`` grouped by (did, kcid)
  that computes ``Σ freq·(logtheta + logdenom)`` (the PARTIAL CTE),
* a per-document feature-term length (the DOCLEN CTE),
* a synthetic cross product of documents × children holding
  ``−len·logdenom`` (the COMPLETE CTE), and
* a **left outer join** of COMPLETE with PARTIAL so documents that share
  no feature term with a child still get scored.

The joins run sort-merge / hash through minidb, so their I/O is sequential
in the table sizes rather than random per term — the source of the ~10×
speed-up reported in Figure 8(a).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from repro.minidb import Database, col, func, lit
from repro.taxonomy.tree import ROOT_CID, TopicTaxonomy

from .model import normalize_log_scores
from .single_probe import ClassificationResult, ProbeCost
from .tokenizer import TermFrequencies
from .training import stat_table_name


class BulkProbeClassifier:
    """Classifies batches of documents stored in the DOCUMENT table."""

    def __init__(self, database: Database, taxonomy: TopicTaxonomy) -> None:
        self.database = database
        self.taxonomy = taxonomy
        self.cost = ProbeCost()

    # -- document loading ------------------------------------------------------------
    def load_documents(self, documents: Mapping[int, TermFrequencies], truncate: bool = True) -> None:
        """Populate the DOCUMENT table with (did, tid, freq) rows.

        The paper notes this step is "part of standard keyword indexing
        anyway", so its cost is charged to doc scanning, not probing.
        """
        table = self.database.table("DOCUMENT")
        before = self.database.stats.copy()
        if truncate:
            table.truncate()
        rows = []
        for did, frequencies in documents.items():
            for tid, freq in frequencies.items():
                rows.append({"did": did, "tid": tid, "freq": freq})
        table.insert_many(rows)
        self.cost.doc_scan_cost += self.database.stats.diff(before).simulated_cost()

    # -- per-node bulk evaluation --------------------------------------------------------
    def bulk_conditional_log_likelihoods(self, c0_cid: int) -> Dict[tuple[int, int], float]:
        """log Pr[d | ci] for every document in DOCUMENT and child ci of c0.

        Returns a map from (did, kcid) to the (unnormalised) log likelihood,
        computed with the PARTIAL / DOCLEN / COMPLETE join plan of Figure 3.
        """
        db = self.database
        stat_name = stat_table_name(c0_cid)
        before = db.stats.copy()

        children = [
            row
            for row in db.query("TAXONOMY").where(col("pcid") == lit(c0_cid)).run()
            if row["logdenom"] is not None
        ]
        if not children:
            return {}

        # PARTIAL(did, kcid, lpr1): the sort-merge inner join of Figure 3.
        partial_rows = (
            db.query(stat_name)
            .join("DOCUMENT", on=[("tid", "tid")], algorithm="merge")
            .join("TAXONOMY", on=[(f"{stat_name}.kcid", "kcid")])
            .where(col("TAXONOMY.pcid") == lit(c0_cid))
            .group_by(("did", col("did")), ("kcid", col(f"{stat_name}.kcid")))
            .aggregate(
                "sum",
                col("freq") * (col("logtheta") + col("TAXONOMY.logdenom")),
                "lpr1",
            )
            .run()
        )

        # DOCLEN(did, len): per-document count of feature-term occurrences.
        feature_tids = db.query(stat_name).select("tid").distinct().run()
        doclen_rows = (
            db.query("DOCUMENT")
            .join(feature_tids, on=[("tid", "tid")])
            .group_by(("did", col("did")))
            .aggregate("sum", col("freq"), "len")
            .run()
        )

        # COMPLETE(did, kcid, lpr2): documents × children, -len * logdenom.
        complete_rows = [
            {
                "did": doc_row["did"],
                "kcid": child["kcid"],
                "lpr2": -doc_row["len"] * child["logdenom"],
            }
            for doc_row in doclen_rows
            for child in children
        ]

        # COMPLETE left outer join PARTIAL on (did, kcid).
        final_rows = (
            db.query(complete_rows, alias="C")
            .join(partial_rows, on=[("C.did", "did"), ("C.kcid", "kcid")], how="left", alias="P")
            .select(
                ("did", col("C.did")),
                ("kcid", col("C.kcid")),
                ("lpr", col("C.lpr2") + func("coalesce", col("P.lpr1"), lit(0.0))),
            )
            .run()
        )
        self.cost.join_cost += db.stats.diff(before).simulated_cost()
        return {(row["did"], row["kcid"]): row["lpr"] for row in final_rows}

    # -- batch classification --------------------------------------------------------------
    def classify_batch(
        self, dids: Optional[Iterable[int]] = None
    ) -> Dict[int, ClassificationResult]:
        """Classify every document currently in the DOCUMENT table.

        Evaluation proceeds over the path nodes in topological order, as
        the Figure 3 caption prescribes, accumulating Pr[c | d] by the
        chain rule and summing the good-node posteriors into R(d).
        """
        db = self.database
        if dids is None:
            did_rows = db.query("DOCUMENT").select("did").distinct().run()
            dids = [row["did"] for row in did_rows]
        dids = list(dids)
        posteriors: Dict[int, Dict[int, float]] = {did: {ROOT_CID: 1.0} for did in dids}

        priors: Dict[int, float] = {}
        for row in db.query("TAXONOMY").run():
            priors[row["kcid"]] = row["logprior"] if row["logprior"] is not None else 0.0

        for node in self.taxonomy.evaluation_frontier():
            modelled_children = [
                row["kcid"]
                for row in db.query("TAXONOMY").where(col("pcid") == lit(node.cid)).run()
                if row["logdenom"] is not None
            ]
            if not modelled_children:
                continue
            loglikes = self.bulk_conditional_log_likelihoods(node.cid)
            for did in dids:
                parent_probability = posteriors[did].get(node.cid, 0.0)
                if parent_probability <= 0.0:
                    continue
                scores = {}
                for kcid in modelled_children:
                    value = loglikes.get((did, kcid))
                    if value is not None:
                        scores[kcid] = value + priors.get(kcid, 0.0)
                if not scores:
                    # The document shares no feature term with this node:
                    # Figure 3's DOCLEN drops it, but the correct Bayes
                    # answer is to fall back to the class priors (what the
                    # in-memory and SingleProbe classifiers do implicitly).
                    scores = {kcid: priors.get(kcid, 0.0) for kcid in modelled_children}
                conditionals = normalize_log_scores(scores)
                for kcid, probability in conditionals.items():
                    posteriors[did][kcid] = parent_probability * probability

        good_cids = [node.cid for node in self.taxonomy.good_nodes()]
        results: Dict[int, ClassificationResult] = {}
        for did in dids:
            relevance = float(sum(posteriors[did].get(cid, 0.0) for cid in good_cids))
            results[did] = ClassificationResult(relevance=relevance, posteriors=posteriors[did])
            self.cost.documents += 1
        return results

    def classify_documents(
        self, documents: Mapping[int, TermFrequencies]
    ) -> Dict[int, ClassificationResult]:
        """Convenience: load a batch into DOCUMENT and classify it."""
        self.load_documents(documents)
        return self.classify_batch(list(documents))
