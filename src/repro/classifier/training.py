"""Training the hierarchical classifier and installing it in the database.

Training (§2.1.1) happens once per internal taxonomy node c0 and has
three steps — feature selection, parameter estimation (Equation 1), and
index construction.  The trainer produces an in-memory
:class:`~repro.classifier.model.HierarchicalModel`; the
:class:`ModelInstaller` then materialises the paper's tables:

* ``TAXONOMY(kcid, pcid, name, type, logprior, logdenom)``
* ``STAT_<c0>(kcid, tid, logtheta)`` — one table per internal node, used
  by the SQL SingleProbe variant and by BulkProbe's joins,
* ``BLOB(pcid, tid, stat)`` — the packed per-term record used by the
  BLOB SingleProbe variant,
* ``DOCUMENT(did, tid, freq)`` — populated at crawl/test time.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.minidb import Database, FLOAT, INTEGER, TEXT, BLOB as BLOB_TYPE, make_schema
from repro.taxonomy.examples import ExampleStore
from repro.taxonomy.tree import TopicTaxonomy
from repro.webgraph.vocabulary import term_id

from .features import FeatureSelectionConfig, select_features
from .model import HierarchicalModel, NodeModel

#: struct format for one child record inside a BLOB payload: (kcid, logtheta).
_BLOB_RECORD = struct.Struct("<Hd")


def stat_table_name(cid: int) -> str:
    """Name of the per-internal-node statistics table (the paper's STAT_c0)."""
    return f"STAT_{cid}"


@dataclass
class TrainingConfig:
    """Classifier training knobs."""

    features: FeatureSelectionConfig = field(default_factory=FeatureSelectionConfig)


class ClassifierTrainer:
    """Estimates the hierarchical naive-Bayes parameters from examples."""

    def __init__(
        self,
        taxonomy: TopicTaxonomy,
        examples: ExampleStore,
        config: Optional[TrainingConfig] = None,
    ) -> None:
        self.taxonomy = taxonomy
        self.examples = examples
        self.config = config or TrainingConfig()

    def train(self) -> HierarchicalModel:
        """Train every internal node that has at least one child with examples."""
        nodes: Dict[int, NodeModel] = {}
        for internal in self.taxonomy.internal_nodes():
            node_model = self._train_node(internal.cid)
            if node_model is not None:
                nodes[internal.cid] = node_model
        return HierarchicalModel(self.taxonomy, nodes)

    # -- internals -----------------------------------------------------------------
    def _train_node(self, cid: int) -> Optional[NodeModel]:
        node = self.taxonomy.node(cid)
        children = node.children
        # D(ci): term->count maps per document, for each child subtree.
        documents_per_child: List[List[Dict[str, int]]] = []
        modelled_children = []
        for child in children:
            docs = [
                doc.term_frequencies()
                for doc in self.examples.for_subtree(self.taxonomy, child.cid)
            ]
            if docs:
                modelled_children.append(child)
                documents_per_child.append(docs)
        if not modelled_children:
            return None

        features = select_features(documents_per_child, self.config.features)
        feature_set = set(features)
        feature_tids = {term_id(term) for term in features}

        # Vocabulary of D(c0): distinct terms across every child's documents.
        vocabulary: set[str] = set()
        for docs in documents_per_child:
            for doc in docs:
                vocabulary.update(doc)
        vocabulary_size = max(len(vocabulary), 1)

        total_documents = sum(len(docs) for docs in documents_per_child)
        logprior: Dict[int, float] = {}
        logdenom: Dict[int, float] = {}
        logtheta: Dict[tuple[int, int], float] = {}
        for child, docs in zip(modelled_children, documents_per_child):
            term_counts: Dict[str, int] = {}
            total_count = 0
            for doc in docs:
                for term, count in doc.items():
                    total_count += count
                    if term in feature_set:
                        term_counts[term] = term_counts.get(term, 0) + count
            denominator = vocabulary_size + total_count
            logdenom[child.cid] = math.log(denominator)
            logprior[child.cid] = math.log(len(docs) / total_documents)
            for term, count in term_counts.items():
                logtheta[(child.cid, term_id(term))] = math.log(
                    (1 + count) / denominator
                )
        return NodeModel(
            cid=cid,
            child_cids=[child.cid for child in modelled_children],
            feature_tids=feature_tids,
            logprior=logprior,
            logdenom=logdenom,
            logtheta=logtheta,
        )


class ModelInstaller:
    """Materialises a trained model into minidb tables (the 'index construction' step)."""

    def __init__(self, database: Database) -> None:
        self.database = database

    # -- schema ------------------------------------------------------------------------
    def create_tables(self, model: HierarchicalModel) -> None:
        """Create TAXONOMY, BLOB, DOCUMENT, and one STAT table per internal node."""
        db = self.database
        if not db.has_table("TAXONOMY"):
            db.create_table(
                "TAXONOMY",
                make_schema(
                    ("kcid", INTEGER, False),
                    ("pcid", INTEGER),
                    ("name", TEXT),
                    ("type", TEXT),
                    ("logprior", FLOAT),
                    ("logdenom", FLOAT),
                    primary_key=["kcid"],
                ),
            )
            taxonomy = db.table("TAXONOMY")
            taxonomy.create_index("taxonomy_pcid", ["pcid"], kind="hash")
            # Interval (pre/post window) index over the class tree, keyed
            # (kcid, pcid): descendant_of()/in_subtree() predicates and
            # subtree aggregations become single window range scans.
            taxonomy.create_index("taxonomy_tree", ["kcid", "pcid"], kind="interval")
        if not db.has_table("BLOB"):
            db.create_table(
                "BLOB",
                make_schema(
                    ("pcid", INTEGER, False),
                    ("tid", INTEGER, False),
                    ("stat", BLOB_TYPE),
                ),
            )
            db.table("BLOB").create_index("blob_key", ["pcid", "tid"], kind="hash")
        if not db.has_table("DOCUMENT"):
            db.create_table(
                "DOCUMENT",
                make_schema(
                    ("did", INTEGER, False),
                    ("tid", INTEGER, False),
                    ("freq", INTEGER, False),
                ),
            )
            document = db.table("DOCUMENT")
            document.create_index("document_did", ["did"], kind="hash")
            document.create_index("document_tid", ["tid"], kind="ordered")
        for cid in model.internal_cids():
            name = stat_table_name(cid)
            if not db.has_table(name):
                db.create_table(
                    name,
                    make_schema(
                        ("kcid", INTEGER, False),
                        ("tid", INTEGER, False),
                        ("logtheta", FLOAT, False),
                    ),
                )
                table = db.table(name)
                table.create_index(f"{name.lower()}_tid", ["tid"], kind="ordered")

    # -- population -------------------------------------------------------------------------
    def install(self, model: HierarchicalModel) -> None:
        """Create tables (if needed) and load the model's statistics into them."""
        self.create_tables(model)
        self._check_schema_order(model)
        self._populate_taxonomy(model)
        self._populate_statistics(model)

    def _check_schema_order(self, model: HierarchicalModel) -> None:
        """Rows below are built positionally for bulk loading; pin the order."""
        expected = {
            "TAXONOMY": ("kcid", "pcid", "name", "type", "logprior", "logdenom"),
            "BLOB": ("pcid", "tid", "stat"),
        }
        for cid in model.internal_cids():
            expected[stat_table_name(cid)] = ("kcid", "tid", "logtheta")
        for name, columns in expected.items():
            actual = tuple(self.database.table(name).schema.column_names)
            if actual != columns:
                raise ValueError(f"{name} schema order {actual} != {columns}")

    def _populate_taxonomy(self, model: HierarchicalModel) -> None:
        taxonomy_table = self.database.table("TAXONOMY")
        taxonomy_table.truncate()
        rows = []
        for node in model.taxonomy.nodes():
            parent_cid = node.parent.cid if node.parent is not None else None
            parent_model = (
                model.nodes.get(parent_cid) if parent_cid is not None else None
            )
            logprior = parent_model.logprior.get(node.cid) if parent_model else None
            logdenom = parent_model.logdenom.get(node.cid) if parent_model else None
            # Positional, in the order create_tables defines.
            rows.append(
                (
                    node.cid,
                    parent_cid,
                    node.name or "root",
                    node.mark.value,
                    logprior,
                    logdenom,
                )
            )
        taxonomy_table.insert_many(rows)

    def _populate_statistics(self, model: HierarchicalModel) -> None:
        blob_table = self.database.table("BLOB")
        blob_table.truncate()
        for cid, node_model in model.nodes.items():
            stat_table = self.database.table(stat_table_name(cid))
            stat_table.truncate()
            stat_rows = [
                (kcid, tid, value)
                for (kcid, tid), value in sorted(node_model.logtheta.items(), key=lambda kv: kv[0][1])
            ]
            stat_table.insert_many(stat_rows)
            blob_table.insert_many(self._blob_rows(cid, node_model))

    def _blob_rows(self, cid: int, node_model: NodeModel) -> List[tuple]:
        by_tid: Dict[int, List[tuple[int, float]]] = {}
        for (kcid, tid), value in node_model.logtheta.items():
            by_tid.setdefault(tid, []).append((kcid, value))
        rows = []
        for tid, records in by_tid.items():
            payload = b"".join(
                _BLOB_RECORD.pack(kcid, value) for kcid, value in sorted(records)
            )
            rows.append((cid, tid, payload))
        return rows

    @staticmethod
    def decode_blob(payload: bytes) -> List[tuple[int, float]]:
        """Unpack a BLOB payload into ``(kcid, logtheta)`` records."""
        if len(payload) % _BLOB_RECORD.size != 0:
            raise ValueError("corrupt BLOB payload")
        return [
            _BLOB_RECORD.unpack_from(payload, offset)
            for offset in range(0, len(payload), _BLOB_RECORD.size)
        ]


def sync_taxonomy_marks(database: Database, taxonomy: TopicTaxonomy) -> None:
    """Push the current good/path/null marks into the TAXONOMY table.

    The paper fixes the mutual-funds stagnation with a single UPDATE on
    the TAXONOMY table; keeping marks in the table lets monitoring SQL
    join against them.
    """
    if not database.has_table("TAXONOMY"):
        return
    table = database.table("TAXONOMY")
    for rid, row in list(table.scan()):
        mapping = table.schema.row_to_mapping(row)
        node = taxonomy.node(mapping["kcid"])
        if mapping["type"] != node.mark.value:
            table.update_row(rid, {"type": node.mark.value})
