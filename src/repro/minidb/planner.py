"""Index-aware SQL planner: plan trees, ``EXPLAIN``, and plan modes.

:func:`plan_select` turns a parsed :class:`~repro.minidb.sql.SelectStatement`
into a :class:`Plan` — an operator tree plus the metadata EXPLAIN and the
cost-attribution layer need.  Two modes, selected per plan (or globally
through the ``REPRO_SQL_PLANNER`` environment variable):

* ``"index"`` (the default): access paths go through indexes whenever a
  safe one exists —

  - equality conjuncts fully binding an index → :class:`IndexLookup`;
  - range conjuncts on an ordered index's leading column →
    :class:`IndexRangeScan`;
  - ``IN``-lists on an indexed column → :class:`IndexKeysLookup`
    (one ordered probe per distinct value);
  - graph conjuncts (``descendant_of`` / ``in_subtree`` /
    ``reachable_from``) → the interval index's window range scan;
  - equi-joins whose inner key is covered by the inner table's primary
    key, or by a secondary index that has never seen a delete, →
    :class:`IndexNestedLoopJoin` (order-identical to the hash join it
    replaces: index postings and hash buckets both preserve heap
    insertion order);
  - base scans that survive are narrowed to the referenced columns
    (projection pushdown), skipped for ``SELECT *``.

* ``"scan"``: the legacy scan-and-filter pipeline, byte-for-byte — the
  reference plan the bit-transparency tests compare against.

Everything downstream of the access paths (filters, grouping, having,
projection, distinct, order, limit) is shared verbatim between modes, so
an index plan differs from its scan plan only in *how rows arrive*.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from .buffer_pool import IOStats
from .errors import QueryError
from .expressions import And, ColumnRef, Expression, Literal
from .operators import (
    Distinct,
    Filter,
    GroupByAggregate,
    HashJoin,
    IndexKeysLookup,
    IndexLookup,
    IndexNestedLoopJoin,
    IndexRangeScan,
    Limit,
    Operator,
    Project,
    RowDict,
    Sort,
    TableScan,
    explain_lines,
)
from .sql import (
    SelectStatement,
    SqlBinary,
    SqlColumn,
    SqlFunction,
    SqlIn,
    SqlLiteral,
    SqlParam,
    _AGGREGATE_FUNCS,
    _Compiler,
    _column_table,
    _contains_aggregate,
    _expr_name,
    _GRAPH_FUNCS,
    _split_where,
)

#: Environment variable selecting the session-wide planner mode.
PLANNER_MODE_ENV = "REPRO_SQL_PLANNER"

#: Valid planner modes: index-aware plans vs. the legacy scan pipeline.
PLANNER_MODES = ("index", "scan")

#: WHERE-clause functions the planner recognises as graph predicates.
GRAPH_FUNCS = _GRAPH_FUNCS

#: Operators that constitute an index access path, for plan inspection.
_INDEX_OPS = (IndexLookup, IndexKeysLookup, IndexRangeScan, IndexNestedLoopJoin)


def planner_mode() -> str:
    """The session's planner mode (``REPRO_SQL_PLANNER``, default ``index``)."""
    mode = os.environ.get(PLANNER_MODE_ENV, "").strip().lower() or "index"
    if mode not in PLANNER_MODES:
        raise QueryError(
            f"unknown planner mode {mode!r} in ${PLANNER_MODE_ENV} "
            f"(expected one of {PLANNER_MODES})"
        )
    return mode


@dataclass(frozen=True)
class ExplainResult:
    """The rendered plan tree of one statement."""

    mode: str
    lines: tuple[str, ...]

    @property
    def text(self) -> str:
        return "\n".join(self.lines)

    @property
    def uses_index_path(self) -> bool:
        """Whether any access path in the plan goes through an index."""
        return any(
            line.lstrip().startswith(("IndexLookup", "IndexKeysLookup",
                                      "IndexRangeScan", "IndexNestedLoopJoin"))
            for line in self.lines
        )

    def __str__(self) -> str:
        return self.text


@dataclass
class Plan:
    """An executable operator tree with its planning metadata."""

    root: Operator
    mode: str
    statement: Optional[SelectStatement] = None
    parameters: Mapping[str, Any] = field(default_factory=dict)

    def execute(self) -> list[RowDict]:
        return self.root.to_list()

    def explain(self) -> ExplainResult:
        return ExplainResult(mode=self.mode, lines=tuple(explain_lines(self.root)))

    def operators(self) -> list[Operator]:
        """Every operator in the tree, root first (pre-order)."""
        out: list[Operator] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(reversed(node.children()))
        return out

    @property
    def uses_index_path(self) -> bool:
        return any(isinstance(op, _INDEX_OPS) for op in self.operators())

    def access_rows(self) -> tuple[int, int]:
        """``(index_rows, scan_rows)`` produced by the plan's access paths.

        Used by the distiller's cost attribution: rows that arrived
        through index probes are random-I/O lookups; rows from table
        scans are sequential.  Only meaningful after :meth:`execute`.
        """
        index_rows = scan_rows = 0
        for op in self.operators():
            if isinstance(op, _INDEX_OPS):
                index_rows += op.rows_out
            elif isinstance(op, TableScan):
                scan_rows += op.rows_out
        return index_rows, scan_rows


# ---------------------------------------------------------------------------
# Graph-predicate resolution
# ---------------------------------------------------------------------------


def _bare(name: str) -> str:
    return name.split(".")[-1]


def _find_interval_indexes(database: "Database"):  # noqa: F821
    """All (table, index) pairs carrying an interval index."""
    from .intervals import IntervalIndex

    found = []
    for name in database.table_names():
        table = database.table(name)
        for index in table.indexes.values():
            if isinstance(index, IntervalIndex):
                found.append((table, index))
    return found


def resolve_interval_index(
    database, column: str, index_hint: Optional[str] = None, label: str = "graph query"
):
    """The ``(table, IntervalIndex)`` answering a graph predicate on *column*.

    Resolution order: an explicit *index_hint* by name; otherwise the
    interval index whose id column matches the bare column name;
    otherwise — when the database has exactly one interval index — that
    one (the id domain is unambiguous).  Anything else is an error
    asking the caller to name the index.
    """
    candidates = _find_interval_indexes(database)
    if index_hint is not None:
        for table, index in candidates:
            if index.name == index_hint:
                return table, index
        raise QueryError(f"no interval index named {index_hint!r}")
    bare = _bare(column)
    matching = [
        (table, index) for table, index in candidates if index.key_columns[0] == bare
    ]
    if len(matching) == 1:
        return matching[0]
    if not matching and len(candidates) == 1:
        return candidates[0]
    if not candidates:
        raise QueryError(
            f"{label} on {column!r} needs an interval index "
            "(create one with kind='interval')"
        )
    raise QueryError(
        f"{label} on {column!r} is ambiguous: name the interval index explicitly"
    )


def point_index(table, column: str) -> Optional[str]:
    """An index of *table* keyed exactly on ``(column,)``, if any."""
    pk = table.schema.primary_key
    if pk and tuple(pk) == (column,):
        return f"{table.name}_pk"
    for index in table.indexes.values():
        if index.key_columns == (column,):
            return index.name
    return None


class _GraphPredicate:
    """A resolved graph conjunct: which interval index answers it, and how."""

    def __init__(self, func: SqlFunction, database, compiler: _Compiler) -> None:
        if len(func.args) not in (2, 3) or not isinstance(func.args[0], SqlColumn):
            raise QueryError(
                f"{func.name}() takes (column, root[, 'index_name']) arguments"
            )
        self.func_name = func.name
        self.column = func.args[0].name
        self.root = compiler.compile(func.args[1]).evaluate({})
        index_hint = None
        if len(func.args) == 3:
            hint = func.args[2]
            if not isinstance(hint, SqlLiteral) or not isinstance(hint.value, str):
                raise QueryError(f"{func.name}() index name must be a string literal")
            index_hint = hint.value
        self.table, self.index = resolve_interval_index(
            database, self.column, index_hint, label=f"{func.name}()"
        )

    def ids(self) -> list[Any]:
        """The id set satisfying the predicate, in index discovery order."""
        if self.func_name == "descendant_of":
            return self.index.descendant_ids(self.root, include_self=False)
        if self.func_name == "in_subtree":
            return self.index.descendant_ids(self.root, include_self=True)
        return self.index.reachable_ids(self.root, include_self=True)

    def driving_scan(self, table, alias: str) -> Optional[Operator]:
        """An IndexRangeScan over *table* if the window scan applies directly."""
        if table.name != self.table.name:
            return None
        if _bare(self.column) != self.index.key_columns[0]:
            return None
        mode = "reachable" if self.func_name == "reachable_from" else "descendants"
        include_root = self.func_name != "descendant_of"
        return IndexRangeScan(
            table,
            self.index.name,
            alias,
            mode=mode,
            root=self.root,
            include_root=include_root,
        )

    def as_filter(self) -> Expression:
        """InSet fallback when the predicate cannot drive the access path."""
        from .expressions import InSet

        return InSet(ColumnRef(self.column), self.ids(), negated=False)


def _is_graph_conjunct(conj) -> bool:
    return isinstance(conj, SqlFunction) and conj.name in GRAPH_FUNCS


def compile_graph_function(node: SqlFunction, database, compiler: _Compiler) -> Expression:
    """Compile a graph predicate into an ``InSet`` membership test."""
    return _GraphPredicate(node, database, compiler).as_filter()


# ---------------------------------------------------------------------------
# Access-path selection (index mode)
# ---------------------------------------------------------------------------

_RANGE_OPS = {"<": "high_open", "<=": "high", ">": "low_open", ">=": "low"}
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _constant_value(node, compiler: _Compiler):
    """The Python value of a literal/parameter node, or a miss marker."""
    if isinstance(node, SqlLiteral):
        return True, node.value
    if isinstance(node, SqlParam):
        if node.name not in compiler.parameters:
            raise QueryError(f"missing SQL parameter :{node.name}")
        return True, compiler.parameters[node.name]
    return False, None


def _bound_column(
    node, table, alias: str, ambiguous: frozenset = frozenset()
) -> Optional[str]:
    """The bare column name of *node* if it names a column of *table*.

    *ambiguous* holds bare column names that exist in more than one table
    of the statement: an unqualified reference to one of those cannot be
    attributed to *table*, so it never drives an access path.
    """
    if not isinstance(node, SqlColumn):
        return None
    name = node.name
    if "." in name:
        prefix, bare = name.split(".", 1)
        if prefix != alias or "." in bare:
            return None
        name = bare
    elif name in ambiguous:
        return None
    return name if name in table.schema else None


def _referenced_names(node, out: set[str]) -> None:
    """Collect every column name mentioned in a SQL AST expression."""
    if isinstance(node, SqlColumn):
        out.add(node.name)
    elif isinstance(node, SqlBinary):
        _referenced_names(node.left, out)
        _referenced_names(node.right, out)
    elif isinstance(node, SqlFunction):
        for arg in node.args:
            _referenced_names(arg, out)
    elif isinstance(node, SqlIn):
        _referenced_names(node.inner, out)
        for value in node.values or []:
            _referenced_names(value, out)
    elif hasattr(node, "inner"):
        _referenced_names(node.inner, out)


def _pushdown_columns(
    statement: SelectStatement, database, table, alias: str
) -> Optional[list[str]]:
    """Columns of *alias* the statement can touch, or None to keep them all.

    Conservative: a bare reference keeps the column on every table that
    has it; ``SELECT *`` (and subqueries, which are resolved before the
    scan runs) disables pushdown for the whole statement.
    """
    if any(item.is_star for item in statement.items):
        return None

    names: set[str] = set()
    for item in statement.items:
        _referenced_names(item.expression, names)
    if statement.where is not None:
        _referenced_names(statement.where, names)
    for expr in statement.group_by:
        _referenced_names(expr, names)
    if statement.having is not None:
        _referenced_names(statement.having, names)
    for expr, _asc in statement.order_by:
        _referenced_names(expr, names)

    keep = []
    for column in table.schema.column_names:
        if column in names or f"{alias}.{column}" in names:
            keep.append(column)
    if len(keep) == len(table.schema.column_names):
        return None  # nothing to prune
    return keep


def _inner_join_index(table, right_columns: Sequence[str]):
    """An index of *table* safe to drive an index-nested-loop join.

    Safe means order-identical to the hash join it replaces: the primary
    key (unique, so per-key order is trivial) or any index that has
    never processed a delete (postings still in heap insertion order).
    """
    target = tuple(right_columns)
    pk = table.schema.primary_key
    if pk and tuple(pk) == target:
        return f"{table.name}_pk"
    for index in table.indexes.values():
        if index.key_columns == target and getattr(index, "deletions", 1) == 0:
            return index.name
    return None


def _inl_cost_beats_hash(outer: Operator, inner_table, index_name: str) -> bool:
    """Whether an index-nested-loop join is cheaper than a hash join here.

    Costed with the engine's own simulated-I/O constants: INL pays one
    *random* read per outer row for the probe plus one per matching
    inner row; the hash join pays one *sequential* read plus hashing CPU
    per inner row to build its table.  With an unknown outer cardinality
    we assume "large" and keep the hash join — bulk pipelines (e.g. the
    Figure-4 distillation joins) must not degrade to per-row probes.
    """
    outer_est = outer.estimated_rows()
    if outer_est is None:
        return False
    inner_rows = inner_table.row_count
    if inner_rows == 0:
        return False
    index = inner_table._resolve_index(index_name)
    key_count = getattr(index, "key_count", 0)
    fanout = (len(index) / key_count) if key_count else 1.0
    costs = IOStats()
    inl_cost = outer_est * (1.0 + fanout) * costs.read_cost
    hash_cost = inner_rows * (costs.sequential_read_cost + costs.cpu_cost)
    return inl_cost < hash_cost


def _equality_path(
    conjuncts,
    used: set[int],
    table,
    alias: str,
    compiler: _Compiler,
    ambiguous: frozenset = frozenset(),
) -> Optional[tuple[str, list[Any], set[int]]]:
    """An index fully bound by equality conjuncts: (index, key, used ids)."""
    bound: dict[str, Any] = {}
    owner: dict[str, int] = {}
    for idx, conj in enumerate(conjuncts):
        if idx in used or not isinstance(conj, SqlBinary) or conj.op != "=":
            continue
        for column_node, value_node in ((conj.left, conj.right), (conj.right, conj.left)):
            column = _bound_column(column_node, table, alias, ambiguous)
            if column is None or column in bound:
                continue
            ok, value = _constant_value(value_node, compiler)
            if not ok:
                continue
            bound[column] = value
            owner[column] = idx
            break
    if not bound:
        return None
    candidates = []
    if table.schema.primary_key:
        candidates.append((f"{table.name}_pk", tuple(table.schema.primary_key)))
    candidates.extend((idx.name, idx.key_columns) for idx in table.indexes.values())
    for index_name, key_columns in candidates:
        if all(c in bound for c in key_columns):
            key = [bound[c] for c in key_columns]
            return index_name, key, {owner[c] for c in key_columns}
    return None


def _in_list_path(
    conjuncts,
    used: set[int],
    table,
    alias: str,
    compiler: _Compiler,
    ambiguous: frozenset = frozenset(),
) -> Optional[tuple[str, list[tuple], int]]:
    """A single-column IN-list probing an index: (index, keys, used id)."""
    for idx, conj in enumerate(conjuncts):
        if idx in used or not isinstance(conj, SqlIn) or conj.negated:
            continue
        if conj.values is None:  # IN-subquery: resolved by the compiler
            continue
        column = _bound_column(conj.inner, table, alias, ambiguous)
        if column is None:
            continue
        values = []
        constant = True
        for node in conj.values:
            ok, value = _constant_value(node, compiler)
            if not ok:
                constant = False
                break
            values.append(value)
        if not constant:
            continue
        index_name = point_index(table, column)
        if index_name is None:
            continue
        return index_name, [(v,) for v in values], idx
    return None


def _range_path(
    conjuncts,
    used: set[int],
    table,
    alias: str,
    compiler: _Compiler,
    ambiguous: frozenset = frozenset(),
) -> Optional[tuple[str, dict, set[int]]]:
    """Range conjuncts on a single-column ordered index.

    Multi-column ordered indexes are skipped: a bound on the leading
    column alone cannot be expressed as a closed tuple range (``col <= v``
    would need a ``(v, +inf)`` sentinel), so those queries keep the scan
    path rather than risk dropping prefix-equal keys.
    """
    from .index import OrderedIndex

    for index in table.indexes.values():
        if not isinstance(index, OrderedIndex) or len(index.key_columns) != 1:
            continue
        column = index.key_columns[0]
        bounds = {"low": None, "high": None, "include_low": True, "include_high": True}
        consumed: set[int] = set()
        for idx, conj in enumerate(conjuncts):
            if idx in used or not isinstance(conj, SqlBinary):
                continue
            op = conj.op
            if op not in _RANGE_OPS:
                continue
            left_col = _bound_column(conj.left, table, alias, ambiguous)
            right_col = _bound_column(conj.right, table, alias, ambiguous)
            if left_col == column:
                ok, value = _constant_value(conj.right, compiler)
            elif right_col == column:
                ok, value = _constant_value(conj.left, compiler)
                op = _FLIP[op]
            else:
                continue
            if not ok or value is None:
                continue
            if op in ("<", "<="):
                if bounds["high"] is None or value < bounds["high"][0]:
                    bounds["high"] = (value,)
                    bounds["include_high"] = op == "<="
                    consumed.add(idx)
            else:
                if bounds["low"] is None or value > bounds["low"][0]:
                    bounds["low"] = (value,)
                    bounds["include_low"] = op == ">="
                    consumed.add(idx)
        if consumed and (bounds["low"] is not None or bounds["high"] is not None):
            return index.name, bounds, consumed
    return None


# ---------------------------------------------------------------------------
# plan_select
# ---------------------------------------------------------------------------


def plan_select(
    database: "Database",  # noqa: F821
    statement: SelectStatement,
    parameters: Mapping[str, Any],
    mode: Optional[str] = None,
) -> Plan:
    """Build the plan tree for *statement* under the given (or session) mode."""
    mode = mode or planner_mode()
    if mode not in PLANNER_MODES:
        raise QueryError(f"unknown planner mode {mode!r}")
    compiler = _Compiler(database, parameters)
    aliases = [alias for _, alias in statement.tables]
    conjuncts = _split_where(statement.where)
    used: set[int] = set()
    indexed = mode == "index"
    single_table = len(statement.tables) == 1
    # Bare column names living in more than one of the statement's tables
    # cannot be attributed to the base table, so they never drive its
    # access path (alias-qualified references are always eligible).
    if single_table:
        ambiguous: frozenset = frozenset()
    else:
        seen: dict[str, int] = {}
        for t_name, _ in statement.tables:
            for column_name in database.table(t_name).schema.column_names:
                seen[column_name] = seen.get(column_name, 0) + 1
        ambiguous = frozenset(name for name, count in seen.items() if count > 1)

    # -- base access path --------------------------------------------------
    base_name, base_alias = statement.tables[0]
    base_table = database.table(base_name)
    plan: Optional[Operator] = None

    if indexed:
        # Graph conjuncts first: a window range scan beats everything.
        for idx, conj in enumerate(conjuncts):
            if idx in used or not _is_graph_conjunct(conj):
                continue
            predicate = _GraphPredicate(conj, database, compiler)
            driving = predicate.driving_scan(base_table, base_alias)
            if driving is not None:
                plan = driving
                used.add(idx)
            else:
                column = _bound_column(conj.args[0], base_table, base_alias, ambiguous)
                if column is not None:
                    index_name = point_index(base_table, column)
                    if index_name is not None:
                        plan = IndexKeysLookup(
                            base_table,
                            index_name,
                            [(v,) for v in predicate.ids()],
                            base_alias,
                        )
                        used.add(idx)
            break
        if plan is None:
            match = _equality_path(
                conjuncts, used, base_table, base_alias, compiler, ambiguous
            )
            if match is not None:
                index_name, key, consumed = match
                # IndexKeysLookup (not IndexLookup) even for one key: it
                # reads matches in heap order, so a churned index still
                # produces the scan plan's row order bit-for-bit.
                plan = IndexKeysLookup(base_table, index_name, [key], base_alias)
                used |= consumed
        if plan is None:
            match = _in_list_path(
                conjuncts, used, base_table, base_alias, compiler, ambiguous
            )
            if match is not None:
                index_name, keys, consumed_idx = match
                plan = IndexKeysLookup(base_table, index_name, keys, base_alias)
                used.add(consumed_idx)
        if plan is None:
            match = _range_path(
                conjuncts, used, base_table, base_alias, compiler, ambiguous
            )
            if match is not None:
                index_name, bounds, consumed = match
                plan = IndexRangeScan(
                    base_table,
                    index_name,
                    base_alias,
                    mode="range",
                    low=bounds["low"],
                    high=bounds["high"],
                    include_low=bounds["include_low"],
                    include_high=bounds["include_high"],
                )
                used |= consumed
    if plan is None:
        columns = (
            _pushdown_columns(statement, database, base_table, base_alias)
            if indexed
            else None
        )
        plan = TableScan(base_table, base_alias, columns=columns)

    # -- joins (legacy connectivity logic, index-aware inner path) ---------
    joined_aliases = {base_alias}
    for table_name, alias in statement.tables[1:]:
        inner_table = database.table(table_name)
        left_keys: list[Expression] = []
        right_keys: list[Expression] = []
        right_columns: list[str] = []
        for idx, conj in enumerate(conjuncts):
            if idx in used or not isinstance(conj, SqlBinary) or conj.op != "=":
                continue
            if not isinstance(conj.left, SqlColumn) or not isinstance(conj.right, SqlColumn):
                continue
            left_table = _column_table(conj.left.name, aliases)
            right_table = _column_table(conj.right.name, aliases)

            # Unqualified columns: attribute them by schema membership.
            def owner(column: SqlColumn, qualified: Optional[str]) -> Optional[str]:
                if qualified is not None:
                    return qualified
                bare = column.name
                owners = []
                for t_name, t_alias in statement.tables:
                    if bare in database.table(t_name).schema:
                        owners.append(t_alias)
                if len(owners) == 1:
                    return owners[0]
                if alias in owners and any(o in joined_aliases for o in owners):
                    # Ambiguous but joinable: prefer pairing new alias with joined side.
                    return alias if qualified is None else qualified
                return owners[0] if owners else None

            lt = owner(conj.left, left_table)
            rt = owner(conj.right, right_table)
            if lt is None or rt is None:
                continue
            if lt in joined_aliases and rt == alias:
                left_keys.append(compiler.compile(conj.left))
                right_keys.append(compiler.compile(conj.right))
                right_columns.append(_bare(conj.right.name))
                used.add(idx)
            elif rt in joined_aliases and lt == alias:
                left_keys.append(compiler.compile(conj.right))
                right_keys.append(compiler.compile(conj.left))
                right_columns.append(_bare(conj.left.name))
                used.add(idx)
        inner_index = (
            _inner_join_index(inner_table, right_columns)
            if indexed and left_keys
            else None
        )
        if inner_index is not None and not _inl_cost_beats_hash(
            plan, inner_table, inner_index
        ):
            inner_index = None
        if inner_index is not None:
            plan = IndexNestedLoopJoin(plan, inner_table, inner_index, left_keys, alias)
        elif left_keys:
            plan = HashJoin(plan, TableScan(inner_table, alias), left_keys, right_keys)
        else:
            plan = HashJoin(
                plan, TableScan(inner_table, alias), [Literal(1)], [Literal(1)]
            )
        joined_aliases.add(alias)

    # -- residual filter ---------------------------------------------------
    remaining = [c for i, c in enumerate(conjuncts) if i not in used]
    if remaining:
        predicate = compiler.compile(remaining[0])
        for conj in remaining[1:]:
            predicate = And([predicate, compiler.compile(conj)])
        plan = Filter(plan, predicate)

    # -- SELECT list & grouping (shared verbatim between modes) ------------
    has_group = bool(statement.group_by)
    has_aggregates = any(
        item.expression is not None and _contains_aggregate(item.expression)
        for item in statement.items
    ) or (statement.having is not None and _contains_aggregate(statement.having))

    outputs: list[tuple[str, Expression]] = []
    star = any(item.is_star for item in statement.items)

    if has_group or has_aggregates:
        group_keys: list[tuple[str, Expression]] = []
        group_names: list[tuple[Any, str]] = []
        for i, group_expr in enumerate(statement.group_by):
            name = _expr_name(group_expr, f"group_{i}")
            group_keys.append((name, compiler.compile(group_expr)))
            group_names.append((group_expr, name))
        # Compile select items: aggregates register themselves on the compiler.
        # A non-aggregate select item that textually matches a GROUP BY
        # expression (e.g. ``floor(lastvisited / 60)``) is rewritten to
        # reference the grouped output column, as SQL semantics require.
        for i, item in enumerate(statement.items):
            if item.is_star:
                raise QueryError("SELECT * cannot be combined with GROUP BY/aggregates")
            name = item.alias or _expr_name(item.expression, f"col_{i}")
            matched = None
            if not _contains_aggregate(item.expression):
                for group_expr, group_name in group_names:
                    if item.expression == group_expr:
                        matched = ColumnRef(group_name)
                        break
            outputs.append(
                (
                    name,
                    matched
                    if matched is not None
                    else compiler.compile(item.expression, allow_aggregates=True),
                )
            )
        having_expr = (
            compiler.compile(statement.having, allow_aggregates=True)
            if statement.having is not None
            else None
        )
        plan = GroupByAggregate(plan, group_keys, compiler.aggregates, having=None)
        if having_expr is not None:
            plan = Filter(plan, having_expr)
        plan = Project(plan, outputs)
    elif not star:
        for i, item in enumerate(statement.items):
            name = item.alias or _expr_name(item.expression, f"col_{i}")
            outputs.append((name, compiler.compile(item.expression)))
        plan = Project(plan, outputs)
    # SELECT *: pass rows through (qualified + bare keys).

    if statement.distinct:
        plan = Distinct(plan)
    if statement.order_by:
        keys = []
        for expr, asc in statement.order_by:
            compiled: Optional[Expression] = None
            if has_group or has_aggregates:
                # ORDER BY may reference a GROUP BY expression or a select
                # alias; both resolve against the post-projection row.
                for item in statement.items:
                    if not item.is_star and expr == item.expression:
                        name = item.alias or _expr_name(item.expression, "")
                        if name:
                            compiled = ColumnRef(name)
                        break
                if compiled is None:
                    for i, group_expr in enumerate(statement.group_by):
                        if expr == group_expr:
                            compiled = ColumnRef(_expr_name(group_expr, f"group_{i}"))
                            break
                if (
                    compiled is None
                    and isinstance(expr, SqlFunction)
                    and expr.name in _AGGREGATE_FUNCS
                ):
                    compiled = compiler.compile(expr, allow_aggregates=True)
            if compiled is None:
                compiled = compiler.compile(expr)
            keys.append((compiled, asc))
        plan = Sort(plan, keys)
    if statement.limit is not None:
        plan = Limit(plan, statement.limit)
    return Plan(root=plan, mode=mode, statement=statement, parameters=dict(parameters))
