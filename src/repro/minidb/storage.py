"""Heap files: unordered collections of rows stored on slotted pages.

A :class:`HeapFile` owns a contiguous sequence of page numbers within one
file id and routes every access through the shared :class:`BufferPool`,
so scans and point reads are charged the appropriate logical/physical
page I/O.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from .buffer_pool import BufferPool
from .errors import StorageError
from .pages import DEFAULT_PAGE_SIZE, Page, PageId, RecordId
from .types import Schema


class HeapFile:
    """An append-friendly heap of rows for one table.

    Rows are identified by stable :class:`RecordId`s.  Inserts go to the
    last page with room (or a fresh page); deletes leave tombstones.
    """

    def __init__(
        self,
        file_id: int,
        schema: Schema,
        buffer_pool: BufferPool,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> None:
        self.file_id = file_id
        self.schema = schema
        self.buffer_pool = buffer_pool
        self.page_size = page_size
        self._page_count = 0
        self._row_count = 0

    # -- properties -------------------------------------------------------
    @property
    def page_count(self) -> int:
        return self._page_count

    @property
    def row_count(self) -> int:
        return self._row_count

    def page_ids(self) -> Iterator[PageId]:
        for page_no in range(self._page_count):
            yield PageId(self.file_id, page_no)

    # -- mutation ----------------------------------------------------------
    def insert(self, row: tuple) -> RecordId:
        """Append *row*, returning its record id."""
        row_size = self.schema.row_size(row)
        self.check_row_size(row_size)
        page = self._page_with_room(row_size)
        slot = page.insert(row, row_size)
        self.buffer_pool.mark_dirty(page.page_id)
        self._row_count += 1
        return RecordId(page.page_id, slot)

    def insert_rows(
        self, rows: Sequence[tuple], sizes: Optional[Sequence[int]] = None
    ) -> list[RecordId]:
        """Append many rows in one pass, returning their record ids.

        Unlike repeated :meth:`insert`, the current fill page is pinned
        through the buffer pool only once per page switch instead of once
        per row, so a bulk load of N rows touches O(pages) frames rather
        than O(N).  *sizes*, when given, carries per-row byte sizes already
        computed (and checked) by the caller; between page switches no
        other pool activity happens, so holding the page object is safe.
        """
        rids: list[RecordId] = []
        page: Optional[Page] = None
        for position, row in enumerate(rows):
            if sizes is not None:
                row_size = sizes[position]
            else:
                row_size = self.schema.row_size(row)
                self.check_row_size(row_size)
            if page is None:
                page = self._page_with_room(row_size)
            elif not page.fits(row_size):
                new_id = PageId(self.file_id, self._page_count)
                self._page_count += 1
                self.buffer_pool.create_page(new_id, self.page_size)
                # Re-fetch through the pool so the bulk load is charged one
                # logical page access per page it fills (a sequential write
                # pattern), keeping the I/O cost model meaningful.
                page = self.buffer_pool.get_page(new_id)
            slot = page.insert(row, row_size)
            self.buffer_pool.mark_dirty(page.page_id)
            self._row_count += 1
            rids.append(RecordId(page.page_id, slot))
        return rids

    def check_row_size(self, row_size: int) -> None:
        """Reject rows too large for a page (shared by single and bulk inserts)."""
        if row_size > self.page_size // 2:
            raise StorageError(
                f"row of {row_size} bytes too large for page size {self.page_size}"
            )

    def read(self, rid: RecordId) -> tuple:
        self._check_rid(rid)
        page = self.buffer_pool.get_page(rid.page_id)
        return page.read(rid.slot)

    def update(self, rid: RecordId, row: tuple, size_delta: Optional[int] = None) -> None:
        """Overwrite the row at *rid*.

        ``size_delta``, when given, is the byte-count change of the
        replacement as already computed by the caller (e.g. from the
        changed columns alone); it skips the two full row-size
        computations, which otherwise re-encode every TEXT column.
        """
        self._check_rid(rid)
        page = self.buffer_pool.get_page(rid.page_id)
        old = page.read(rid.slot)
        if size_delta is not None:
            page.update(rid.slot, row, old_size=0, new_size=size_delta)
        else:
            page.update(
                rid.slot,
                row,
                old_size=self.schema.row_size(old),
                new_size=self.schema.row_size(row),
            )
        self.buffer_pool.mark_dirty(rid.page_id)

    def delete(self, rid: RecordId) -> tuple:
        """Delete the row at *rid* and return it."""
        self._check_rid(rid)
        page = self.buffer_pool.get_page(rid.page_id)
        row = page.read(rid.slot)
        page.delete(rid.slot, self.schema.row_size(row))
        self.buffer_pool.mark_dirty(rid.page_id)
        self._row_count -= 1
        return row

    def truncate(self) -> None:
        """Drop every page, leaving an empty heap."""
        for page_id in self.page_ids():
            self.buffer_pool.drop_page(page_id)
        self._page_count = 0
        self._row_count = 0

    def restore(self, page_count: int, row_count: int) -> None:
        """Adopt heap extents recovered from a snapshot.

        The pages themselves already live in the storage backend; only the
        in-memory bookkeeping (how many pages/rows this heap owns) needs
        to be re-established before scans and appends can resume.
        """
        self._page_count = page_count
        self._row_count = row_count

    # -- scans --------------------------------------------------------------
    def scan(self) -> Iterator[tuple[RecordId, tuple]]:
        """Yield ``(rid, row)`` for every live row, page by page (sequential I/O)."""
        return self.scan_from(0)

    def scan_from(
        self, start_page: int, stop_page: Optional[int] = None
    ) -> Iterator[tuple[RecordId, tuple]]:
        """Like :meth:`scan`, but over pages ``[start_page, stop_page)``.

        ``stop_page=None`` scans to the end of the heap; an explicit bound
        supports delta scans that must stop at a recorded watermark.
        """
        stop = self._page_count if stop_page is None else min(stop_page, self._page_count)
        for page_no in range(start_page, stop):
            page_id = PageId(self.file_id, page_no)
            page = self.buffer_pool.get_page(page_id)
            for slot, row in page.rows():
                yield RecordId(page_id, slot), row

    def scan_rows(self) -> Iterator[tuple]:
        for _rid, row in self.scan():
            yield row

    # -- internals ------------------------------------------------------------
    def _page_with_room(self, row_size: int) -> Page:
        if self._page_count > 0:
            last_id = PageId(self.file_id, self._page_count - 1)
            page = self.buffer_pool.get_page(last_id)
            if page.fits(row_size):
                return page
        new_id = PageId(self.file_id, self._page_count)
        self._page_count += 1
        return self.buffer_pool.create_page(new_id, self.page_size)

    def _check_rid(self, rid: RecordId) -> None:
        if rid.page_id.file_id != self.file_id:
            raise StorageError(f"{rid} does not belong to file {self.file_id}")
        if rid.page_id.page_no >= self._page_count:
            raise StorageError(f"{rid} refers to a page beyond the heap")
