"""Heap files: unordered collections of rows stored on slotted pages.

A :class:`HeapFile` owns a contiguous sequence of page numbers within one
file id and routes every access through the shared :class:`BufferPool`,
so scans and point reads are charged the appropriate logical/physical
page I/O.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from .buffer_pool import BufferPool
from .errors import StorageError
from .pages import DEFAULT_PAGE_SIZE, SLOT_OVERHEAD, Page, PageId, RecordId
from .types import Schema


class HeapFile:
    """An append-friendly heap of rows for one table.

    Rows are identified by stable :class:`RecordId`s.  Inserts go to the
    last page with room (or a fresh page); deletes leave tombstones.
    """

    def __init__(
        self,
        file_id: int,
        schema: Schema,
        buffer_pool: BufferPool,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> None:
        self.file_id = file_id
        self.schema = schema
        self.buffer_pool = buffer_pool
        self.page_size = page_size
        self._page_count = 0
        self._row_count = 0

    # -- properties -------------------------------------------------------
    @property
    def page_count(self) -> int:
        return self._page_count

    @property
    def row_count(self) -> int:
        return self._row_count

    def page_ids(self) -> Iterator[PageId]:
        for page_no in range(self._page_count):
            yield PageId(self.file_id, page_no)

    # -- mutation ----------------------------------------------------------
    def insert(self, row: tuple) -> RecordId:
        """Append *row*, returning its record id."""
        row_size = self.schema.row_size(row)
        self.check_row_size(row_size)
        page = self._page_with_room(row_size)
        slot = page.insert(row, row_size)
        self.buffer_pool.mark_dirty(page.page_id)
        self._row_count += 1
        return RecordId(page.page_id, slot)

    def insert_rows(
        self, rows: Sequence[tuple], sizes: Optional[Sequence[int]] = None
    ) -> list[RecordId]:
        """Append many rows in one pass, returning their record ids.

        Unlike repeated :meth:`insert`, the current fill page is pinned
        through the buffer pool only once per page switch instead of once
        per row, so a bulk load of N rows touches O(pages) frames rather
        than O(N).  *sizes*, when given, carries per-row byte sizes already
        computed (and checked) by the caller; between page switches no
        other pool activity happens, so holding the page object is safe.
        """
        if sizes is None:
            sizes = [self.schema.row_size(row) for row in rows]
            for row_size in sizes:
                self.check_row_size(row_size)
        rids: list[RecordId] = []
        n_rows = len(rows)
        position = 0
        page: Optional[Page] = None
        while position < n_rows:
            if page is None:
                page = self._page_with_room(sizes[position])
            else:
                new_id = PageId(self.file_id, self._page_count)
                self._page_count += 1
                self.buffer_pool.create_page(new_id, self.page_size)
                # Re-fetch through the pool so the bulk load is charged one
                # logical page access per page it fills (a sequential write
                # pattern), keeping the I/O cost model meaningful.
                page = self.buffer_pool.get_page(new_id)
            page_id = page.page_id
            if page.tombstones:
                # Tombstone reuse needs the per-slot scan; take the slow,
                # row-at-a-time path for this page.
                while position < n_rows and page.fits(sizes[position]):
                    slot = page.append_row(rows[position], sizes[position])
                    rids.append(RecordId(page_id, slot))
                    position += 1
            else:
                # Pure appends: take as many rows as fit in one slice, with
                # plain arithmetic instead of per-row method calls.
                free = page.capacity - page.used_bytes
                used = 0
                chunk_end = position
                while chunk_end < n_rows:
                    needed = sizes[chunk_end] + SLOT_OVERHEAD
                    if used + needed > free:
                        break
                    used += needed
                    chunk_end += 1
                if chunk_end > position:
                    slots = page.slots
                    first_slot = len(slots)
                    slots.extend(rows[position:chunk_end])
                    page.used_bytes += used
                    page.dirty = True
                    rids.extend(
                        [
                            RecordId(page_id, slot)
                            for slot in range(first_slot, first_slot + (chunk_end - position))
                        ]
                    )
                    position = chunk_end
        self._row_count += len(rids)
        return rids

    def check_row_size(self, row_size: int) -> None:
        """Reject rows too large for a page (shared by single and bulk inserts)."""
        if row_size > self.page_size // 2:
            raise StorageError(
                f"row of {row_size} bytes too large for page size {self.page_size}"
            )

    def read(self, rid: RecordId) -> tuple:
        self._check_rid(rid)
        page = self.buffer_pool.get_page(rid.page_id)
        return page.read(rid.slot)

    def update(self, rid: RecordId, row: tuple, size_delta: Optional[int] = None) -> None:
        """Overwrite the row at *rid*.

        ``size_delta``, when given, is the byte-count change of the
        replacement as already computed by the caller (e.g. from the
        changed columns alone); it skips the two full row-size
        computations, which otherwise re-encode every TEXT column.
        """
        self._check_rid(rid)
        page = self.buffer_pool.get_page(rid.page_id)
        if size_delta is not None:
            # Slot occupancy is checked by page.update; the old row itself
            # is only needed to compute sizes, which the caller supplied.
            page.update(rid.slot, row, old_size=0, new_size=size_delta)
        else:
            old = page.read(rid.slot)
            page.update(
                rid.slot,
                row,
                old_size=self.schema.row_size(old),
                new_size=self.schema.row_size(row),
            )
        self.buffer_pool.mark_dirty(rid.page_id)

    def delete(self, rid: RecordId) -> tuple:
        """Delete the row at *rid* and return it."""
        self._check_rid(rid)
        page = self.buffer_pool.get_page(rid.page_id)
        row = page.read(rid.slot)
        page.delete(rid.slot, self.schema.row_size(row))
        self.buffer_pool.mark_dirty(rid.page_id)
        self._row_count -= 1
        return row

    def truncate(self) -> None:
        """Drop every page, leaving an empty heap."""
        for page_id in self.page_ids():
            self.buffer_pool.drop_page(page_id)
        self._page_count = 0
        self._row_count = 0

    def restore(self, page_count: int, row_count: int) -> None:
        """Adopt heap extents recovered from a snapshot.

        The pages themselves already live in the storage backend; only the
        in-memory bookkeeping (how many pages/rows this heap owns) needs
        to be re-established before scans and appends can resume.
        """
        self._page_count = page_count
        self._row_count = row_count

    # -- scans --------------------------------------------------------------
    def scan(self) -> Iterator[tuple[RecordId, tuple]]:
        """Yield ``(rid, row)`` for every live row, page by page (sequential I/O)."""
        return self.scan_from(0)

    def scan_from(
        self, start_page: int, stop_page: Optional[int] = None
    ) -> Iterator[tuple[RecordId, tuple]]:
        """Like :meth:`scan`, but over pages ``[start_page, stop_page)``.

        ``stop_page=None`` scans to the end of the heap; an explicit bound
        supports delta scans that must stop at a recorded watermark.
        """
        stop = self._page_count if stop_page is None else min(stop_page, self._page_count)
        for page_no in range(start_page, stop):
            page_id = PageId(self.file_id, page_no)
            page = self.buffer_pool.get_page(page_id)
            for slot, row in page.rows():
                yield RecordId(page_id, slot), row

    def scan_rows(self) -> Iterator[tuple]:
        for _rid, row in self.scan():
            yield row

    # -- internals ------------------------------------------------------------
    def _page_with_room(self, row_size: int) -> Page:
        if self._page_count > 0:
            last_id = PageId(self.file_id, self._page_count - 1)
            page = self.buffer_pool.get_page(last_id)
            if page.fits(row_size):
                return page
        new_id = PageId(self.file_id, self._page_count)
        self._page_count += 1
        return self.buffer_pool.create_page(new_id, self.page_size)

    def check_rid(self, rid: RecordId) -> None:
        """Public form of the rid ownership/extent check (bulk-update path)."""
        self._check_rid(rid)

    def _check_rid(self, rid: RecordId) -> None:
        if rid.page_id.file_id != self.file_id:
            raise StorageError(f"{rid} does not belong to file {self.file_id}")
        if rid.page_id.page_no >= self._page_count:
            raise StorageError(f"{rid} refers to a page beyond the heap")
