"""StorageConfig: one object for every durability knob of a database.

Five PRs of storage work each added a keyword to :meth:`Database.open`
(and to every caller above it): WAL group commit, the fault-injection
file-operation seam, and two compaction knobs, all threaded positionally
through ``create_focus_database`` and ``CrawlerConfig``.  This module
collapses the sprawl into a single frozen :class:`StorageConfig` that
travels as one value — through ``Database.open(storage=...)``, through
``CrawlerConfig.storage``, and inside serialized
:class:`~repro.core.config.JobSpec` payloads submitted over the crawl
service's HTTP API.

The old keywords keep working as deprecated pass-throughs (see
:meth:`Database.open`); new code should build a ``StorageConfig``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Callable, Mapping, Optional

from .wal import FileOps


@dataclass(frozen=True)
class StorageConfig:
    """Durability policy of a database: WAL, compaction, cache, file ops.

    ``buffer_pool_pages=None`` means "use the caller's default" (each
    entry point historically had its own: 256 for ``Database.open``,
    2048 for ``create_focus_database``), so a partially specified config
    composes with those defaults instead of silently overriding them.
    """

    #: Buffer-pool capacity in pages; None defers to the call site's default.
    buffer_pool_pages: Optional[int] = None
    #: WAL group commit: 0 fsyncs only at checkpoints, N >= 1 at least
    #: once per N logged records.
    wal_fsync_batch: int = 0
    #: Consider segment compaction at every Nth checkpoint (0 disables).
    compact_every: int = 1
    #: Compact only when at least this fraction of segment payload is dead.
    compact_min_garbage_ratio: float = 0.5
    #: Prepare segment rewrites on a background worker and adopt them at
    #: the next checkpoint, instead of rewriting inside the checkpoint
    #: pause itself.  ``compact_every=0`` still disables compaction.
    background_compaction: bool = False
    #: Background-compaction trigger: also prepare a rewrite once this
    #: many WAL bytes have been appended since the last prepare (0
    #: leaves only the garbage-ratio trigger).
    compact_wal_bytes: int = 0
    #: File-operation layer override (fault-injection tests); not serializable.
    #: A single ``ops`` instance is stateful (fault counters, crash points)
    #: and therefore **per-database**: opening several databases — e.g. N
    #: crawl shards — against one instance makes their I/O share one event
    #: index.  Use ``ops_factory`` when one config fans out to many opens.
    ops: Optional[FileOps] = None
    #: Called once per ``Database.open`` to mint that database's private
    #: ``FileOps``; mutually exclusive with ``ops``.  Not serializable.
    ops_factory: Optional[Callable[[], FileOps]] = None

    def __post_init__(self) -> None:
        if self.buffer_pool_pages is not None and self.buffer_pool_pages < 1:
            raise ValueError("buffer_pool_pages must be >= 1 (or None for the default)")
        if self.wal_fsync_batch < 0:
            raise ValueError("wal_fsync_batch must be >= 0")
        if self.compact_every < 0:
            raise ValueError("compact_every must be >= 0")
        if not 0.0 <= self.compact_min_garbage_ratio <= 1.0:
            raise ValueError("compact_min_garbage_ratio must be in [0, 1]")
        if self.compact_wal_bytes < 0:
            raise ValueError("compact_wal_bytes must be >= 0")
        if self.ops is not None and self.ops_factory is not None:
            raise ValueError("pass either ops or ops_factory, not both")

    def make_ops(self) -> Optional[FileOps]:
        """The file-operation layer for one database open (None = default).

        Resolves ``ops_factory`` to a fresh instance per call, so every
        database opened from this config gets its own fault-injection /
        I/O-counter state.
        """
        if self.ops is not None:
            return self.ops
        if self.ops_factory is not None:
            return self.ops_factory()
        return None

    def replace(self, **overrides: Any) -> "StorageConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)

    def pool_pages(self, default: int) -> int:
        """The buffer-pool capacity, falling back to the call site's *default*."""
        return self.buffer_pool_pages if self.buffer_pool_pages is not None else default

    # -- serialization (job specs travel over HTTP as JSON) ------------------
    def to_dict(self) -> dict[str, Any]:
        """A plain-data form for JSON job specs; refuses a live ``ops`` object."""
        if self.ops is not None or self.ops_factory is not None:
            raise ValueError("StorageConfig with a FileOps override is not serializable")
        return {
            "buffer_pool_pages": self.buffer_pool_pages,
            "wal_fsync_batch": self.wal_fsync_batch,
            "compact_every": self.compact_every,
            "compact_min_garbage_ratio": self.compact_min_garbage_ratio,
            "background_compaction": self.background_compaction,
            "compact_wal_bytes": self.compact_wal_bytes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StorageConfig":
        known = {f.name for f in fields(cls)} - {"ops", "ops_factory"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown StorageConfig fields {unknown}; expected {sorted(known)}")
        return cls(**{k: data[k] for k in data})
