"""Pluggable page stores under the buffer pool: in-memory and durable.

The buffer pool caches hot pages and counts transfers; where evicted
pages *go* is the :class:`StorageBackend`'s business.  Two backends are
provided:

* :class:`MemoryBackend` — the original behaviour: evicted pages live in
  a dict, nothing survives the process.  This is the default and keeps
  the seed semantics (and I/O accounting) bit for bit.
* :class:`DurableBackend` — pages are pickled into an append-only
  *segment file*; a page directory maps each page id to its latest
  image offset.  A logical :class:`~repro.minidb.wal.WriteAheadLog`
  records every table mutation, and a checkpoint writes an atomic
  snapshot (catalog metadata + page directory + WAL epoch) so
  :meth:`repro.minidb.database.Database.open` can restore the last
  checkpoint and replay the log over it.

The segment file is never rewritten in place — superseded page images
simply become garbage — so a crash can at worst leave an unreferenced
tail, never a corrupt directory.  Garbage does not accumulate forever,
though: a :class:`~repro.minidb.compactor.Compactor` decides at
checkpoint time whether to rewrite the live images into a fresh
epoch-stamped segment file and atomically swap it in (the snapshot
rename is the commit point; stale segment files are fenced — deleted —
on the next open).  All file mutation goes through a pluggable
:class:`~repro.minidb.wal.FileOps` so crash-recovery tests can inject
faults at every individual I/O point.
"""

from __future__ import annotations

import os
import re
import threading
from dataclasses import dataclass
from typing import Any, BinaryIO, Dict, Optional

from .compactor import Compactor, SegmentEntry
from .errors import BufferPoolError, StorageError
from .pages import Page, PageId
from .wal import (
    FRAME_HEADER_SIZE,
    SEGMENT_MAGIC,
    FileOps,
    WriteAheadLog,
    dump_record,
    load_record,
    read_frame_at,
    write_frame,
)

#: File names inside a durable database directory.
SEGMENT_FILE = "segments.dat"
WAL_FILE = "wal.dat"
SNAPSHOT_FILE = "snapshot.dat"

#: Segment files carry the epoch of the compaction that wrote them;
#: epoch 0 is the database's original (never-compacted) segment file.
_SEGMENT_NAME = re.compile(r"^segments(?:\.(\d+))?\.dat$")


def segment_file_name(segment_epoch: int) -> str:
    """The on-disk name of the segment file written at *segment_epoch*."""
    if segment_epoch == 0:
        return SEGMENT_FILE
    return f"segments.{segment_epoch:06d}.dat"


@dataclass
class _PreparedCompaction:
    """A fully rewritten (fsynced, unpublished) segment file awaiting adoption.

    ``base_directory`` is the page directory snapshot the rewrite copied
    from; at adoption time the checkpoint folds in only the pages whose
    entry changed since, so the pause cost is proportional to the delta,
    not the database.  ``base_segment_epoch`` fences a prepare that a
    concurrent adoption made obsolete (it is simply discarded).
    """

    fh: BinaryIO
    path: str
    segment_epoch: int
    base_segment_epoch: int
    base_directory: Dict[PageId, SegmentEntry]
    directory: Dict[PageId, SegmentEntry]
    end: int


class StorageBackend:
    """Where pages live when they are not resident in the buffer pool."""

    #: Whether this backend can persist state across processes.
    persistent = False

    # -- page transfer ----------------------------------------------------
    def load_page(self, page_id: PageId) -> Page:
        """Fetch a page image (a physical read); raises if unknown."""
        raise NotImplementedError

    def store_page(self, page: Page) -> None:
        """Take ownership of an evicted page (a physical write if dirty)."""
        raise NotImplementedError

    def write_back(self, page: Page) -> None:
        """Persist a resident page's image without evicting it (flush)."""
        raise NotImplementedError

    def remove_page(self, page_id: PageId) -> None:
        """Forget a page entirely (table drop/truncate)."""
        raise NotImplementedError

    def contains(self, page_id: PageId) -> bool:
        raise NotImplementedError

    def page_count(self) -> int:
        raise NotImplementedError

    # -- durability --------------------------------------------------------
    @property
    def wal_bytes_written(self) -> int:
        return 0

    @property
    def wal_fsyncs(self) -> int:
        return 0

    @property
    def pages_flushed(self) -> int:
        return 0

    @property
    def segment_bytes_total(self) -> int:
        """Current size of the segment file's payload (live + dead images)."""
        return 0

    @property
    def segment_bytes_live(self) -> int:
        """Bytes of the segment file still referenced by the page directory."""
        return 0

    @property
    def segment_bytes_dead(self) -> int:
        """Superseded image bytes a compaction would reclaim."""
        return 0

    @property
    def compactions_run(self) -> int:
        return 0

    @property
    def compactions_prepared(self) -> int:
        """Background segment rewrites prepared (adopted or not yet)."""
        return 0

    @property
    def compactions_refreshed(self) -> int:
        """Background re-bases of a pending prepare (delta folds off-pause)."""
        return 0

    @property
    def bytes_reclaimed(self) -> int:
        return 0

    def log(self, record: tuple) -> None:
        """Append one logical mutation record to the WAL (no-op in memory)."""

    def begin_checkpoint(self) -> None:
        """Hook run before the checkpoint's dirty-page flush (maintenance)."""

    def close(self) -> None:
        """Release any file handles."""


class MemoryBackend(StorageBackend):
    """The seed behaviour: an in-memory dict of evicted pages.

    What matters for the experiments is not persistence but the
    *counting* of page transfers between the pool and this "disk".
    """

    persistent = False

    def __init__(self) -> None:
        self._pages: dict[PageId, Page] = {}

    def load_page(self, page_id: PageId) -> Page:
        try:
            page = self._pages.pop(page_id)
        except KeyError:
            raise BufferPoolError(f"{page_id} does not exist") from None
        return page

    def store_page(self, page: Page) -> None:
        self._pages[page.page_id] = page

    def write_back(self, page: Page) -> None:
        # Memory *is* the store: the resident object stays authoritative.
        pass

    def remove_page(self, page_id: PageId) -> None:
        self._pages.pop(page_id, None)

    def contains(self, page_id: PageId) -> bool:
        return page_id in self._pages

    def page_count(self) -> int:
        return len(self._pages)


class DurableBackend(StorageBackend):
    """Append-only segment file + WAL + atomic snapshot in one directory."""

    persistent = True

    def __init__(
        self,
        path: str | os.PathLike,
        wal_fsync_batch: int = 0,
        ops: Optional[FileOps] = None,
        compact_every: int = 1,
        compact_min_garbage_ratio: float = 0.5,
        background_compaction: bool = False,
        compact_wal_bytes: int = 0,
    ) -> None:
        self.path = os.fspath(path)
        self.wal_fsync_batch = max(int(wal_fsync_batch), 0)
        self.ops = ops if ops is not None else FileOps()
        self.compactor = Compactor(
            compact_every=compact_every, min_garbage_ratio=compact_min_garbage_ratio
        )
        self.compact_wal_bytes = max(int(compact_wal_bytes), 0)
        self._bg_enabled = bool(background_compaction)
        #: Serialises prepare (worker) against adoption (checkpoint): a
        #: checkpoint that finds the lock busy simply skips adoption.
        self._compaction_lock = threading.Lock()
        #: Guards page-directory mutation so the worker can snapshot it.
        self._dir_lock = threading.Lock()
        self._prepared: Optional[_PreparedCompaction] = None
        self._pending_adoption: Optional[tuple[Optional[str], int]] = None
        self._checkpoint_active = False
        self._compactions_prepared = 0
        self._compaction_refreshes = 0
        self._wal_bytes_at_prepare = 0
        self._compaction_wake = threading.Event()
        self._compaction_stop = False
        self._compaction_thread: Optional[threading.Thread] = None
        self.compaction_error: Optional[BaseException] = None
        os.makedirs(self.path, exist_ok=True)
        self._snapshot_path = os.path.join(self.path, SNAPSHOT_FILE)
        #: page id -> (offset, frame length) of the latest image.
        self._directory: dict[PageId, SegmentEntry] = {}
        self._pages_flushed = 0
        self.snapshot_meta: Optional[dict[str, Any]] = None

        epoch = 0
        segment_epoch = 0
        if os.path.exists(self._snapshot_path):
            with open(self._snapshot_path, "rb") as fh:
                self.snapshot_meta = load_record(read_frame_at(fh, 0))
            epoch = self.snapshot_meta["epoch"]
            # Pre-compaction snapshots carry no segment epoch: their
            # directory refers to the original segments.dat.
            segment_epoch = self.snapshot_meta.get("segment_epoch", 0)

        self._segment_epoch = segment_epoch
        self._segment_path = os.path.join(self.path, segment_file_name(segment_epoch))
        if os.path.exists(self._segment_path):
            self._segments = self.ops.open(self._segment_path, "r+b")
            magic = self._segments.read(len(SEGMENT_MAGIC))
            if magic != SEGMENT_MAGIC:
                raise StorageError(f"{self._segment_path} is not a minidb segment file")
            self._segments.seek(0, os.SEEK_END)
            self._segment_end = self._segments.tell()
        elif self.snapshot_meta is not None and self.snapshot_meta["directory"]:
            raise StorageError(
                f"snapshot references missing segment file {self._segment_path}"
            )
        else:
            self._segments = self.ops.open(self._segment_path, "w+b")
            self._segments.write(SEGMENT_MAGIC)
            self._segments.flush()
            self._segment_end = len(SEGMENT_MAGIC)

        self._live_bytes = 0
        if self.snapshot_meta is not None:
            # Offsets are snapshot-scoped: images appended after the last
            # checkpoint are unreachable garbage (their logical content is
            # re-created by WAL replay), so the directory comes from the
            # snapshot alone.
            for (file_id, page_no), entry in self.snapshot_meta["directory"].items():
                if isinstance(entry, int):
                    # Pre-compaction snapshot: a bare offset.  Re-read the
                    # frame (recovery-time only) to recover its length —
                    # CRC-verified, so damage surfaces here, not later.
                    payload = read_frame_at(self._segments, entry)
                    entry = (entry, FRAME_HEADER_SIZE + len(payload))
                else:
                    entry = tuple(entry)
                self._directory[PageId(file_id, page_no)] = entry
                self._live_bytes += entry[1]

        self._fence_stale_segments()
        self.wal = WriteAheadLog(
            os.path.join(self.path, WAL_FILE),
            fsync_batch=self.wal_fsync_batch,
            ops=self.ops,
        )
        self._snapshot_epoch = epoch
        if self._bg_enabled:
            self._start_compaction_worker()

    def _fence_stale_segments(self) -> None:
        """Delete segment files from other epochs.

        Two crash windows leave them behind: a compaction that died
        before its snapshot rename (the new, unpublished file is stale)
        and one that died after the rename but before the unlink (the
        old file is stale).  Either way only the snapshot's own segment
        epoch is authoritative; removal is idempotent, so a crash during
        the fence itself just repeats it on the next open.  A snapshot
        temp file torn by a crash before its rename is swept up too.
        """
        snapshot_tmp = self._snapshot_path + ".tmp"
        if os.path.exists(snapshot_tmp):
            self.ops.remove(snapshot_tmp)
        for name in sorted(os.listdir(self.path)):
            match = _SEGMENT_NAME.match(name)
            if match is None:
                continue
            file_epoch = int(match.group(1) or 0)
            if file_epoch != self._segment_epoch:
                self.ops.remove(os.path.join(self.path, name))

    # -- page transfer ----------------------------------------------------
    def load_page(self, page_id: PageId) -> Page:
        entry = self._directory.get(page_id)
        if entry is None:
            raise BufferPoolError(f"{page_id} does not exist")
        page = Page.from_image(load_record(read_frame_at(self._segments, entry[0])))
        return page

    def store_page(self, page: Page) -> None:
        # A clean evicted page whose image is already on disk needs no new
        # segment record; anything else gets appended.
        if page.dirty or page.page_id not in self._directory:
            self._append_image(page)

    def write_back(self, page: Page) -> None:
        self._append_image(page)

    def _append_image(self, page: Page) -> None:
        payload = dump_record(page.image())
        self._segments.seek(0, os.SEEK_END)
        offset = write_frame(self._segments, payload)
        self._segments.flush()
        frame_len = FRAME_HEADER_SIZE + len(payload)
        with self._dir_lock:
            superseded = self._directory.get(page.page_id)
            if superseded is not None:
                self._live_bytes -= superseded[1]
            self._directory[page.page_id] = (offset, frame_len)
            self._live_bytes += frame_len
        self._segment_end = offset + frame_len
        self._pages_flushed += 1
        self._poke_compaction_worker()

    def remove_page(self, page_id: PageId) -> None:
        with self._dir_lock:
            entry = self._directory.pop(page_id, None)
            if entry is not None:
                self._live_bytes -= entry[1]

    def contains(self, page_id: PageId) -> bool:
        return page_id in self._directory

    def page_count(self) -> int:
        return len(self._directory)

    # -- durability --------------------------------------------------------
    @property
    def wal_bytes_written(self) -> int:
        return self.wal.bytes_written

    @property
    def wal_fsyncs(self) -> int:
        return self.wal.syncs_performed

    @property
    def pages_flushed(self) -> int:
        return self._pages_flushed

    @property
    def segment_bytes_total(self) -> int:
        return self._segment_end - len(SEGMENT_MAGIC)

    @property
    def segment_bytes_live(self) -> int:
        return self._live_bytes

    @property
    def segment_bytes_dead(self) -> int:
        return self.segment_bytes_total - self._live_bytes

    @property
    def compactions_run(self) -> int:
        return self.compactor.compactions_run

    @property
    def compactions_prepared(self) -> int:
        return self._compactions_prepared

    @property
    def compactions_refreshed(self) -> int:
        return self._compaction_refreshes

    @property
    def bytes_reclaimed(self) -> int:
        return self.compactor.bytes_reclaimed

    @property
    def segment_epoch(self) -> int:
        return self._segment_epoch

    @property
    def epoch(self) -> int:
        return self._snapshot_epoch

    def log(self, record: tuple) -> None:
        self.wal.append(record)
        self._poke_compaction_worker()

    def sync_wal(self) -> None:
        """Fsync the WAL tail so everything logged so far survives a crash."""
        self.wal.sync()

    def replay_wal(
        self, discard: bool = False, upto_cut: Optional[int] = None
    ) -> list[tuple]:
        """Records appended since the last checkpoint (torn tail removed).

        ``discard=True`` resets the log instead: used when a coordinator
        (e.g. the crawl checkpoint manager) wants the database exactly as
        of the snapshot, with post-checkpoint writes dropped.
        ``upto_cut`` replays only through the last cut marker ``<= upto_cut``
        (see :meth:`WriteAheadLog.replay`), truncating newer records.
        """
        if discard:
            self.wal.reset(self._snapshot_epoch)
            return []
        return self.wal.replay(expected_epoch=self._snapshot_epoch, upto_cut=upto_cut)

    # -- background compaction ---------------------------------------------
    def _start_compaction_worker(self) -> None:
        if self._compaction_thread is not None:
            return
        thread = threading.Thread(
            target=self._compaction_loop, name="minidb-compaction", daemon=True
        )
        self._compaction_thread = thread
        thread.start()

    def configure_background_compaction(
        self, enabled: bool, compact_wal_bytes: int = 0
    ) -> None:
        """(Re-)apply the background-compaction policy after an open.

        Used by crawl resume, which learns the storage policy from the
        checkpoint *after* the database was already opened with defaults.
        """
        self._bg_enabled = bool(enabled)
        self.compact_wal_bytes = max(int(compact_wal_bytes), 0)
        if self._bg_enabled:
            self._start_compaction_worker()

    @property
    def background_compaction(self) -> bool:
        return self._bg_enabled

    def _compaction_loop(self) -> None:
        while True:
            self._compaction_wake.wait()
            self._compaction_wake.clear()
            if self._compaction_stop:
                return
            try:
                if not self.run_compaction_once():
                    self.refresh_prepared_compaction()
            except BaseException as exc:  # noqa: BLE001 - surfaced via attribute
                # A failed prepare must not kill the worker (the old
                # segment file is untouched; the next trigger retries).
                self.compaction_error = exc

    def _poke_compaction_worker(self) -> None:
        if self._compaction_thread is None:
            return
        if self._background_compaction_due() or self._refresh_due():
            self._compaction_wake.set()

    def _background_compaction_due(self) -> bool:
        """Whether a background rewrite is worth preparing right now.

        Fires on the inline policy's garbage-ratio threshold, or — so a
        checkpoint-poor write-heavy run still gets compacted — once
        ``compact_wal_bytes`` of WAL have accumulated since the last
        prepare.  ``compact_every=0`` disables compaction entirely, as
        it does inline.
        """
        if not self._bg_enabled or not self.compactor.compact_every:
            return False
        if self._prepared is not None or self._checkpoint_active:
            # While a checkpoint is flushing, its appends would otherwise
            # trigger a prepare that competes with the pause for the CPU;
            # the post-checkpoint writes re-poke the worker immediately.
            return False
        dead = self.segment_bytes_dead
        if dead <= 0:
            return False
        total = self.segment_bytes_total
        if total > 0 and dead / total >= self.compactor.min_garbage_ratio:
            return True
        if self.compact_wal_bytes:
            return (
                self.wal.bytes_written - self._wal_bytes_at_prepare
                >= self.compact_wal_bytes
            )
        return False

    def _refresh_due(self) -> bool:
        """Whether the pending prepare has gone stale enough to re-base.

        Uses the same WAL-byte budget as the prepare trigger:
        ``_wal_bytes_at_prepare`` marks the last prepare *or* refresh,
        so every ``compact_wal_bytes`` of new WAL buys one background
        fold and the checkpoint-time fold stays a small residual.
        """
        if self._prepared is None or not self.compact_wal_bytes:
            return False
        if self._checkpoint_active:
            return False
        return (
            self.wal.bytes_written - self._wal_bytes_at_prepare
            >= self.compact_wal_bytes
        )

    def run_compaction_once(self, force: bool = False) -> bool:
        """Prepare one background rewrite synchronously; True if prepared.

        This is the worker thread's unit of work, exposed so tests (and
        the fault-injection crash walk) can drive the exact same code on
        the calling thread, keeping every I/O point deterministic.  The
        rewrite reads a locked snapshot of the page directory through a
        *separate* read handle — appends to the live segment file only
        ever add new offsets, so the snapshot's frames are stable.
        """
        if not self._bg_enabled or not self.compactor.compact_every:
            return False
        with self._compaction_lock:
            if self._prepared is not None:
                return False
            if not force and not self._background_compaction_due():
                return False
            with self._dir_lock:
                base_directory = dict(self._directory)
            base_epoch = self._segment_epoch
            # Strictly newer than both epochs: the target can never open
            # (and "w+b"-truncate) the segment file it is reading from.
            target_epoch = max(self._snapshot_epoch + 1, base_epoch + 1)
            new_path = os.path.join(self.path, segment_file_name(target_epoch))
            self._wal_bytes_at_prepare = self.wal.bytes_written
            source = self.ops.open(self._segment_path, "rb")
            try:
                new_fh, new_directory, end = self.compactor.rewrite(
                    self.ops, source, base_directory, new_path
                )
            finally:
                source.close()
            self._prepared = _PreparedCompaction(
                fh=new_fh,
                path=new_path,
                segment_epoch=target_epoch,
                base_segment_epoch=base_epoch,
                base_directory=base_directory,
                directory=new_directory,
                end=end,
            )
            self._compactions_prepared += 1
            return True

    def refresh_prepared_compaction(self, force: bool = False) -> bool:
        """Fold the accumulated delta into the prepared file off-pause.

        With an eager trigger the worker prepares right after each
        adoption, so by the next checkpoint the prepare snapshot is a
        whole inter-checkpoint interval stale and the adoption fold
        re-copies most of the live directory — nearly as slow as the
        inline rewrite it replaces.  Re-basing the prepared file here,
        on the worker, keeps the checkpoint-time fold proportional to
        the writes of the last ``compact_wal_bytes`` window only.

        Concurrency-safe for the same reasons the prepare is: the
        prepared file is unpublished until the snapshot rename (a crash
        leaves it to be fenced at the next open), the live segment is
        append-only so the snapshot's frames sit at stable offsets and
        are read through a private handle, and frames a later fold
        supersedes are bounded garbage reclaimed by the next rewrite.
        """
        with self._compaction_lock:
            prepared = self._prepared
            if prepared is None or not (force or self._refresh_due()):
                return False
            with self._dir_lock:
                current = dict(self._directory)
            self._wal_bytes_at_prepare = self.wal.bytes_written
            if current == prepared.base_directory:
                # The WAL grew but no page image moved (the logical writes
                # are still buffered): nothing to fold, only the budget
                # marker needed resetting.
                return False
            source = self.ops.open(self._segment_path, "rb")
            try:
                directory, end = self._fold_delta_into(prepared, current, source)
            finally:
                source.close()
            prepared.fh.flush()
            self.ops.fsync(prepared.fh)
            prepared.base_directory = current
            prepared.directory = directory
            prepared.end = end
            self._compaction_refreshes += 1
            return True

    def begin_checkpoint(self) -> None:
        """Adopt any pending background rewrite *before* the dirty-page flush.

        Ordering is the whole point: adopting first re-points the live
        segment at the prepared file while the since-prepare delta is
        still the small mid-interval residual, so the flush that
        follows appends the checkpoint's dirty pages straight into the
        adopted file — none of them pay the fold's read-copy-write.
        Nothing is published here: the snapshot rename in
        :meth:`checkpoint` remains the commit point, and a crash
        anywhere in between recovers from the old snapshot over the old
        (still intact, not yet unlinked) segment file.
        """
        if self._bg_enabled:
            self._checkpoint_active = True
            self._pending_adoption = self._adopt_prepared_compaction()

    def _adopt_prepared_compaction(self) -> tuple[Optional[str], int]:
        """Swap in a prepared rewrite at checkpoint time, folding the delta.

        Returns ``(stale_segment_path, reclaimed_bytes)`` — the same
        contract the inline rewrite hands the checkpoint — or
        ``(None, 0)`` when there is nothing to adopt (no prepare is
        pending, or the worker is mid-prepare; the next checkpoint
        picks it up).  Nothing is published here: the snapshot rename
        that follows in :meth:`checkpoint` remains the commit point, so
        a crash anywhere inside leaves the unpublished new file to be
        fenced at the next open.
        """
        if not self._compaction_lock.acquire(blocking=False):
            return None, 0
        try:
            prepared = self._prepared
            if prepared is None:
                return None, 0
            self._prepared = None
            if prepared.base_segment_epoch != self._segment_epoch:
                # A concurrent adoption already replaced the file this
                # prepare was based on (defensive; cannot happen while
                # adoption itself holds the lock).
                prepared.fh.close()
                try:
                    os.remove(prepared.path)
                except OSError:  # pragma: no cover - cleanup is best-effort
                    pass
                return None, 0
            old_payload = self.segment_bytes_total
            try:
                final_directory, end = self._fold_compaction_delta(prepared)
                prepared.fh.flush()
                self.ops.fsync(prepared.fh)
            except Exception as exc:
                # Mirror Compactor.rewrite's abort semantics: close the
                # handle always; remove the file only on a live-process
                # abort — an injected crash leaves it for the fence.
                prepared.fh.close()
                if isinstance(exc, (StorageError, OSError)):
                    try:
                        os.remove(prepared.path)
                    except OSError:  # pragma: no cover - best-effort
                        pass
                raise
            stale_segment = self._segment_path
            self._segments.close()
            self._segments = prepared.fh
            self._segment_path = prepared.path
            self._segment_epoch = prepared.segment_epoch
            with self._dir_lock:
                self._directory = final_directory
                self._live_bytes = sum(e[1] for e in final_directory.values())
            self._segment_end = end
            reclaimed = max(old_payload - (end - len(SEGMENT_MAGIC)), 0)
            return stale_segment, reclaimed
        finally:
            self._compaction_lock.release()

    def _fold_compaction_delta(
        self, prepared: _PreparedCompaction
    ) -> tuple[Dict[PageId, SegmentEntry], int]:
        """Bring a prepared rewrite up to date with the current directory.

        Pages whose entry changed since the prepare snapshot (rewritten
        or newly created) are re-copied from the live segment file;
        pages that disappeared are dropped.  The caller still holds all
        dirty pages flushed, so the fold covers the full database image.
        """
        return self._fold_delta_into(prepared, dict(self._directory), self._segments)

    def _fold_delta_into(
        self,
        prepared: _PreparedCompaction,
        current: Dict[PageId, SegmentEntry],
        source: BinaryIO,
    ) -> tuple[Dict[PageId, SegmentEntry], int]:
        """Append *current*'s since-prepare delta to the prepared file.

        ``source`` is whichever handle on the live segment file the
        calling thread may safely seek: the backend's own at checkpoint
        time, a private read handle on the worker (the main thread keeps
        appending through — and repositioning — the shared one).
        """
        final_directory = dict(prepared.directory)
        changed = [
            (page_id, entry)
            for page_id, entry in current.items()
            if prepared.base_directory.get(page_id) != entry
        ]
        prepared.fh.seek(0, os.SEEK_END)
        end = prepared.end
        for page_id, entry in sorted(changed, key=lambda item: item[1][0]):
            payload = read_frame_at(source, entry[0])
            offset = write_frame(prepared.fh, payload)
            frame_len = FRAME_HEADER_SIZE + len(payload)
            final_directory[page_id] = (offset, frame_len)
            end = offset + frame_len
        for page_id in prepared.base_directory:
            if page_id not in current:
                final_directory.pop(page_id, None)
        return final_directory, end

    def checkpoint(self, catalog_meta: dict[str, Any]) -> None:
        """Atomically publish a snapshot of the current state, then reset the WAL.

        The caller must have flushed every dirty page first (so the
        directory covers the full database image).  When the compactor
        deems it worthwhile, the live images are first rewritten into a
        new epoch-stamped segment file (fully fsynced before anything is
        published).  Either way the snapshot — which carries the page
        directory *and* the segment epoch it refers to — is written to a
        temp file and renamed over the old one; that rename is the
        single commit point, so directory and segment file can never
        disagree.  The epoch bump ties the snapshot to the freshly reset
        WAL: a crash between rename and reset leaves a WAL with a stale
        epoch, which recovery detects and discards (its records are
        inside the snapshot).  Stale segment files are unlinked last;
        a crash before the unlink leaves them for the next open's fence.
        """
        try:
            self._checkpoint(catalog_meta)
        finally:
            # Re-arm the worker even when the publish failed but the
            # process survives (e.g. ENOSPC): background maintenance
            # must not stay defused.
            self._checkpoint_active = False

    def _checkpoint(self, catalog_meta: dict[str, Any]) -> None:
        self._segments.flush()
        self.ops.fsync(self._segments)
        new_epoch = self._snapshot_epoch + 1
        stale_segment: Optional[str] = None
        reclaimed = 0
        if self._bg_enabled:
            # Background mode: the rewrite already happened off-line and
            # (normally) was adopted by begin_checkpoint before the
            # dirty-page flush; publish its outcome.  A direct caller
            # that skipped begin_checkpoint still adopts here — same
            # result, just with the whole flush in the fold.
            pending, self._pending_adoption = self._pending_adoption, None
            if pending is None:
                pending = self._adopt_prepared_compaction()
            stale_segment, reclaimed = pending
        elif self.compactor.due(self.segment_bytes_live, self.segment_bytes_dead):
            reclaimed = self.segment_bytes_dead
            stale_segment = self._segment_path
            # The segment epoch normally tracks the snapshot epoch, but a
            # checkpoint whose *publish* failed (e.g. ENOSPC — the process
            # keeps running) leaves the segment epoch ahead of it; taking
            # the max keeps the rewrite target strictly newer, so it can
            # never open — and truncate — the current segment file itself.
            new_segment_epoch = max(new_epoch, self._segment_epoch + 1)
            new_path = os.path.join(self.path, segment_file_name(new_segment_epoch))
            new_fh, new_directory, end = self.compactor.rewrite(
                self.ops, self._segments, self._directory, new_path
            )
            self._segments.close()
            self._segments = new_fh
            self._segment_path = new_path
            self._segment_epoch = new_segment_epoch
            self._directory = new_directory
            self._segment_end = end
            self._live_bytes = end - len(SEGMENT_MAGIC)
        meta = dict(catalog_meta)
        meta["epoch"] = new_epoch
        meta["segment_epoch"] = self._segment_epoch
        meta["directory"] = {
            (page_id.file_id, page_id.page_no): entry
            for page_id, entry in self._directory.items()
        }
        tmp_path = self._snapshot_path + ".tmp"
        fh = self.ops.open(tmp_path, "w+b")
        try:
            write_frame(fh, dump_record(meta))
            fh.flush()
            self.ops.fsync(fh)
        finally:
            fh.close()
        self.ops.replace(tmp_path, self._snapshot_path)
        # -- committed: everything below is post-publish bookkeeping ------
        self.snapshot_meta = meta
        self._snapshot_epoch = new_epoch
        self.wal.reset(new_epoch)
        if stale_segment is not None:
            self.compactor.note_committed(reclaimed)
            self.ops.remove(stale_segment)

    def close(self) -> None:
        if self._compaction_thread is not None:
            self._compaction_stop = True
            self._compaction_wake.set()
            self._compaction_thread.join(timeout=10.0)
            self._compaction_thread = None
        if self._prepared is not None:
            # An orderly close discards an unadopted prepare; a crash
            # would instead leave the file for the open-time fence.
            prepared, self._prepared = self._prepared, None
            prepared.fh.close()
            try:
                os.remove(prepared.path)
            except OSError:  # pragma: no cover - cleanup is best-effort
                pass
        self.wal.close()
        if not self._segments.closed:
            self._segments.flush()
            self._segments.close()
