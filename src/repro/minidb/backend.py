"""Pluggable page stores under the buffer pool: in-memory and durable.

The buffer pool caches hot pages and counts transfers; where evicted
pages *go* is the :class:`StorageBackend`'s business.  Two backends are
provided:

* :class:`MemoryBackend` — the original behaviour: evicted pages live in
  a dict, nothing survives the process.  This is the default and keeps
  the seed semantics (and I/O accounting) bit for bit.
* :class:`DurableBackend` — pages are pickled into an append-only
  *segment file*; a page directory maps each page id to its latest
  image offset.  A logical :class:`~repro.minidb.wal.WriteAheadLog`
  records every table mutation, and a checkpoint writes an atomic
  snapshot (catalog metadata + page directory + WAL epoch) so
  :meth:`repro.minidb.database.Database.open` can restore the last
  checkpoint and replay the log over it.

The segment file is never rewritten in place — superseded page images
simply become garbage — so a crash can at worst leave an unreferenced
tail, never a corrupt directory.  Garbage does not accumulate forever,
though: a :class:`~repro.minidb.compactor.Compactor` decides at
checkpoint time whether to rewrite the live images into a fresh
epoch-stamped segment file and atomically swap it in (the snapshot
rename is the commit point; stale segment files are fenced — deleted —
on the next open).  All file mutation goes through a pluggable
:class:`~repro.minidb.wal.FileOps` so crash-recovery tests can inject
faults at every individual I/O point.
"""

from __future__ import annotations

import os
import re
from typing import Any, Optional

from .compactor import Compactor, SegmentEntry
from .errors import BufferPoolError, StorageError
from .pages import Page, PageId
from .wal import (
    FRAME_HEADER_SIZE,
    SEGMENT_MAGIC,
    FileOps,
    WriteAheadLog,
    dump_record,
    load_record,
    read_frame_at,
    write_frame,
)

#: File names inside a durable database directory.
SEGMENT_FILE = "segments.dat"
WAL_FILE = "wal.dat"
SNAPSHOT_FILE = "snapshot.dat"

#: Segment files carry the epoch of the compaction that wrote them;
#: epoch 0 is the database's original (never-compacted) segment file.
_SEGMENT_NAME = re.compile(r"^segments(?:\.(\d+))?\.dat$")


def segment_file_name(segment_epoch: int) -> str:
    """The on-disk name of the segment file written at *segment_epoch*."""
    if segment_epoch == 0:
        return SEGMENT_FILE
    return f"segments.{segment_epoch:06d}.dat"


class StorageBackend:
    """Where pages live when they are not resident in the buffer pool."""

    #: Whether this backend can persist state across processes.
    persistent = False

    # -- page transfer ----------------------------------------------------
    def load_page(self, page_id: PageId) -> Page:
        """Fetch a page image (a physical read); raises if unknown."""
        raise NotImplementedError

    def store_page(self, page: Page) -> None:
        """Take ownership of an evicted page (a physical write if dirty)."""
        raise NotImplementedError

    def write_back(self, page: Page) -> None:
        """Persist a resident page's image without evicting it (flush)."""
        raise NotImplementedError

    def remove_page(self, page_id: PageId) -> None:
        """Forget a page entirely (table drop/truncate)."""
        raise NotImplementedError

    def contains(self, page_id: PageId) -> bool:
        raise NotImplementedError

    def page_count(self) -> int:
        raise NotImplementedError

    # -- durability --------------------------------------------------------
    @property
    def wal_bytes_written(self) -> int:
        return 0

    @property
    def wal_fsyncs(self) -> int:
        return 0

    @property
    def pages_flushed(self) -> int:
        return 0

    @property
    def segment_bytes_total(self) -> int:
        """Current size of the segment file's payload (live + dead images)."""
        return 0

    @property
    def segment_bytes_live(self) -> int:
        """Bytes of the segment file still referenced by the page directory."""
        return 0

    @property
    def segment_bytes_dead(self) -> int:
        """Superseded image bytes a compaction would reclaim."""
        return 0

    @property
    def compactions_run(self) -> int:
        return 0

    @property
    def bytes_reclaimed(self) -> int:
        return 0

    def log(self, record: tuple) -> None:
        """Append one logical mutation record to the WAL (no-op in memory)."""

    def close(self) -> None:
        """Release any file handles."""


class MemoryBackend(StorageBackend):
    """The seed behaviour: an in-memory dict of evicted pages.

    What matters for the experiments is not persistence but the
    *counting* of page transfers between the pool and this "disk".
    """

    persistent = False

    def __init__(self) -> None:
        self._pages: dict[PageId, Page] = {}

    def load_page(self, page_id: PageId) -> Page:
        try:
            page = self._pages.pop(page_id)
        except KeyError:
            raise BufferPoolError(f"{page_id} does not exist") from None
        return page

    def store_page(self, page: Page) -> None:
        self._pages[page.page_id] = page

    def write_back(self, page: Page) -> None:
        # Memory *is* the store: the resident object stays authoritative.
        pass

    def remove_page(self, page_id: PageId) -> None:
        self._pages.pop(page_id, None)

    def contains(self, page_id: PageId) -> bool:
        return page_id in self._pages

    def page_count(self) -> int:
        return len(self._pages)


class DurableBackend(StorageBackend):
    """Append-only segment file + WAL + atomic snapshot in one directory."""

    persistent = True

    def __init__(
        self,
        path: str | os.PathLike,
        wal_fsync_batch: int = 0,
        ops: Optional[FileOps] = None,
        compact_every: int = 1,
        compact_min_garbage_ratio: float = 0.5,
    ) -> None:
        self.path = os.fspath(path)
        self.wal_fsync_batch = max(int(wal_fsync_batch), 0)
        self.ops = ops if ops is not None else FileOps()
        self.compactor = Compactor(
            compact_every=compact_every, min_garbage_ratio=compact_min_garbage_ratio
        )
        os.makedirs(self.path, exist_ok=True)
        self._snapshot_path = os.path.join(self.path, SNAPSHOT_FILE)
        #: page id -> (offset, frame length) of the latest image.
        self._directory: dict[PageId, SegmentEntry] = {}
        self._pages_flushed = 0
        self.snapshot_meta: Optional[dict[str, Any]] = None

        epoch = 0
        segment_epoch = 0
        if os.path.exists(self._snapshot_path):
            with open(self._snapshot_path, "rb") as fh:
                self.snapshot_meta = load_record(read_frame_at(fh, 0))
            epoch = self.snapshot_meta["epoch"]
            # Pre-compaction snapshots carry no segment epoch: their
            # directory refers to the original segments.dat.
            segment_epoch = self.snapshot_meta.get("segment_epoch", 0)

        self._segment_epoch = segment_epoch
        self._segment_path = os.path.join(self.path, segment_file_name(segment_epoch))
        if os.path.exists(self._segment_path):
            self._segments = self.ops.open(self._segment_path, "r+b")
            magic = self._segments.read(len(SEGMENT_MAGIC))
            if magic != SEGMENT_MAGIC:
                raise StorageError(f"{self._segment_path} is not a minidb segment file")
            self._segments.seek(0, os.SEEK_END)
            self._segment_end = self._segments.tell()
        elif self.snapshot_meta is not None and self.snapshot_meta["directory"]:
            raise StorageError(
                f"snapshot references missing segment file {self._segment_path}"
            )
        else:
            self._segments = self.ops.open(self._segment_path, "w+b")
            self._segments.write(SEGMENT_MAGIC)
            self._segments.flush()
            self._segment_end = len(SEGMENT_MAGIC)

        self._live_bytes = 0
        if self.snapshot_meta is not None:
            # Offsets are snapshot-scoped: images appended after the last
            # checkpoint are unreachable garbage (their logical content is
            # re-created by WAL replay), so the directory comes from the
            # snapshot alone.
            for (file_id, page_no), entry in self.snapshot_meta["directory"].items():
                if isinstance(entry, int):
                    # Pre-compaction snapshot: a bare offset.  Re-read the
                    # frame (recovery-time only) to recover its length —
                    # CRC-verified, so damage surfaces here, not later.
                    payload = read_frame_at(self._segments, entry)
                    entry = (entry, FRAME_HEADER_SIZE + len(payload))
                else:
                    entry = tuple(entry)
                self._directory[PageId(file_id, page_no)] = entry
                self._live_bytes += entry[1]

        self._fence_stale_segments()
        self.wal = WriteAheadLog(
            os.path.join(self.path, WAL_FILE),
            fsync_batch=self.wal_fsync_batch,
            ops=self.ops,
        )
        self._snapshot_epoch = epoch

    def _fence_stale_segments(self) -> None:
        """Delete segment files from other epochs.

        Two crash windows leave them behind: a compaction that died
        before its snapshot rename (the new, unpublished file is stale)
        and one that died after the rename but before the unlink (the
        old file is stale).  Either way only the snapshot's own segment
        epoch is authoritative; removal is idempotent, so a crash during
        the fence itself just repeats it on the next open.  A snapshot
        temp file torn by a crash before its rename is swept up too.
        """
        snapshot_tmp = self._snapshot_path + ".tmp"
        if os.path.exists(snapshot_tmp):
            self.ops.remove(snapshot_tmp)
        for name in sorted(os.listdir(self.path)):
            match = _SEGMENT_NAME.match(name)
            if match is None:
                continue
            file_epoch = int(match.group(1) or 0)
            if file_epoch != self._segment_epoch:
                self.ops.remove(os.path.join(self.path, name))

    # -- page transfer ----------------------------------------------------
    def load_page(self, page_id: PageId) -> Page:
        entry = self._directory.get(page_id)
        if entry is None:
            raise BufferPoolError(f"{page_id} does not exist")
        page = Page.from_image(load_record(read_frame_at(self._segments, entry[0])))
        return page

    def store_page(self, page: Page) -> None:
        # A clean evicted page whose image is already on disk needs no new
        # segment record; anything else gets appended.
        if page.dirty or page.page_id not in self._directory:
            self._append_image(page)

    def write_back(self, page: Page) -> None:
        self._append_image(page)

    def _append_image(self, page: Page) -> None:
        payload = dump_record(page.image())
        self._segments.seek(0, os.SEEK_END)
        offset = write_frame(self._segments, payload)
        self._segments.flush()
        frame_len = FRAME_HEADER_SIZE + len(payload)
        superseded = self._directory.get(page.page_id)
        if superseded is not None:
            self._live_bytes -= superseded[1]
        self._directory[page.page_id] = (offset, frame_len)
        self._live_bytes += frame_len
        self._segment_end = offset + frame_len
        self._pages_flushed += 1

    def remove_page(self, page_id: PageId) -> None:
        entry = self._directory.pop(page_id, None)
        if entry is not None:
            self._live_bytes -= entry[1]

    def contains(self, page_id: PageId) -> bool:
        return page_id in self._directory

    def page_count(self) -> int:
        return len(self._directory)

    # -- durability --------------------------------------------------------
    @property
    def wal_bytes_written(self) -> int:
        return self.wal.bytes_written

    @property
    def wal_fsyncs(self) -> int:
        return self.wal.syncs_performed

    @property
    def pages_flushed(self) -> int:
        return self._pages_flushed

    @property
    def segment_bytes_total(self) -> int:
        return self._segment_end - len(SEGMENT_MAGIC)

    @property
    def segment_bytes_live(self) -> int:
        return self._live_bytes

    @property
    def segment_bytes_dead(self) -> int:
        return self.segment_bytes_total - self._live_bytes

    @property
    def compactions_run(self) -> int:
        return self.compactor.compactions_run

    @property
    def bytes_reclaimed(self) -> int:
        return self.compactor.bytes_reclaimed

    @property
    def segment_epoch(self) -> int:
        return self._segment_epoch

    @property
    def epoch(self) -> int:
        return self._snapshot_epoch

    def log(self, record: tuple) -> None:
        self.wal.append(record)

    def sync_wal(self) -> None:
        """Fsync the WAL tail so everything logged so far survives a crash."""
        self.wal.sync()

    def replay_wal(
        self, discard: bool = False, upto_cut: Optional[int] = None
    ) -> list[tuple]:
        """Records appended since the last checkpoint (torn tail removed).

        ``discard=True`` resets the log instead: used when a coordinator
        (e.g. the crawl checkpoint manager) wants the database exactly as
        of the snapshot, with post-checkpoint writes dropped.
        ``upto_cut`` replays only through the last cut marker ``<= upto_cut``
        (see :meth:`WriteAheadLog.replay`), truncating newer records.
        """
        if discard:
            self.wal.reset(self._snapshot_epoch)
            return []
        return self.wal.replay(expected_epoch=self._snapshot_epoch, upto_cut=upto_cut)

    def checkpoint(self, catalog_meta: dict[str, Any]) -> None:
        """Atomically publish a snapshot of the current state, then reset the WAL.

        The caller must have flushed every dirty page first (so the
        directory covers the full database image).  When the compactor
        deems it worthwhile, the live images are first rewritten into a
        new epoch-stamped segment file (fully fsynced before anything is
        published).  Either way the snapshot — which carries the page
        directory *and* the segment epoch it refers to — is written to a
        temp file and renamed over the old one; that rename is the
        single commit point, so directory and segment file can never
        disagree.  The epoch bump ties the snapshot to the freshly reset
        WAL: a crash between rename and reset leaves a WAL with a stale
        epoch, which recovery detects and discards (its records are
        inside the snapshot).  Stale segment files are unlinked last;
        a crash before the unlink leaves them for the next open's fence.
        """
        self._segments.flush()
        self.ops.fsync(self._segments)
        new_epoch = self._snapshot_epoch + 1
        stale_segment: Optional[str] = None
        reclaimed = 0
        if self.compactor.due(self.segment_bytes_live, self.segment_bytes_dead):
            reclaimed = self.segment_bytes_dead
            stale_segment = self._segment_path
            # The segment epoch normally tracks the snapshot epoch, but a
            # checkpoint whose *publish* failed (e.g. ENOSPC — the process
            # keeps running) leaves the segment epoch ahead of it; taking
            # the max keeps the rewrite target strictly newer, so it can
            # never open — and truncate — the current segment file itself.
            new_segment_epoch = max(new_epoch, self._segment_epoch + 1)
            new_path = os.path.join(self.path, segment_file_name(new_segment_epoch))
            new_fh, new_directory, end = self.compactor.rewrite(
                self.ops, self._segments, self._directory, new_path
            )
            self._segments.close()
            self._segments = new_fh
            self._segment_path = new_path
            self._segment_epoch = new_segment_epoch
            self._directory = new_directory
            self._segment_end = end
            self._live_bytes = end - len(SEGMENT_MAGIC)
        meta = dict(catalog_meta)
        meta["epoch"] = new_epoch
        meta["segment_epoch"] = self._segment_epoch
        meta["directory"] = {
            (page_id.file_id, page_id.page_no): entry
            for page_id, entry in self._directory.items()
        }
        tmp_path = self._snapshot_path + ".tmp"
        fh = self.ops.open(tmp_path, "w+b")
        try:
            write_frame(fh, dump_record(meta))
            fh.flush()
            self.ops.fsync(fh)
        finally:
            fh.close()
        self.ops.replace(tmp_path, self._snapshot_path)
        # -- committed: everything below is post-publish bookkeeping ------
        self.snapshot_meta = meta
        self._snapshot_epoch = new_epoch
        self.wal.reset(new_epoch)
        if stale_segment is not None:
            self.compactor.note_committed(reclaimed)
            self.ops.remove(stale_segment)

    def close(self) -> None:
        self.wal.close()
        if not self._segments.closed:
            self._segments.flush()
            self._segments.close()
