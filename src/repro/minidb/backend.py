"""Pluggable page stores under the buffer pool: in-memory and durable.

The buffer pool caches hot pages and counts transfers; where evicted
pages *go* is the :class:`StorageBackend`'s business.  Two backends are
provided:

* :class:`MemoryBackend` — the original behaviour: evicted pages live in
  a dict, nothing survives the process.  This is the default and keeps
  the seed semantics (and I/O accounting) bit for bit.
* :class:`DurableBackend` — pages are pickled into an append-only
  *segment file*; a page directory maps each page id to its latest
  image offset.  A logical :class:`~repro.minidb.wal.WriteAheadLog`
  records every table mutation, and a checkpoint writes an atomic
  snapshot (catalog metadata + page directory + WAL epoch) so
  :meth:`repro.minidb.database.Database.open` can restore the last
  checkpoint and replay the log over it.

The segment file is never rewritten in place — superseded page images
simply become garbage (compaction is a roadmap follow-on) — so a crash
can at worst leave an unreferenced tail, never a corrupt directory.
"""

from __future__ import annotations

import os
from typing import Any, Optional

from .errors import BufferPoolError, StorageError
from .pages import Page, PageId
from .wal import (
    SEGMENT_MAGIC,
    WriteAheadLog,
    dump_record,
    load_record,
    read_frame_at,
    write_frame,
)

#: File names inside a durable database directory.
SEGMENT_FILE = "segments.dat"
WAL_FILE = "wal.dat"
SNAPSHOT_FILE = "snapshot.dat"


class StorageBackend:
    """Where pages live when they are not resident in the buffer pool."""

    #: Whether this backend can persist state across processes.
    persistent = False

    # -- page transfer ----------------------------------------------------
    def load_page(self, page_id: PageId) -> Page:
        """Fetch a page image (a physical read); raises if unknown."""
        raise NotImplementedError

    def store_page(self, page: Page) -> None:
        """Take ownership of an evicted page (a physical write if dirty)."""
        raise NotImplementedError

    def write_back(self, page: Page) -> None:
        """Persist a resident page's image without evicting it (flush)."""
        raise NotImplementedError

    def remove_page(self, page_id: PageId) -> None:
        """Forget a page entirely (table drop/truncate)."""
        raise NotImplementedError

    def contains(self, page_id: PageId) -> bool:
        raise NotImplementedError

    def page_count(self) -> int:
        raise NotImplementedError

    # -- durability --------------------------------------------------------
    @property
    def wal_bytes_written(self) -> int:
        return 0

    @property
    def wal_fsyncs(self) -> int:
        return 0

    @property
    def pages_flushed(self) -> int:
        return 0

    def log(self, record: tuple) -> None:
        """Append one logical mutation record to the WAL (no-op in memory)."""

    def close(self) -> None:
        """Release any file handles."""


class MemoryBackend(StorageBackend):
    """The seed behaviour: an in-memory dict of evicted pages.

    What matters for the experiments is not persistence but the
    *counting* of page transfers between the pool and this "disk".
    """

    persistent = False

    def __init__(self) -> None:
        self._pages: dict[PageId, Page] = {}

    def load_page(self, page_id: PageId) -> Page:
        try:
            page = self._pages.pop(page_id)
        except KeyError:
            raise BufferPoolError(f"{page_id} does not exist") from None
        return page

    def store_page(self, page: Page) -> None:
        self._pages[page.page_id] = page

    def write_back(self, page: Page) -> None:
        # Memory *is* the store: the resident object stays authoritative.
        pass

    def remove_page(self, page_id: PageId) -> None:
        self._pages.pop(page_id, None)

    def contains(self, page_id: PageId) -> bool:
        return page_id in self._pages

    def page_count(self) -> int:
        return len(self._pages)


class DurableBackend(StorageBackend):
    """Append-only segment file + WAL + atomic snapshot in one directory."""

    persistent = True

    def __init__(self, path: str | os.PathLike, wal_fsync_batch: int = 0) -> None:
        self.path = os.fspath(path)
        self.wal_fsync_batch = max(int(wal_fsync_batch), 0)
        os.makedirs(self.path, exist_ok=True)
        self._segment_path = os.path.join(self.path, SEGMENT_FILE)
        self._snapshot_path = os.path.join(self.path, SNAPSHOT_FILE)
        #: page id -> byte offset of the latest image in the segment file.
        self._directory: dict[PageId, int] = {}
        self._pages_flushed = 0
        self.snapshot_meta: Optional[dict[str, Any]] = None

        if os.path.exists(self._segment_path):
            self._segments = open(self._segment_path, "r+b")
            magic = self._segments.read(len(SEGMENT_MAGIC))
            if magic != SEGMENT_MAGIC:
                raise StorageError(f"{self._segment_path} is not a minidb segment file")
        else:
            self._segments = open(self._segment_path, "w+b")
            self._segments.write(SEGMENT_MAGIC)
            self._segments.flush()

        epoch = 0
        if os.path.exists(self._snapshot_path):
            with open(self._snapshot_path, "rb") as fh:
                self.snapshot_meta = load_record(read_frame_at(fh, 0))
            epoch = self.snapshot_meta["epoch"]
            # Offsets are snapshot-scoped: images appended after the last
            # checkpoint are unreachable garbage (their logical content is
            # re-created by WAL replay), so the directory comes from the
            # snapshot alone.
            self._directory = {
                PageId(file_id, page_no): offset
                for (file_id, page_no), offset in self.snapshot_meta["directory"].items()
            }
        self.wal = WriteAheadLog(
            os.path.join(self.path, WAL_FILE), fsync_batch=self.wal_fsync_batch
        )
        self._snapshot_epoch = epoch

    # -- page transfer ----------------------------------------------------
    def load_page(self, page_id: PageId) -> Page:
        offset = self._directory.get(page_id)
        if offset is None:
            raise BufferPoolError(f"{page_id} does not exist")
        page = Page.from_image(load_record(read_frame_at(self._segments, offset)))
        return page

    def store_page(self, page: Page) -> None:
        # A clean evicted page whose image is already on disk needs no new
        # segment record; anything else gets appended.
        if page.dirty or page.page_id not in self._directory:
            self._append_image(page)

    def write_back(self, page: Page) -> None:
        self._append_image(page)

    def _append_image(self, page: Page) -> None:
        self._segments.seek(0, os.SEEK_END)
        offset = write_frame(self._segments, dump_record(page.image()))
        self._segments.flush()
        self._directory[page.page_id] = offset
        self._pages_flushed += 1

    def remove_page(self, page_id: PageId) -> None:
        self._directory.pop(page_id, None)

    def contains(self, page_id: PageId) -> bool:
        return page_id in self._directory

    def page_count(self) -> int:
        return len(self._directory)

    # -- durability --------------------------------------------------------
    @property
    def wal_bytes_written(self) -> int:
        return self.wal.bytes_written

    @property
    def wal_fsyncs(self) -> int:
        return self.wal.syncs_performed

    @property
    def pages_flushed(self) -> int:
        return self._pages_flushed

    @property
    def epoch(self) -> int:
        return self._snapshot_epoch

    def log(self, record: tuple) -> None:
        self.wal.append(record)

    def replay_wal(self, discard: bool = False) -> list[tuple]:
        """Records appended since the last checkpoint (torn tail removed).

        ``discard=True`` resets the log instead: used when a coordinator
        (e.g. the crawl checkpoint manager) wants the database exactly as
        of the snapshot, with post-checkpoint writes dropped.
        """
        if discard:
            self.wal.reset(self._snapshot_epoch)
            return []
        return self.wal.replay(expected_epoch=self._snapshot_epoch)

    def checkpoint(self, catalog_meta: dict[str, Any]) -> None:
        """Atomically publish a snapshot of the current state, then reset the WAL.

        The caller must have flushed every dirty page first (so the
        directory covers the full database image).  The snapshot is
        written to a temp file and renamed over the old one; the epoch
        bump ties it to the freshly reset WAL.  A crash between rename
        and reset leaves a WAL with a stale epoch, which recovery
        detects and discards (its records are inside the snapshot).
        """
        self._segments.flush()
        os.fsync(self._segments.fileno())
        new_epoch = self._snapshot_epoch + 1
        meta = dict(catalog_meta)
        meta["epoch"] = new_epoch
        meta["directory"] = {
            (page_id.file_id, page_id.page_no): offset
            for page_id, offset in self._directory.items()
        }
        tmp_path = self._snapshot_path + ".tmp"
        with open(tmp_path, "wb") as fh:
            write_frame(fh, dump_record(meta))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, self._snapshot_path)
        self.snapshot_meta = meta
        self._snapshot_epoch = new_epoch
        self.wal.reset(new_epoch)

    def close(self) -> None:
        self.wal.close()
        if not self._segments.closed:
            self._segments.flush()
            self._segments.close()
