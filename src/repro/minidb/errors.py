"""Exception hierarchy for the minidb relational engine.

All engine errors derive from :class:`MiniDBError` so callers can catch a
single base class.  More specific subclasses are raised where a caller can
reasonably act on the distinction (e.g. a missing table vs. a constraint
violation).
"""

from __future__ import annotations


class MiniDBError(Exception):
    """Base class for every error raised by :mod:`repro.minidb`."""


class CatalogError(MiniDBError):
    """A table, index, or trigger name could not be resolved or already exists."""


class SchemaError(MiniDBError):
    """A row or column does not conform to a table schema."""


class ConstraintError(MiniDBError):
    """A primary-key or not-null constraint was violated."""


class QueryError(MiniDBError):
    """A query refers to unknown columns or is otherwise malformed."""


class SQLSyntaxError(QueryError):
    """The SQL text could not be parsed."""


class StorageError(MiniDBError):
    """A page or record identifier is invalid."""


class BufferPoolError(StorageError):
    """The buffer pool was asked to do something impossible (e.g. evict a pinned page)."""
