"""Statement-level triggers.

The paper (§3.1) uses database triggers to "recompute relevance and
centrality scores when the neighborhood of a page changed significantly
owing to continued crawling".  minidb supports the same pattern with
statement triggers: a callable fired after INSERT/UPDATE/DELETE
statements on a table, optionally rate-limited so expensive actions
(like re-running the distiller) only fire after a batch of changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from .errors import CatalogError
from .types import Row

#: Trigger callback signature: (event, table_name, rows affected by statement).
TriggerAction = Callable[[str, str, Sequence[Row]], None]

_VALID_EVENTS = ("insert", "update", "delete")


@dataclass
class Trigger:
    """A registered trigger.

    ``events`` restricts which statement kinds fire the trigger.
    ``every_n_rows`` batches invocations: the action fires only once at
    least that many affected rows have accumulated since the last firing
    (the paper's "changed significantly" condition).
    """

    name: str
    table_name: str
    action: TriggerAction
    events: tuple[str, ...] = _VALID_EVENTS
    every_n_rows: int = 1
    enabled: bool = True
    _pending_rows: int = field(default=0, repr=False)
    fire_count: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        for event in self.events:
            if event not in _VALID_EVENTS:
                raise CatalogError(f"trigger {self.name!r}: unknown event {event!r}")
        if self.every_n_rows < 1:
            raise CatalogError(f"trigger {self.name!r}: every_n_rows must be >= 1")

    def notify(self, event: str, table_name: str, rows: Sequence[Row]) -> bool:
        """Record a mutation; fire the action if the batch threshold is met.

        Returns True when the action actually fired.
        """
        if not self.enabled or event not in self.events:
            return False
        self._pending_rows += max(len(rows), 1)
        if self._pending_rows < self.every_n_rows:
            return False
        self._pending_rows = 0
        self.fire_count += 1
        self.action(event, table_name, rows)
        return True


class TriggerRegistry:
    """All triggers of one database, keyed by table name."""

    def __init__(self) -> None:
        self._by_table: dict[str, list[Trigger]] = {}
        self._by_name: dict[str, Trigger] = {}

    def register(self, trigger: Trigger) -> Trigger:
        if trigger.name in self._by_name:
            raise CatalogError(f"trigger {trigger.name!r} already exists")
        self._by_name[trigger.name] = trigger
        self._by_table.setdefault(trigger.table_name, []).append(trigger)
        return trigger

    def drop(self, name: str) -> None:
        trigger = self._by_name.pop(name, None)
        if trigger is None:
            raise CatalogError(f"no trigger named {name!r}")
        self._by_table[trigger.table_name].remove(trigger)

    def get(self, name: str) -> Trigger:
        try:
            return self._by_name[name]
        except KeyError:
            raise CatalogError(f"no trigger named {name!r}") from None

    def for_table(self, table_name: str) -> list[Trigger]:
        return list(self._by_table.get(table_name, ()))

    def notify(self, event: str, table_name: str, rows: Sequence[Row]) -> int:
        """Dispatch a mutation to every trigger on *table_name*; return #fired."""
        fired = 0
        for trigger in self._by_table.get(table_name, ()):
            if trigger.notify(event, table_name, rows):
                fired += 1
        return fired

    def names(self) -> list[str]:
        return sorted(self._by_name)
