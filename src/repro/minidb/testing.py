"""Deterministic fault injection for the durable storage layer.

The durable backend's crash-safety claims used to be backed by a
handful of hand-written corruption tests — truncate this file here,
flip that byte there.  Compaction multiplies the number of interesting
crash windows (a half-written new segment, a published snapshot with
the stale file still on disk, a torn WAL reset...), and hand-picked
cases are exactly what misses them.

This module turns "crash at an arbitrary kill point" into an
enumerable, seedable property: a :class:`FaultInjector` implements the
:class:`~repro.minidb.wal.FileOps` seam that every mutating file
operation of :class:`~repro.minidb.backend.DurableBackend` and
:class:`~repro.minidb.wal.WriteAheadLog` goes through, assigns each
write / truncate / fsync / rename / remove a global **I/O index**, and
raises :class:`SimulatedCrash` when the index configured in
``crash_at`` is reached.  A test can therefore run a workload once to
*count* the I/O points of (say) a compacting checkpoint, then replay it
once per index, crashing at every single one and asserting the
recovery invariants each time.

The crash model is a process kill with the operating system surviving:

* files are opened unbuffered, so everything handed to the OS before
  the crash point persists — there is no user-space buffer whose loss
  the model would have to emulate;
* a crashed ``write`` tears: a prefix of the data reaches the file
  (half, by default — torn frames are the interesting recovery input),
  the rest never happens;
* after the crash every further mutating operation raises again — a
  dead process does not keep writing — so test code must release file
  handles with :func:`hard_close` instead of a normal ``close()``.

Byte-level corruption (CRC damage rather than crashes) goes through
:func:`flip_byte` / :func:`truncate_tail`, replacing the ad-hoc
file-poking the corruption tests used to hand-roll.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import BinaryIO, List, Optional

from .wal import FileOps


class SimulatedCrash(Exception):
    """The process model died at an injected I/O point."""


@dataclass(frozen=True)
class IOEvent:
    """One counted (crashable) file operation."""

    index: int
    kind: str  # "write" | "truncate" | "fsync" | "replace" | "remove"
    path: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"#{self.index} {self.kind} {os.path.basename(self.path)}"


class FaultyFile:
    """A file handle whose mutations are routed through the injector."""

    def __init__(self, raw: BinaryIO, path: str, injector: "FaultInjector") -> None:
        self.raw = raw
        self.path = path
        self._injector = injector

    # -- counted mutations -------------------------------------------------
    def write(self, data: bytes) -> int:
        self._injector.hit("write", self.path, fh=self.raw, data=data)
        return self.raw.write(data)

    def truncate(self, size: Optional[int] = None) -> int:
        self._injector.hit("truncate", self.path)
        if size is None:
            return self.raw.truncate()
        return self.raw.truncate(size)

    # -- uncounted pass-throughs (reads and bookkeeping) -------------------
    def read(self, *args) -> bytes:
        return self.raw.read(*args)

    def seek(self, *args) -> int:
        return self.raw.seek(*args)

    def tell(self) -> int:
        return self.raw.tell()

    def flush(self) -> None:
        self.raw.flush()

    def fileno(self) -> int:
        return self.raw.fileno()

    def close(self) -> None:
        self.raw.close()

    @property
    def closed(self) -> bool:
        return self.raw.closed


class FaultInjector(FileOps):
    """A :class:`FileOps` that counts I/O points and crashes at one of them.

    ``crash_at`` is consulted live at every counted operation, so tests
    can arm it mid-workload (``injector.crash_at = injector.op_count + 3``)
    to target, e.g., the third I/O of the next checkpoint.  ``events``
    records every counted operation for enumeration and debugging.
    """

    def __init__(self, crash_at: Optional[int] = None, partial_writes: bool = True) -> None:
        #: Global I/O index to crash at (None = never).
        self.crash_at = crash_at
        #: Whether a crashed write tears (writes a prefix) or vanishes.
        self.partial_writes = partial_writes
        self.events: List[IOEvent] = []
        self.crashed = False

    @property
    def op_count(self) -> int:
        return len(self.events)

    def hit(
        self,
        kind: str,
        path: str,
        fh: Optional[BinaryIO] = None,
        data: Optional[bytes] = None,
    ) -> None:
        """Count one I/O point; crash if it is the armed one."""
        if self.crashed:
            raise SimulatedCrash("the process already crashed; no further I/O happens")
        event = IOEvent(index=len(self.events), kind=kind, path=os.fspath(path))
        self.events.append(event)
        if self.crash_at is not None and event.index == self.crash_at:
            self.crashed = True
            if kind == "write" and self.partial_writes and fh is not None and data and len(data) > 1:
                fh.write(data[: len(data) // 2])
                fh.flush()
            raise SimulatedCrash(f"injected crash at I/O point {event}")

    # -- FileOps interface -------------------------------------------------
    def open(self, path: str | os.PathLike, mode: str) -> FaultyFile:
        return FaultyFile(open(path, mode, buffering=0), os.fspath(path), self)

    def fsync(self, fh: BinaryIO) -> None:
        self.hit("fsync", getattr(fh, "path", "<anonymous>"))
        raw = getattr(fh, "raw", fh)
        raw.flush()
        os.fsync(raw.fileno())

    def replace(self, src: str | os.PathLike, dst: str | os.PathLike) -> None:
        self.hit("replace", os.fspath(dst))
        os.replace(src, dst)

    def remove(self, path: str | os.PathLike) -> None:
        self.hit("remove", os.fspath(path))
        os.remove(path)


def hard_close(database) -> None:
    """Release a crashed database's file handles without any further I/O.

    A killed process performs no orderly shutdown; ``Database.close()``
    would flush (and, with pending group-commit records, fsync) — I/O
    the dead process never did, which the injector rightly refuses.
    This closes the raw descriptors only, leaving the on-disk state
    exactly as the crash left it.
    """
    backend = database.backend
    for handle in (
        getattr(backend, "_segments", None),
        getattr(getattr(backend, "wal", None), "_fh", None),
    ):
        if handle is None:
            continue
        raw = getattr(handle, "raw", handle)
        if not raw.closed:
            raw.close()


def truncate_tail(path: str | os.PathLike, nbytes: int) -> None:
    """Chop *nbytes* off the end of a file — the torn tail a crash leaves."""
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:
        fh.truncate(max(size - nbytes, 0))


def flip_byte(path: str | os.PathLike, offset: int, mask: int = 0xFF) -> None:
    """XOR the byte at *offset* with *mask* — CRC-detectable corruption."""
    with open(path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        if not byte:
            raise ValueError(f"offset {offset} is past the end of {os.fspath(path)}")
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ mask]))
