"""An LRU buffer pool with I/O accounting.

The paper's key systems argument is that writing the classifier and the
distiller as set-oriented database programs turns a random-I/O-bound
workload into a sequential, sort-merge-friendly one (Figure 8).  To make
that argument measurable without a real disk, minidb routes every page
access through this buffer pool and counts *logical reads*, *physical
reads* (misses), *physical writes*, and hits.  A simulated per-page I/O
cost lets experiments report stable "relative time" numbers that do not
depend on the host machine.

The pool uses page-level LRU caching — the same granularity the paper
blames for the classifier's poor locality ("most storage managers use
page-level caching") — so the SingleProbe vs. BulkProbe contrast shows
up in the miss counts exactly as it does in the paper's running times.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .errors import BufferPoolError
from .pages import Page, PageId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .backend import StorageBackend


@dataclass
class IOStats:
    """Counters for buffer-pool activity.

    ``logical_reads`` counts every page request; ``physical_reads`` counts
    the subset that missed the pool; ``physical_writes`` counts dirty-page
    write-backs (on eviction or flush).
    """

    logical_reads: int = 0
    physical_reads: int = 0
    sequential_reads: int = 0
    physical_writes: int = 0
    evictions: int = 0

    #: Simulated cost charged per physical page transfer, in arbitrary "I/O
    #: units".  A physical read that continues the previous miss within the
    #: same file (a scan) is charged ``sequential_read_cost``; any other
    #: miss pays the full random-seek ``read_cost``.  Logical (cached)
    #: accesses are charged ``cpu_cost``.  The random/sequential asymmetry
    #: is what makes the paper's sort-merge-vs-probe comparison meaningful.
    read_cost: float = 1.0
    sequential_read_cost: float = 0.2
    write_cost: float = 1.0
    cpu_cost: float = 0.01

    def hit_ratio(self) -> float:
        if self.logical_reads == 0:
            return 1.0
        return 1.0 - self.physical_reads / self.logical_reads

    @property
    def random_reads(self) -> int:
        return self.physical_reads - self.sequential_reads

    def simulated_cost(self) -> float:
        """Total simulated I/O cost: the unit used for 'relative time' in Figure 8."""
        return (
            self.random_reads * self.read_cost
            + self.sequential_reads * self.sequential_read_cost
            + self.physical_writes * self.write_cost
            + self.logical_reads * self.cpu_cost
        )

    def snapshot(self) -> dict[str, float]:
        return {
            "logical_reads": self.logical_reads,
            "physical_reads": self.physical_reads,
            "sequential_reads": self.sequential_reads,
            "physical_writes": self.physical_writes,
            "evictions": self.evictions,
            "hit_ratio": self.hit_ratio(),
            "simulated_cost": self.simulated_cost(),
        }

    def reset(self) -> None:
        self.logical_reads = 0
        self.physical_reads = 0
        self.sequential_reads = 0
        self.physical_writes = 0
        self.evictions = 0

    def diff(self, earlier: "IOStats") -> "IOStats":
        """Return a new IOStats holding the counter deltas since *earlier*."""
        return IOStats(
            logical_reads=self.logical_reads - earlier.logical_reads,
            physical_reads=self.physical_reads - earlier.physical_reads,
            sequential_reads=self.sequential_reads - earlier.sequential_reads,
            physical_writes=self.physical_writes - earlier.physical_writes,
            evictions=self.evictions - earlier.evictions,
            read_cost=self.read_cost,
            sequential_read_cost=self.sequential_read_cost,
            write_cost=self.write_cost,
            cpu_cost=self.cpu_cost,
        )

    def copy(self) -> "IOStats":
        return IOStats(
            logical_reads=self.logical_reads,
            physical_reads=self.physical_reads,
            sequential_reads=self.sequential_reads,
            physical_writes=self.physical_writes,
            evictions=self.evictions,
            read_cost=self.read_cost,
            sequential_read_cost=self.sequential_read_cost,
            write_cost=self.write_cost,
            cpu_cost=self.cpu_cost,
        )


@dataclass
class _Frame:
    page: Page
    pinned: int = 0


class BufferPool:
    """A fixed-capacity, LRU-replacement page cache over a storage backend.

    Evicted pages are handed to a pluggable
    :class:`~repro.minidb.backend.StorageBackend` — an in-memory dict by
    default (what matters for the experiments is the *counting* of page
    transfers, not persistence), or a durable segment file.
    """

    def __init__(
        self,
        capacity_pages: int = 256,
        stats: Optional[IOStats] = None,
        backend: Optional["StorageBackend"] = None,
    ) -> None:
        if capacity_pages < 1:
            raise BufferPoolError("buffer pool needs at least one frame")
        if backend is None:
            from .backend import MemoryBackend

            backend = MemoryBackend()
        self.capacity_pages = capacity_pages
        self.stats = stats if stats is not None else IOStats()
        self.backend = backend
        self._frames: OrderedDict[PageId, _Frame] = OrderedDict()
        self._last_miss: Optional[PageId] = None

    # -- page lifecycle --------------------------------------------------
    def create_page(self, page_id: PageId, capacity: int) -> Page:
        """Allocate a brand-new page (not yet on disk) and cache it."""
        if page_id in self._frames or self.backend.contains(page_id):
            raise BufferPoolError(f"{page_id} already exists")
        page = Page(page_id=page_id, capacity=capacity, dirty=True)
        self._admit(page_id, page)
        return page

    def get_page(self, page_id: PageId) -> Page:
        """Fetch a page, counting a logical read and possibly a physical read."""
        self.stats.logical_reads += 1
        frame = self._frames.get(page_id)
        if frame is not None:
            self._frames.move_to_end(page_id)
            return frame.page
        page = self.backend.load_page(page_id)
        self.stats.physical_reads += 1
        if (
            self._last_miss is not None
            and page_id.file_id == self._last_miss.file_id
            and page_id.page_no == self._last_miss.page_no + 1
        ):
            self.stats.sequential_reads += 1
        self._last_miss = page_id
        self._admit(page_id, page)
        return page

    def mark_dirty(self, page_id: PageId) -> None:
        frame = self._frames.get(page_id)
        if frame is None:
            raise BufferPoolError(f"{page_id} is not resident, cannot mark dirty")
        frame.page.dirty = True

    def pin(self, page_id: PageId) -> None:
        frame = self._frames.get(page_id)
        if frame is None:
            raise BufferPoolError(f"{page_id} is not resident, cannot pin")
        frame.pinned += 1

    def unpin(self, page_id: PageId) -> None:
        frame = self._frames.get(page_id)
        if frame is None or frame.pinned == 0:
            raise BufferPoolError(f"{page_id} is not pinned")
        frame.pinned -= 1

    def drop_page(self, page_id: PageId) -> None:
        """Remove a page entirely (table drop); no write-back is charged."""
        self._frames.pop(page_id, None)
        self.backend.remove_page(page_id)

    def flush_all(self) -> None:
        """Write back every dirty resident page without evicting it."""
        for frame in self._frames.values():
            if frame.page.dirty:
                self.stats.physical_writes += 1
                self.backend.write_back(frame.page)
                frame.page.dirty = False

    def resize(self, capacity_pages: int) -> None:
        """Change the pool size, evicting LRU pages if shrinking."""
        if capacity_pages < 1:
            raise BufferPoolError("buffer pool needs at least one frame")
        self.capacity_pages = capacity_pages
        while len(self._frames) > self.capacity_pages:
            self._evict_one()

    def clear_cache(self) -> None:
        """Evict everything (cold-start a measurement run)."""
        while self._frames:
            self._evict_one()

    # -- introspection ---------------------------------------------------
    @property
    def resident_pages(self) -> int:
        return len(self._frames)

    @property
    def disk_pages(self) -> int:
        """Pages held only by the backend (not resident).

        A durable backend keeps its directory entry when a page is loaded
        (the image is the recovery source), so resident pages must be
        subtracted; the memory backend's dict is already exclusive.
        """
        return self.backend.page_count() - self._resident_overlap()

    def total_pages(self) -> int:
        return len(self._frames) + self.backend.page_count() - self._resident_overlap()

    def _resident_overlap(self) -> int:
        return sum(1 for page_id in self._frames if self.backend.contains(page_id))

    def is_resident(self, page_id: PageId) -> bool:
        return page_id in self._frames

    # -- internals ---------------------------------------------------------
    def _admit(self, page_id: PageId, page: Page) -> None:
        while len(self._frames) >= self.capacity_pages:
            self._evict_one()
        self._frames[page_id] = _Frame(page=page)
        self._frames.move_to_end(page_id)

    def _evict_one(self) -> None:
        for page_id, frame in self._frames.items():
            if frame.pinned == 0:
                victim_id, victim = page_id, frame
                break
        else:
            raise BufferPoolError("all frames are pinned; cannot evict")
        del self._frames[victim_id]
        if victim.page.dirty:
            self.stats.physical_writes += 1
        # The backend inspects the dirty flag to decide whether a fresh
        # image must be written, so clear it only after the hand-off.
        self.backend.store_page(victim.page)
        victim.page.dirty = False
        self.stats.evictions += 1
