"""Interval (pre/post-order window) index for graph reachability queries.

The XPath-accelerator scheme: every node of a tree gets a *window*
``(pre, post)`` with ``pre < post``, children windows strictly nested
inside their parent's and disjoint from their siblings'.  Then

* *descendant(x)* is the set of nodes whose ``pre`` falls inside
  ``(x.pre, x.post)`` — one range scan over a pre-sorted list, exactly
  like an :class:`~repro.minidb.index.OrderedIndex` range probe;
* *ancestor(x)* walks left from ``x`` in pre order, skipping every
  non-ancestor *subtree* in a single bisect (the window-shrinking
  optimisation: a node whose window does not contain ``x.pre`` takes
  its whole subtree with it);
* *reachable(x)* on a general graph is the tree-descendant range scan
  plus a fixpoint over the *extra* (non-tree) edges, GRIPP-style.

The index is keyed ``(id_col, parent_col)``: each row contributes the
edge *parent → id*.  The first edge that introduces an id becomes its
tree edge; later in-edges are recorded as extra edges.  A node first
seen as a *parent* (a crawl seed, say) starts as a synthetic root and
is re-parented under its first real in-edge — unless that edge's
source is one of its own descendants (the cycle guard), in which case
the edge stays extra.

Maintenance is deliberately lazy: :meth:`insert` appends to an edge
log in O(1) — the crawl's bulk-insert hot path must not pay numbering
costs — and the first query after a batch folds the pending edges in
insertion order (*incremental renumbering*).  Windows are allocated
from gaps (each new child takes half the space left in its parent's
window) so a batch usually renumbers nothing; when a gap runs dry the
whole tree is renumbered with a large stride.  Python integers are
arbitrary-precision, so strides never overflow.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator, Optional, Sequence

from .errors import StorageError
from .index import Index
from .pages import RecordId
from .types import Schema

#: Stride between consecutive pre/post numbers after a full renumber:
#: every window keeps room for ~half a million in-place descendants.
RENUMBER_STRIDE = 1 << 20

#: Sentinel distinguishing "absent" from a stored None in bucket pops.
_MISSING = object()


class _Node:
    __slots__ = ("id", "parent", "pre", "post", "children", "synthetic")

    def __init__(self, node_id: Any, parent: Optional[Any], synthetic: bool = False):
        self.id = node_id
        self.parent = parent  # tree parent id, or None for a root
        self.pre = 0
        self.post = 0
        self.children: list[Any] = []
        self.synthetic = synthetic  # first seen as a parent only

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Node({self.id!r}, parent={self.parent!r}, window=({self.pre}, {self.post}))"


class IntervalIndex(Index):
    """Pre/post-order window index over an edge table.

    ``key_columns`` must be exactly ``(id_col, parent_col)``.  Exposes
    the standard :class:`Index` maintenance/search API (``search`` is an
    exact-key probe, as for a hash index on the same two columns) plus
    the graph queries: :meth:`window`, :meth:`descendant_ids`,
    :meth:`ancestor_ids`, :meth:`reachable_ids`, :meth:`is_descendant`,
    and the rid-level :meth:`descendant_rids` used by plan operators.
    """

    def __init__(self, name: str, schema: Schema, key_columns: Sequence[str]) -> None:
        if len(key_columns) != 2:
            raise StorageError(
                f"interval index {name!r} needs exactly (id, parent) key columns, "
                f"got {tuple(key_columns)!r}"
            )
        super().__init__(name, schema, key_columns)
        # Exact-key postings, hash-index style: (id, parent) -> rid set.
        self._buckets: dict[tuple, dict[RecordId, None]] = {}
        # Row postings per node id (all rows whose id_col equals the id).
        self._rows_by_id: dict[Any, dict[RecordId, None]] = {}
        self._entries = 0
        # Structural state, rebuilt lazily from the edge log.
        self._nodes: dict[Any, _Node] = {}
        self._roots: list[Any] = []
        self._extra: dict[Any, dict[Any, None]] = {}  # src -> {dst: None}
        self._pres: list[int] = []  # sorted pre numbers
        self._pre_ids: list[Any] = []  # ids parallel to _pres
        self._pending: list[tuple[Any, Any]] = []  # distinct edges not yet folded
        self._pre_dirty = False  # _pres/_pre_ids stale vs. _nodes
        self._rebuild_needed = False  # a delete invalidated the whole tree
        # Instrumentation.
        self.renumbers = 0
        self.range_scans = 0
        self.window_shrink_skips = 0

    # -- maintenance -------------------------------------------------------
    def insert(self, row: Sequence[Any], rid: RecordId) -> None:
        key = self.key_of(row)
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = {rid: None}
            self._pending.append(key)
        elif rid not in bucket:
            bucket[rid] = None
        else:
            return
        self._rows_by_id.setdefault(key[0], {})[rid] = None
        self._entries += 1

    def insert_many(self, pairs: Iterable[tuple[Sequence[Any], RecordId]]) -> None:
        buckets = self._buckets
        rows_by_id = self._rows_by_id
        pending = self._pending
        key_of = self.key_of
        added = 0
        for row, rid in pairs:
            key = key_of(row)
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = {rid: None}
                pending.append(key)
            elif rid not in bucket:
                bucket[rid] = None
            else:
                continue
            rows_by_id.setdefault(key[0], {})[rid] = None
            added += 1
        self._entries += added

    def delete(self, row: Sequence[Any], rid: RecordId) -> None:
        key = self.key_of(row)
        bucket = self._buckets.get(key)
        if bucket is None or bucket.pop(rid, _MISSING) is _MISSING:
            raise StorageError(f"index {self.name!r}: {rid} not found under key {key!r}")
        self._entries -= 1
        self.deletions += 1
        id_bucket = self._rows_by_id.get(key[0])
        if id_bucket is not None:
            id_bucket.pop(rid, None)
            if not id_bucket:
                del self._rows_by_id[key[0]]
        if not bucket:
            # The edge itself is gone: the tree shape may change, so the
            # next query replays the whole (surviving) edge log.
            del self._buckets[key]
            self._rebuild_needed = True

    def clear(self) -> None:
        self._buckets.clear()
        self._rows_by_id.clear()
        self._entries = 0
        self._nodes.clear()
        self._roots.clear()
        self._extra.clear()
        self._pres.clear()
        self._pre_ids.clear()
        self._pending.clear()
        self._pre_dirty = False
        self._rebuild_needed = False
        self.deletions = 0

    # -- exact-key lookups (standard Index API) ----------------------------
    def search(self, key: tuple) -> list[RecordId]:
        self.probe_count += 1
        return list(self._buckets.get(tuple(key), ()))

    def contains(self, key: tuple) -> bool:
        self.probe_count += 1
        return tuple(key) in self._buckets

    @property
    def key_count(self) -> int:
        return len(self._buckets)

    def __len__(self) -> int:
        return self._entries

    # -- structural folding ------------------------------------------------
    def _ensure_numbered(self) -> None:
        """Fold pending edges (or replay everything after a delete)."""
        if self._rebuild_needed:
            self._nodes.clear()
            self._roots.clear()
            self._extra.clear()
            self._pending = list(self._buckets)
            self._rebuild_needed = False
            self._pre_dirty = True
        if self._pending:
            pending, self._pending = self._pending, []
            for child, parent in pending:
                self._add_edge(child, parent)
            self._pre_dirty = True
        if self._pre_dirty:
            nodes = sorted(self._nodes.values(), key=lambda n: n.pre)
            self._pres = [n.pre for n in nodes]
            self._pre_ids = [n.id for n in nodes]
            self._pre_dirty = False

    def _add_edge(self, child: Any, parent: Optional[Any]) -> None:
        if parent is not None and parent == child:
            return  # self-loop: structurally meaningless
        if parent is not None and parent not in self._nodes:
            # A parent seen before any of its own in-edges: a synthetic
            # root (crawl seed, or the taxonomy root's null parent id).
            self._make_node(parent, None, synthetic=True)
        node = self._nodes.get(child)
        if node is None:
            self._make_node(child, parent)
            return
        if parent is None:
            return  # already placed; an explicit root edge adds nothing
        if node.parent is None and node.synthetic and not self._is_descendant_id(parent, child):
            # First real in-edge for a synthetic root: adopt it as the
            # tree edge (unless the source is a descendant — the cycle
            # guard — in which case the edge stays extra below).
            node.synthetic = False
            self._reparent(node, parent)
            return
        self._extra.setdefault(parent, {})[child] = None

    def _make_node(self, node_id: Any, parent: Optional[Any], synthetic: bool = False) -> None:
        node = _Node(node_id, parent, synthetic)
        self._nodes[node_id] = node
        if parent is None:
            self._roots.append(node_id)
            anchor, limit = self._root_gap()
        else:
            parent_node = self._nodes[parent]
            parent_node.children.append(node_id)
            anchor, limit = self._child_gap(parent_node)
        if limit - anchor < 3:
            self._full_renumber()
            return
        self._assign_window(node, anchor, limit)

    def _root_gap(self) -> tuple[int, int]:
        """(anchor, limit) of the free space after the last root subtree."""
        if len(self._roots) > 1:
            last = self._nodes[self._roots[-2]]
            return last.post, last.post + 2 * RENUMBER_STRIDE
        return 0, 2 * RENUMBER_STRIDE

    def _child_gap(self, parent_node: _Node) -> tuple[int, int]:
        """(anchor, limit) of the free space before *parent_node*'s post."""
        if len(parent_node.children) > 1:
            anchor = self._nodes[parent_node.children[-2]].post
        else:
            anchor = parent_node.pre
        return anchor, parent_node.post

    def _assign_window(self, node: _Node, anchor: int, limit: int) -> None:
        """Give *node* half the gap ``(anchor, limit)``, exclusive."""
        avail = limit - anchor - 1
        node.pre = anchor + 1
        node.post = anchor + max(2, avail // 2)

    def _reparent(self, node: _Node, parent: Any) -> None:
        """Move a root subtree under *parent*, renumbering it into a gap."""
        self._roots.remove(node.id)
        node.parent = parent
        parent_node = self._nodes[parent]
        parent_node.children.append(node.id)
        anchor, limit = self._child_gap(parent_node)
        size = self._subtree_size(node)
        if limit - anchor - 1 < 2 * size + 1:
            self._full_renumber()
            return
        step = (limit - anchor - 1) // (2 * size)
        counter = anchor
        stack: list[tuple[_Node, bool]] = [(node, False)]
        while stack:
            current, done = stack.pop()
            if done:
                counter += step
                current.post = counter
                continue
            counter += step
            current.pre = counter
            stack.append((current, True))
            for child_id in reversed(current.children):
                stack.append((self._nodes[child_id], False))

    def _subtree_size(self, node: _Node) -> int:
        size = 0
        stack = [node]
        while stack:
            current = stack.pop()
            size += 1
            for child_id in current.children:
                stack.append(self._nodes[child_id])
        return size

    def _full_renumber(self) -> None:
        """Renumber every window with :data:`RENUMBER_STRIDE` gaps."""
        self.renumbers += 1
        counter = 0
        stack: list[tuple[_Node, bool]] = []
        for root_id in reversed(self._roots):
            stack.append((self._nodes[root_id], False))
        while stack:
            node, done = stack.pop()
            if done:
                counter += RENUMBER_STRIDE
                node.post = counter
                continue
            counter += RENUMBER_STRIDE
            node.pre = counter
            stack.append((node, True))
            for child_id in reversed(node.children):
                stack.append((self._nodes[child_id], False))
        self._pre_dirty = True

    def _is_descendant_id(self, node_id: Any, ancestor_id: Any) -> bool:
        node = self._nodes.get(node_id)
        ancestor = self._nodes.get(ancestor_id)
        if node is None or ancestor is None:
            return False
        return ancestor.pre < node.pre and node.post < ancestor.post

    # -- graph queries -----------------------------------------------------
    def window(self, node_id: Any) -> Optional[tuple[int, int]]:
        """The ``(pre, post)`` window of *node_id*, or None if unknown."""
        self._ensure_numbered()
        node = self._nodes.get(node_id)
        return (node.pre, node.post) if node is not None else None

    def is_descendant(self, node_id: Any, ancestor_id: Any) -> bool:
        """Whether *node_id* sits inside *ancestor_id*'s tree window."""
        self._ensure_numbered()
        return self._is_descendant_id(node_id, ancestor_id)

    def descendant_ids(self, node_id: Any, include_self: bool = False) -> list[Any]:
        """Tree descendants of *node_id* in pre (document) order.

        One range scan over the pre-sorted node list: every id whose
        ``pre`` lies strictly inside the node's window.
        """
        self._ensure_numbered()
        node = self._nodes.get(node_id)
        if node is None:
            return []
        self.range_scans += 1
        lo = bisect.bisect_right(self._pres, node.pre)
        hi = bisect.bisect_left(self._pres, node.post)
        result = self._pre_ids[lo:hi]
        if include_self:
            result = [node_id, *result]
        return result

    def descendant_count(self, node_id: Any, include_self: bool = False) -> int:
        """Subtree size under *node_id* in O(log n) — two bisects, no list.

        Used by the planner as a cardinality estimate before deciding
        whether an index-nested-loop join is worth its random probes.
        """
        self._ensure_numbered()
        node = self._nodes.get(node_id)
        if node is None:
            return 0
        lo = bisect.bisect_right(self._pres, node.pre)
        hi = bisect.bisect_left(self._pres, node.post)
        return hi - lo + (1 if include_self else 0)

    def ancestor_ids(self, node_id: Any) -> list[Any]:
        """Ancestors of *node_id*, nearest first (window-shrinking walk).

        Walks left in pre order; a candidate whose window does not
        contain the node is skipped together with its *entire subtree*
        in one bisect, so the walk touches O(depth + siblings) nodes.
        """
        self._ensure_numbered()
        node = self._nodes.get(node_id)
        if node is None:
            return []
        result = []
        target = node
        i = bisect.bisect_left(self._pres, target.pre) - 1
        while i >= 0:
            candidate = self._nodes[self._pre_ids[i]]
            if candidate.post > target.post:
                result.append(candidate.id)
                target = candidate
                i = bisect.bisect_left(self._pres, target.pre) - 1
            else:
                # Not an ancestor: its whole subtree precedes the target,
                # so shrink the search window past it in one jump.
                self.window_shrink_skips += 1
                i = bisect.bisect_left(self._pres, candidate.pre) - 1
        return result

    def reachable_ids(self, node_id: Any, include_self: bool = True) -> list[Any]:
        """Every id reachable from *node_id* over tree + extra edges.

        The tree part of each expansion is a window range scan; extra
        (non-tree) edges seed further expansions until fixpoint.
        Returns ids in first-discovery order.
        """
        self._ensure_numbered()
        if node_id not in self._nodes:
            return []
        seen: dict[Any, None] = {}
        stack = [node_id]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            block = self.descendant_ids(current, include_self=True)
            fresh = [i for i in block if i not in seen]
            for i in fresh:
                seen[i] = None
            for i in fresh:
                for extra_child in self._extra.get(i, ()):
                    if extra_child not in seen:
                        stack.append(extra_child)
        result = list(seen)
        if not include_self:
            result.remove(node_id)
        return result

    def descendant_rids(self, node_id: Any, include_self: bool = False) -> Iterator[RecordId]:
        """Record ids of rows whose id column is a descendant of *node_id*."""
        for child_id in self.descendant_ids(node_id, include_self=include_self):
            bucket = self._rows_by_id.get(child_id)
            if bucket is not None:
                yield from bucket

    def rids_for_ids(self, ids: Iterable[Any]) -> Iterator[RecordId]:
        """Record ids of rows whose id column is in *ids* (given order)."""
        for node_id in ids:
            bucket = self._rows_by_id.get(node_id)
            if bucket is not None:
                yield from bucket

    def node_count(self) -> int:
        self._ensure_numbered()
        return len(self._nodes)

    def extra_edge_count(self) -> int:
        self._ensure_numbered()
        return sum(len(children) for children in self._extra.values())
