"""Relational operators as composable iterators.

Every operator consumes and produces *row contexts*: dicts mapping
(possibly qualified) column names to values.  Qualified keys use the
table alias (``"CRAWL.oid"``); when a bare name is unambiguous it is
also available through :class:`~repro.minidb.expressions.ColumnRef`'s
fallback resolution.

The operator set covers what the paper's SQL needs:

* table scan / index scan
* filter, project (with computed expressions), distinct, sort, limit
* nested-loop join, hash join, **sort-merge join**, and **left outer join**
  (BulkProbe in Figure 3 is one inner join plus one left outer join)
* group-by aggregation with ``sum``/``count``/``avg``/``min``/``max``

Each operator reports how many rows it produced (``rows_out``) so query
plans can be inspected in tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional, Sequence

from .errors import QueryError
from .expressions import Expression
from .table import Table

RowDict = dict[str, Any]


def _qualify(alias: str, mapping: dict[str, Any]) -> RowDict:
    """Build a row context with both qualified and bare keys for *alias*."""
    out: RowDict = {}
    for name, value in mapping.items():
        out[f"{alias}.{name}"] = value
        out[name] = value
    return out


def _merge(left: RowDict, right: RowDict) -> RowDict:
    """Merge two row contexts.

    Qualified keys never collide across distinct aliases.  For bare keys
    that exist on both sides with different values we drop the bare key,
    forcing queries to qualify the column (mirrors SQL ambiguity rules
    but is forgiving when the values agree, e.g. natural-join columns).
    """
    out = dict(left)
    for key, value in right.items():
        if key in out and "." not in key and out[key] != value:
            del out[key]
            continue
        out[key] = value
    return out


class Operator:
    """Base class: an iterable of row contexts with a produced-row counter."""

    def __init__(self) -> None:
        self.rows_out = 0

    def __iter__(self) -> Iterator[RowDict]:
        for row in self._produce():
            self.rows_out += 1
            yield row

    def _produce(self) -> Iterator[RowDict]:
        raise NotImplementedError

    def to_list(self) -> list[RowDict]:
        return list(iter(self))

    def estimated_rows(self) -> Optional[int]:
        """Cheap cardinality estimate for the planner; None when unknown.

        Access paths answer from index statistics (no I/O); everything
        else returns None and the planner assumes "large".
        """
        return None

    # -- EXPLAIN support ---------------------------------------------------
    def describe(self) -> str:
        """One EXPLAIN line for this node (no children)."""
        return type(self).__name__

    def children(self) -> tuple["Operator", ...]:
        """Child operators, left (outer) first."""
        found = []
        for attr in ("child", "left", "right"):
            node = getattr(self, attr, None)
            if isinstance(node, Operator):
                found.append(node)
        return tuple(found)


def _index_fanout(index: Any) -> int:
    """Average postings per distinct key, rounded up; >= 1 for non-empty."""
    keys = getattr(index, "key_count", 0)
    if not keys:
        return 0
    return -(-len(index) // keys)


def explain_lines(op: Operator, depth: int = 0) -> list[str]:
    """Render an operator tree as indented EXPLAIN lines, root first."""
    lines = ["  " * depth + op.describe()]
    for child in op.children():
        lines.extend(explain_lines(child, depth + 1))
    return lines


class TableScan(Operator):
    """Sequential scan of a table (page-at-a-time I/O through the buffer pool).

    ``columns`` restricts the row contexts to a subset of the schema
    (projection pushdown): rows are still read whole off their heap
    pages, but the per-row dict build — the CPU cost that dominates
    wide scans — only touches the named columns.
    """

    def __init__(
        self,
        table: Table,
        alias: Optional[str] = None,
        columns: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__()
        self.table = table
        self.alias = alias or table.name
        self.columns = tuple(columns) if columns is not None else None
        self._positions = (
            list(zip(self.columns, table.schema.project_positions(self.columns)))
            if self.columns is not None
            else None
        )

    def _produce(self) -> Iterator[RowDict]:
        alias = self.alias
        if self._positions is None:
            schema = self.table.schema
            for row in self.table.rows():
                yield _qualify(alias, schema.row_to_mapping(row))
        else:
            positions = self._positions
            for row in self.table.rows():
                yield _qualify(alias, {name: row[pos] for name, pos in positions})

    def estimated_rows(self) -> Optional[int]:
        return self.table.row_count

    def describe(self) -> str:
        label = f"TableScan({self.alias}"
        if self.columns is not None:
            label += f" cols=[{', '.join(self.columns)}]"
        return label + ")"


class IndexLookup(Operator):
    """Fetch rows matching an equality key through a named index (random I/O)."""

    def __init__(
        self,
        table: Table,
        index_name: str,
        key: Sequence[Any],
        alias: Optional[str] = None,
    ) -> None:
        super().__init__()
        self.table = table
        self.index_name = index_name
        self.key = tuple(key)
        self.alias = alias or table.name

    def _produce(self) -> Iterator[RowDict]:
        schema = self.table.schema
        for row in self.table.lookup(self.index_name, self.key):
            yield _qualify(self.alias, schema.row_to_mapping(row))

    def estimated_rows(self) -> Optional[int]:
        return _index_fanout(self.table._resolve_index(self.index_name))

    def describe(self) -> str:
        return f"IndexLookup({self.alias}.{self.index_name} key={list(self.key)!r})"


class IndexRangeScan(Operator):
    """Fetch rows through an index *range* probe rather than a full scan.

    Three modes, one operator:

    * ``mode="range"`` — a ``low <= key <= high`` sweep over an
      :class:`~repro.minidb.index.OrderedIndex`;
    * ``mode="descendants"`` — the pre/post *window* range scan of an
      :class:`~repro.minidb.intervals.IntervalIndex`: every row whose id
      column lies in the subtree of ``root``;
    * ``mode="reachable"`` — the window scan plus the extra-edge
      fixpoint: every row whose id is graph-reachable from ``root``.

    Matched record ids are dereferenced in heap (page, slot) order, so
    the output is byte-identical to the filter-over-scan plan this
    operator replaces — the planner's bit-transparency guarantee — and
    the heap reads stay as sequential as the selectivity allows.
    """

    def __init__(
        self,
        table: Table,
        index_name: str,
        alias: Optional[str] = None,
        mode: str = "range",
        low: Optional[Sequence[Any]] = None,
        high: Optional[Sequence[Any]] = None,
        include_low: bool = True,
        include_high: bool = True,
        root: Any = None,
        include_root: bool = False,
    ) -> None:
        super().__init__()
        if mode not in ("range", "descendants", "reachable"):
            raise QueryError(f"unknown index range-scan mode {mode!r}")
        self.table = table
        self.index_name = index_name
        self.alias = alias or table.name
        self.mode = mode
        self.low = tuple(low) if low is not None else None
        self.high = tuple(high) if high is not None else None
        self.include_low = include_low
        self.include_high = include_high
        self.root = root
        self.include_root = include_root

    def _rids(self) -> list[Any]:
        index = self.table._resolve_index(self.index_name)
        if self.mode == "range":
            rids = [
                rid
                for _key, rid in index.range_search(
                    self.low, self.high, self.include_low, self.include_high
                )
            ]
        elif self.mode == "descendants":
            rids = list(index.descendant_rids(self.root, include_self=self.include_root))
        else:
            ids = index.reachable_ids(self.root, include_self=self.include_root)
            rids = list(index.rids_for_ids(ids))
        rids.sort(key=lambda rid: (rid.page_id.page_no, rid.slot))
        return rids

    def _produce(self) -> Iterator[RowDict]:
        schema = self.table.schema
        read = self.table.read
        for rid in self._rids():
            yield _qualify(self.alias, schema.row_to_mapping(read(rid)))

    def estimated_rows(self) -> Optional[int]:
        index = self.table._resolve_index(self.index_name)
        if self.mode in ("descendants", "reachable"):
            # Reachability adds extra-edge targets on top of the subtree
            # window; the window count is a cheap, usually-tight floor.
            return index.descendant_count(self.root, include_self=self.include_root)
        return None

    def describe(self) -> str:
        base = f"IndexRangeScan({self.alias}.{self.index_name}"
        if self.mode == "range":
            lo = "(" if not self.include_low else "["
            hi = ")" if not self.include_high else "]"
            return f"{base} {lo}{self.low!r} .. {self.high!r}{hi})"
        return f"{base} {self.mode}-of {self.root!r})"


class IndexKeysLookup(Operator):
    """Fetch rows for a *batch* of equality keys through one index.

    The access path behind literal ``IN (...)`` lists and graph
    predicates whose id set was resolved on another table's interval
    index: one index probe per distinct key instead of a full scan.
    ``None``-bearing keys are skipped (SQL ``IN`` never matches NULL),
    duplicate keys probe once, and the matched record ids are read in
    heap (page, slot) order so the output is byte-identical to the
    filter-over-scan plan this replaces.
    """

    def __init__(
        self,
        table: Table,
        index_name: str,
        keys: Iterable[Sequence[Any]],
        alias: Optional[str] = None,
    ) -> None:
        super().__init__()
        self.table = table
        self.index_name = index_name
        self.keys = []
        seen: set[tuple] = set()
        for key in keys:
            key = tuple(key)
            if key in seen or any(part is None for part in key):
                continue
            seen.add(key)
            self.keys.append(key)
        self.alias = alias or table.name

    def _produce(self) -> Iterator[RowDict]:
        index = self.table._resolve_index(self.index_name)
        rids = [rid for key in self.keys for rid in index.search(key)]
        rids.sort(key=lambda rid: (rid.page_id.page_no, rid.slot))
        schema = self.table.schema
        read = self.table.read
        for rid in rids:
            yield _qualify(self.alias, schema.row_to_mapping(read(rid)))

    def estimated_rows(self) -> Optional[int]:
        fanout = _index_fanout(self.table._resolve_index(self.index_name))
        return len(self.keys) * fanout

    def describe(self) -> str:
        return f"IndexKeysLookup({self.alias}.{self.index_name} nkeys={len(self.keys)})"


class IndexNestedLoopJoin(Operator):
    """Equi-join that probes the inner table's index once per outer row.

    The indexed replacement for :class:`HashJoin` when the join key is
    covered by an index on the inner table: no build side, no hash table
    over the whole inner relation — each outer row costs one index probe
    plus the matching heap reads.  Output order is identical to the
    equivalent ``HashJoin(outer, TableScan(inner))``: hash buckets and
    index postings both preserve heap insertion order, and outer rows
    drive both loops.
    """

    def __init__(
        self,
        left: Operator,
        table: Table,
        index_name: str,
        left_keys: Sequence[Expression],
        alias: Optional[str] = None,
        residual: Optional[Expression] = None,
    ) -> None:
        super().__init__()
        self.left = left
        self.table = table
        self.index_name = index_name
        self.left_keys = list(left_keys)
        self.alias = alias or table.name
        self.residual = residual

    def _produce(self) -> Iterator[RowDict]:
        schema = self.table.schema
        alias = self.alias
        lookup = self.table.lookup
        index_name = self.index_name
        for lctx in self.left:
            key = tuple(k.evaluate(lctx) for k in self.left_keys)
            if any(part is None for part in key):
                # A NULL never equi-joins (HashJoin skips these on both
                # sides; NULL keys do sit in the index, so don't probe).
                continue
            for row in lookup(index_name, key):
                merged = _merge(lctx, _qualify(alias, schema.row_to_mapping(row)))
                if self.residual is None or self.residual.evaluate(merged):
                    yield merged

    def describe(self) -> str:
        return f"IndexNestedLoopJoin({self.alias}.{self.index_name})"

    def children(self) -> tuple[Operator, ...]:
        return (self.left,)


class RowSource(Operator):
    """Adapt a plain iterable of dicts (e.g. a materialised CTE) into an operator."""

    def __init__(self, rows: Iterable[RowDict], alias: Optional[str] = None) -> None:
        super().__init__()
        self._rows = rows
        self.alias = alias

    def _produce(self) -> Iterator[RowDict]:
        for mapping in self._rows:
            if self.alias is None:
                yield dict(mapping)
            else:
                yield _qualify(self.alias, dict(mapping))


class Filter(Operator):
    def __init__(self, child: Operator, predicate: Expression) -> None:
        super().__init__()
        self.child = child
        self.predicate = predicate

    def _produce(self) -> Iterator[RowDict]:
        for ctx in self.child:
            if self.predicate.evaluate(ctx):
                yield ctx

    def describe(self) -> str:
        return f"Filter({self.predicate!r})"


class Project(Operator):
    """Evaluate a list of ``(output_name, expression)`` pairs per row."""

    def __init__(self, child: Operator, outputs: Sequence[tuple[str, Expression]]) -> None:
        super().__init__()
        self.child = child
        self.outputs = list(outputs)

    def _produce(self) -> Iterator[RowDict]:
        for ctx in self.child:
            yield {name: expr.evaluate(ctx) for name, expr in self.outputs}

    def describe(self) -> str:
        return f"Project([{', '.join(name for name, _ in self.outputs)}])"


class Distinct(Operator):
    def __init__(self, child: Operator) -> None:
        super().__init__()
        self.child = child

    def _produce(self) -> Iterator[RowDict]:
        seen: set[tuple] = set()
        for ctx in self.child:
            key = tuple(sorted(ctx.items()))
            if key not in seen:
                seen.add(key)
                yield ctx


class Sort(Operator):
    """Sort on a list of ``(expression, ascending)`` pairs.  NULLs sort last."""

    def __init__(self, child: Operator, keys: Sequence[tuple[Expression, bool]]) -> None:
        super().__init__()
        self.child = child
        self.keys = list(keys)

    def _produce(self) -> Iterator[RowDict]:
        rows = list(self.child)

        def sort_key(ctx: RowDict):
            parts = []
            for expr, ascending in self.keys:
                value = expr.evaluate(ctx)
                null_rank = 1 if value is None else 0
                parts.append((null_rank, value if value is not None else 0, ascending))
            return parts

        # Python's sort is stable, so apply keys from least to most significant.
        for expr, ascending in reversed(self.keys):
            def key_fn(ctx: RowDict, expr=expr):
                value = expr.evaluate(ctx)
                return (value is None, value if value is not None else 0)

            rows.sort(key=key_fn, reverse=not ascending)
        yield from rows


class Limit(Operator):
    def __init__(self, child: Operator, limit: int, offset: int = 0) -> None:
        super().__init__()
        if limit < 0 or offset < 0:
            raise QueryError("LIMIT/OFFSET must be non-negative")
        self.child = child
        self.limit = limit
        self.offset = offset

    def _produce(self) -> Iterator[RowDict]:
        produced = 0
        skipped = 0
        for ctx in self.child:
            if skipped < self.offset:
                skipped += 1
                continue
            if produced >= self.limit:
                break
            produced += 1
            yield ctx

    def estimated_rows(self) -> Optional[int]:
        inner = self.child.estimated_rows()
        if inner is None:
            return self.limit
        return min(self.limit, max(0, inner - self.offset))

    def describe(self) -> str:
        suffix = f" offset={self.offset}" if self.offset else ""
        return f"Limit({self.limit}{suffix})"


# -- joins ------------------------------------------------------------------------


class NestedLoopJoin(Operator):
    """The fallback join: O(n*m) comparisons, arbitrary predicate."""

    def __init__(self, left: Operator, right: Operator, predicate: Optional[Expression]) -> None:
        super().__init__()
        self.left = left
        self.right = right
        self.predicate = predicate

    def _produce(self) -> Iterator[RowDict]:
        right_rows = list(self.right)
        for lctx in self.left:
            for rctx in right_rows:
                merged = _merge(lctx, rctx)
                if self.predicate is None or self.predicate.evaluate(merged):
                    yield merged


class HashJoin(Operator):
    """Equi-join that builds a hash table on the right input."""

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: Sequence[Expression],
        right_keys: Sequence[Expression],
        residual: Optional[Expression] = None,
    ) -> None:
        super().__init__()
        if len(left_keys) != len(right_keys):
            raise QueryError("hash join needs matching key lists")
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.residual = residual

    def _produce(self) -> Iterator[RowDict]:
        buckets: dict[tuple, list[RowDict]] = {}
        for rctx in self.right:
            key = tuple(k.evaluate(rctx) for k in self.right_keys)
            if any(part is None for part in key):
                continue
            buckets.setdefault(key, []).append(rctx)
        for lctx in self.left:
            key = tuple(k.evaluate(lctx) for k in self.left_keys)
            if any(part is None for part in key):
                continue
            for rctx in buckets.get(key, ()):
                merged = _merge(lctx, rctx)
                if self.residual is None or self.residual.evaluate(merged):
                    yield merged

    def describe(self) -> str:
        keys = ", ".join(
            f"{left!r}={right!r}" for left, right in zip(self.left_keys, self.right_keys)
        )
        return f"HashJoin({keys})"


class SortMergeJoin(Operator):
    """Equi-join by sorting both inputs on the join key and merging.

    This is the access path the paper's BulkProbe exploits: both STAT and
    DOCUMENT arrive sorted by term id, so the join is a single
    co-sequential pass instead of one random probe per term occurrence.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: Sequence[Expression],
        right_keys: Sequence[Expression],
        residual: Optional[Expression] = None,
    ) -> None:
        super().__init__()
        if len(left_keys) != len(right_keys):
            raise QueryError("sort-merge join needs matching key lists")
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.residual = residual

    def _produce(self) -> Iterator[RowDict]:
        def keyed(rows: Iterable[RowDict], keys: Sequence[Expression]) -> list[tuple[tuple, RowDict]]:
            out = []
            for ctx in rows:
                key = tuple(k.evaluate(ctx) for k in keys)
                if any(part is None for part in key):
                    continue
                out.append((key, ctx))
            out.sort(key=lambda pair: pair[0])
            return out

        left_sorted = keyed(self.left, self.left_keys)
        right_sorted = keyed(self.right, self.right_keys)
        i = j = 0
        while i < len(left_sorted) and j < len(right_sorted):
            lkey, lctx = left_sorted[i]
            rkey, _ = right_sorted[j]
            if lkey < rkey:
                i += 1
            elif lkey > rkey:
                j += 1
            else:
                # Collect the right-side run with this key.
                run_start = j
                while j < len(right_sorted) and right_sorted[j][0] == lkey:
                    j += 1
                run = right_sorted[run_start:j]
                while i < len(left_sorted) and left_sorted[i][0] == lkey:
                    _, lctx = left_sorted[i]
                    for _, rctx in run:
                        merged = _merge(lctx, rctx)
                        if self.residual is None or self.residual.evaluate(merged):
                            yield merged
                    i += 1


class LeftOuterJoin(Operator):
    """Hash-based left outer join.

    Unmatched left rows are emitted with the right side's columns set to
    NULL; the caller provides the right column names to null-fill (they
    cannot be inferred when the right input is empty).
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: Sequence[Expression],
        right_keys: Sequence[Expression],
        right_columns: Sequence[str],
        residual: Optional[Expression] = None,
    ) -> None:
        super().__init__()
        if len(left_keys) != len(right_keys):
            raise QueryError("left outer join needs matching key lists")
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.right_columns = list(right_columns)
        self.residual = residual

    def _produce(self) -> Iterator[RowDict]:
        buckets: dict[tuple, list[RowDict]] = {}
        for rctx in self.right:
            key = tuple(k.evaluate(rctx) for k in self.right_keys)
            buckets.setdefault(key, []).append(rctx)
        null_fill = {name: None for name in self.right_columns}
        for lctx in self.left:
            key = tuple(k.evaluate(lctx) for k in self.left_keys)
            matches = buckets.get(key, []) if not any(p is None for p in key) else []
            matched = False
            for rctx in matches:
                merged = _merge(lctx, rctx)
                if self.residual is None or self.residual.evaluate(merged):
                    matched = True
                    yield merged
            if not matched:
                yield _merge(lctx, dict(null_fill))


# -- aggregation ----------------------------------------------------------------------


@dataclass
class Aggregate:
    """One aggregate column: ``func`` over ``arg`` producing ``output_name``.

    ``func`` is one of ``count``, ``sum``, ``avg``, ``min``, ``max``.
    ``arg`` may be ``None`` for ``count(*)``.
    """

    func: str
    arg: Optional[Expression]
    output_name: str

    def __post_init__(self) -> None:
        self.func = self.func.lower()
        if self.func not in ("count", "sum", "avg", "min", "max"):
            raise QueryError(f"unknown aggregate {self.func!r}")
        if self.func != "count" and self.arg is None:
            raise QueryError(f"aggregate {self.func!r} needs an argument")


class _AggState:
    """Accumulator for one group."""

    def __init__(self, aggregates: Sequence[Aggregate]) -> None:
        self.aggregates = aggregates
        self.counts = [0] * len(aggregates)
        self.sums = [0.0] * len(aggregates)
        self.mins: list[Any] = [None] * len(aggregates)
        self.maxs: list[Any] = [None] * len(aggregates)

    def update(self, ctx: RowDict) -> None:
        for i, agg in enumerate(self.aggregates):
            if agg.arg is None:
                self.counts[i] += 1
                continue
            value = agg.arg.evaluate(ctx)
            if value is None:
                continue
            self.counts[i] += 1
            if isinstance(value, (int, float)):
                self.sums[i] += value
            if self.mins[i] is None or value < self.mins[i]:
                self.mins[i] = value
            if self.maxs[i] is None or value > self.maxs[i]:
                self.maxs[i] = value

    def finalize(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for i, agg in enumerate(self.aggregates):
            if agg.func == "count":
                out[agg.output_name] = self.counts[i]
            elif agg.func == "sum":
                out[agg.output_name] = self.sums[i] if self.counts[i] else None
            elif agg.func == "avg":
                out[agg.output_name] = (
                    self.sums[i] / self.counts[i] if self.counts[i] else None
                )
            elif agg.func == "min":
                out[agg.output_name] = self.mins[i]
            elif agg.func == "max":
                out[agg.output_name] = self.maxs[i]
        return out


class GroupByAggregate(Operator):
    """Hash aggregation over grouping expressions.

    With an empty ``group_keys`` list this produces a single global row
    (``select sum(score) from HUBS``-style queries in Figure 4).
    """

    def __init__(
        self,
        child: Operator,
        group_keys: Sequence[tuple[str, Expression]],
        aggregates: Sequence[Aggregate],
        having: Optional[Expression] = None,
    ) -> None:
        super().__init__()
        self.child = child
        self.group_keys = list(group_keys)
        self.aggregates = list(aggregates)
        self.having = having

    def _produce(self) -> Iterator[RowDict]:
        groups: dict[tuple, tuple[dict[str, Any], _AggState]] = {}
        saw_rows = False
        for ctx in self.child:
            saw_rows = True
            key_values = {name: expr.evaluate(ctx) for name, expr in self.group_keys}
            key = tuple(key_values.values())
            if key not in groups:
                groups[key] = (key_values, _AggState(self.aggregates))
            groups[key][1].update(ctx)
        if not self.group_keys and not saw_rows:
            # Global aggregate over empty input still yields one row.
            groups[()] = ({}, _AggState(self.aggregates))
        for key_values, state in groups.values():
            out = dict(key_values)
            out.update(state.finalize())
            if self.having is None or self.having.evaluate(out):
                yield out

    def describe(self) -> str:
        keys = ", ".join(name for name, _ in self.group_keys)
        aggs = ", ".join(f"{a.func}->{a.output_name}" for a in self.aggregates)
        return f"GroupByAggregate(keys=[{keys}] aggs=[{aggs}])"


def materialize(op: Operator) -> list[RowDict]:
    """Run an operator tree to completion and return its rows."""
    return op.to_list()
