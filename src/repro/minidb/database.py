"""The Database: a catalog of tables sharing one buffer pool, plus triggers and SQL.

This is the top-level object the Focus system talks to — the stand-in
for the paper's DB2 Universal Database instance.  It owns:

* a :class:`~repro.minidb.buffer_pool.BufferPool` (shared across all
  tables so the Figure 8(b) memory-scaling sweep controls a single knob),
* a pluggable :class:`~repro.minidb.backend.StorageBackend` under the
  pool — in-memory by default, or a durable segment-file/WAL store
  opened with :meth:`Database.open`,
* the table catalog (create/drop/lookup),
* the trigger registry,
* entry points for the fluent :class:`~repro.minidb.query.Query` builder
  and the SQL text interface.

A durable database logs every table mutation (and DDL) to a write-ahead
log; :meth:`checkpoint` flushes all dirty pages and publishes an atomic
snapshot, and :meth:`open` on an existing directory restores the last
snapshot and replays the log over it — reproducing record ids exactly,
because the log is logical and replayed against the identical heap
state it was produced from.  Triggers are runtime objects and are *not*
persisted; re-register them after reopening.
"""

from __future__ import annotations

import warnings
from typing import Any, Iterable, Mapping, Optional, Sequence

from .backend import DurableBackend, MemoryBackend, StorageBackend
from .buffer_pool import BufferPool, IOStats
from .errors import CatalogError, QueryError, StorageError
from .pages import DEFAULT_PAGE_SIZE, PageId, RecordId
from .query import Query
from .storage_config import StorageConfig
from .table import Table
from .triggers import Trigger, TriggerAction, TriggerRegistry
from .types import Schema, schema_from_spec, schema_to_spec
from .wal import WAL_CUT_OP


def _resolve_storage(storage: Optional[StorageConfig], legacy: dict[str, Any]) -> StorageConfig:
    """Fold the deprecated per-knob ``Database.open`` keywords into a config.

    Passing any legacy knob alongside an explicit ``storage`` is an
    error rather than a merge: silently preferring one source would make
    the other a no-op and mask a caller bug.
    """
    given = {name: value for name, value in legacy.items() if value is not None}
    if not given:
        return storage if storage is not None else StorageConfig()
    if storage is not None:
        raise ValueError(
            f"pass storage knobs either via StorageConfig or via legacy keywords, "
            f"not both (got storage= plus {sorted(given)})"
        )
    warnings.warn(
        f"Database.open({', '.join(sorted(given))}=...) is deprecated; "
        "pass storage=StorageConfig(...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return StorageConfig(**given)


class Database:
    """An in-process relational database instance."""

    def __init__(
        self,
        buffer_pool_pages: int = 256,
        page_size: int = DEFAULT_PAGE_SIZE,
        backend: Optional[StorageBackend] = None,
        replay_wal: bool = True,
        replay_upto_cut: Optional[int] = None,
    ) -> None:
        self.stats = IOStats()
        #: The plan built for the most recent top-level SELECT (set by
        #: :func:`repro.minidb.sql.execute_select`); lets callers inspect
        #: which access paths a statement actually took.
        self.last_plan = None
        self._closed = False
        self.backend = backend if backend is not None else MemoryBackend()
        self.buffer_pool = BufferPool(buffer_pool_pages, self.stats, self.backend)
        self.page_size = page_size
        self.triggers = TriggerRegistry()
        self._tables: dict[str, Table] = {}
        self._next_file_id = 0
        self._replaying = False
        if self.backend.persistent:
            self._recover(replay_wal, replay_upto_cut)

    @classmethod
    def open(
        cls,
        path: str,
        buffer_pool_pages: int = 256,
        page_size: int = DEFAULT_PAGE_SIZE,
        replay_wal: bool = True,
        replay_upto_cut: Optional[int] = None,
        storage: Optional[StorageConfig] = None,
        wal_fsync_batch: Optional[int] = None,
        ops=None,
        compact_every: Optional[int] = None,
        compact_min_garbage_ratio: Optional[float] = None,
    ) -> "Database":
        """Open (or create) a durable database at directory *path*.

        Recovery restores the last checkpoint snapshot, rebuilds every
        index with one sequential heap scan per table, and replays the
        write-ahead log over it.  ``replay_wal=False`` pins the state to
        the snapshot instead, discarding post-checkpoint writes — used by
        coordinators (e.g. the crawl checkpoint manager) that must keep
        the database consistent with externally saved state.
        ``replay_upto_cut=n`` replays only through the last
        :meth:`log_cut` marker ``<= n`` and truncates the rest — used by
        the sharded crawl coordinator to rewind every shard database to
        one common round boundary.

        Durability policy — WAL group commit, segment compaction, the
        fault-injection :class:`~repro.minidb.wal.FileOps` seam, and
        optionally the buffer-pool size — comes in as one
        :class:`StorageConfig` via ``storage=``.  The per-knob keywords
        (``wal_fsync_batch``, ``ops``, ``compact_every``,
        ``compact_min_garbage_ratio``) are deprecated pass-throughs with
        unchanged semantics; passing both forms raises.
        """
        config = _resolve_storage(
            storage,
            {
                "wal_fsync_batch": wal_fsync_batch,
                "ops": ops,
                "compact_every": compact_every,
                "compact_min_garbage_ratio": compact_min_garbage_ratio,
            },
        )
        if replay_upto_cut is not None and not replay_wal:
            raise ValueError("replay_upto_cut requires replay_wal=True")
        return cls(
            buffer_pool_pages=config.pool_pages(buffer_pool_pages),
            page_size=page_size,
            backend=DurableBackend(
                path,
                wal_fsync_batch=config.wal_fsync_batch,
                ops=config.make_ops(),
                compact_every=config.compact_every,
                compact_min_garbage_ratio=config.compact_min_garbage_ratio,
                # getattr: StorageConfigs unpickled from older checkpoints
                # predate the background-compaction fields.
                background_compaction=getattr(config, "background_compaction", False),
                compact_wal_bytes=getattr(config, "compact_wal_bytes", 0),
            ),
            replay_wal=replay_wal,
            replay_upto_cut=replay_upto_cut,
        )

    # -- catalog -------------------------------------------------------------
    def create_table(self, name: str, schema: Schema) -> Table:
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        table = Table(name, schema, self._next_file_id, self.buffer_pool, self.page_size)
        self._next_file_id += 1
        table.add_mutation_listener(self._on_mutation)
        if self.backend.persistent:
            table.set_journal(self._log_table_op)
        self._tables[name] = table
        self._log_table_op(("create_table", name, schema_to_spec(schema)))
        return table

    def drop_table(self, name: str) -> None:
        table = self.table(name)
        # The drop record subsumes the internal truncate's journal entry.
        table.set_journal(None)
        table.truncate()
        del self._tables[name]
        self._log_table_op(("drop_table", name))

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(
                f"no table named {name!r}; have {sorted(self._tables)}"
            ) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # -- triggers -------------------------------------------------------------
    def create_trigger(
        self,
        name: str,
        table_name: str,
        action: TriggerAction,
        events: Sequence[str] = ("insert", "update", "delete"),
        every_n_rows: int = 1,
    ) -> Trigger:
        self.table(table_name)  # validate the table exists
        trigger = Trigger(
            name=name,
            table_name=table_name,
            action=action,
            events=tuple(events),
            every_n_rows=every_n_rows,
        )
        return self.triggers.register(trigger)

    def drop_trigger(self, name: str) -> None:
        self.triggers.drop(name)

    def _on_mutation(self, event: str, table: Table, rows: list) -> None:
        self.triggers.notify(event, table.name, rows)

    # -- querying -----------------------------------------------------------------
    def query(self, source: str | Iterable[Mapping[str, Any]], alias: Optional[str] = None) -> Query:
        """Start a fluent query from a table name or a materialised row iterable."""
        return Query(self, source, alias)

    def sql(self, text: str, parameters: Optional[Mapping[str, Any]] = None) -> list[dict[str, Any]]:
        """Execute a SQL statement (the compact dialect in :mod:`repro.minidb.sql`)."""
        from .sql import execute_sql

        return execute_sql(self, text, parameters or {})

    def explain(
        self, text: str, parameters: Optional[Mapping[str, Any]] = None
    ) -> "ExplainResult":
        """Plan a SELECT statement and return its rendered plan tree."""
        from .planner import plan_select
        from .sql import SelectStatement, parse_sql

        statement = parse_sql(text)
        if not isinstance(statement, SelectStatement):
            raise QueryError("explain() supports SELECT statements only")
        plan = plan_select(self, statement, parameters or {})
        self.last_plan = plan
        return plan.explain()

    # -- durability -------------------------------------------------------------------
    def checkpoint(self, app_state: Any = None) -> None:
        """Flush every dirty page and publish an atomic snapshot + fresh WAL.

        After a checkpoint the write-ahead log is empty; recovery cost is
        proportional to the writes since the last checkpoint, not since
        the database was created.

        *app_state* is an opaque picklable value stored inside the same
        atomic snapshot record.  Coordinators that must keep external
        state (e.g. a crawl engine's round state) consistent with the
        database ride it here: a crash either publishes both or neither,
        so there is no window where they disagree.
        """
        if not self.backend.persistent:
            raise StorageError(
                "in-memory databases cannot checkpoint; create one with Database.open(path)"
            )
        # Adopting a background-prepared rewrite before the flush lets the
        # dirty pages land directly in the adopted segment file instead of
        # being flushed to the old one and re-copied by the delta fold.
        self.backend.begin_checkpoint()
        self.buffer_pool.flush_all()
        meta = self._catalog_meta()
        meta["app_state"] = app_state
        self.backend.checkpoint(meta)

    def app_state(self) -> Any:
        """The opaque state stored by the last :meth:`checkpoint`, or None."""
        meta = getattr(self.backend, "snapshot_meta", None)
        return meta.get("app_state") if meta else None

    def log_cut(self, cut: int) -> None:
        """Stamp the WAL with a cut marker: unit of work *cut* is fully logged.

        Pair with ``Database.open(replay_upto_cut=cut)`` to reopen the
        database at exactly this boundary.  Much cheaper than a full
        checkpoint — one WAL append, no page flush, no snapshot.
        """
        if not self.backend.persistent:
            raise StorageError(
                "in-memory databases have no WAL to cut; create one with Database.open(path)"
            )
        self.backend.log((WAL_CUT_OP, int(cut)))

    def sync_wal(self) -> None:
        """Force-fsync the WAL tail (make everything logged so far durable)."""
        if self.backend.persistent:
            self.backend.sync_wal()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run; consumers can then reopen by path."""
        return self._closed

    def close(self) -> None:
        """Release backend file handles (a no-op for in-memory databases)."""
        self.backend.close()
        self._closed = True

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _log_table_op(self, record: tuple) -> None:
        if self._replaying or not self.backend.persistent:
            return
        self.backend.log(record)

    def _catalog_meta(self) -> dict[str, Any]:
        """The snapshot's description of the catalog (schemas, extents, indexes)."""
        from .index import OrderedIndex
        from .intervals import IntervalIndex

        def kind_of(index) -> str:
            if isinstance(index, IntervalIndex):
                return "interval"
            return "ordered" if isinstance(index, OrderedIndex) else "hash"

        tables = []
        for name, table in self._tables.items():  # dict order == creation order
            tables.append(
                {
                    "name": name,
                    "file_id": table.heap.file_id,
                    "page_count": table.heap.page_count,
                    "row_count": table.heap.row_count,
                    "schema": schema_to_spec(table.schema),
                    "indexes": [
                        {
                            "name": index.name,
                            "columns": list(index.key_columns),
                            "kind": kind_of(index),
                        }
                        for index in table.indexes.values()
                    ],
                }
            )
        return {
            "page_size": self.page_size,
            "next_file_id": self._next_file_id,
            "tables": tables,
        }

    def _recover(self, replay_wal: bool, replay_upto_cut: Optional[int] = None) -> None:
        """Restore the last snapshot and replay (or discard) the WAL tail."""
        meta = getattr(self.backend, "snapshot_meta", None)
        self._replaying = True
        try:
            if meta is not None:
                self.page_size = meta["page_size"]
                self._next_file_id = meta["next_file_id"]
                for spec in meta["tables"]:
                    table = Table(
                        spec["name"],
                        schema_from_spec(spec["schema"]),
                        spec["file_id"],
                        self.buffer_pool,
                        self.page_size,
                    )
                    table.heap.restore(spec["page_count"], spec["row_count"])
                    for index_spec in spec["indexes"]:
                        table.attach_index(
                            index_spec["name"], index_spec["columns"], index_spec["kind"]
                        )
                    table.rebuild_indexes()
                    table.add_mutation_listener(self._on_mutation)
                    table.set_journal(self._log_table_op)
                    self._tables[spec["name"]] = table
            for record in self.backend.replay_wal(
                discard=not replay_wal, upto_cut=replay_upto_cut
            ):
                self._apply_wal_record(record)
        finally:
            self._replaying = False

    def _apply_wal_record(self, record: tuple) -> None:
        op = record[0]
        if op == WAL_CUT_OP:
            return  # round boundary marker, not a table mutation
        if op == "create_table":
            self.create_table(record[1], schema_from_spec(record[2]))
        elif op == "drop_table":
            self.drop_table(record[1])
        elif op == "create_index":
            self.table(record[1]).create_index(record[2], record[3], kind=record[4])
        elif op == "drop_index":
            self.table(record[1]).drop_index(record[2])
        elif op == "insert":
            self.table(record[1]).insert_many(record[2])
        elif op == "update":
            table = self.table(record[1])
            table.update_rows(
                [(self._decode_rid(table, rid), changes) for rid, changes in record[2]]
            )
        elif op == "delete":
            table = self.table(record[1])
            for rid in record[2]:
                table.delete_row(self._decode_rid(table, rid))
        elif op == "truncate":
            self.table(record[1]).truncate()
        else:
            raise StorageError(f"unknown WAL record {op!r}")

    @staticmethod
    def _decode_rid(table: Table, rid: tuple) -> RecordId:
        page_no, slot = rid
        return RecordId(PageId(table.heap.file_id, page_no), slot)

    # -- maintenance ------------------------------------------------------------------
    def resize_buffer_pool(self, capacity_pages: int) -> None:
        self.buffer_pool.resize(capacity_pages)

    def clear_cache(self) -> None:
        """Evict all cached pages (cold-start a measurement)."""
        self.buffer_pool.clear_cache()

    def reset_stats(self) -> None:
        self.stats.reset()

    def io_snapshot(self) -> dict[str, float]:
        snapshot = self.stats.snapshot()
        snapshot["wal_bytes_written"] = float(self.backend.wal_bytes_written)
        snapshot["wal_fsyncs"] = float(self.backend.wal_fsyncs)
        snapshot["pages_flushed"] = float(self.backend.pages_flushed)
        snapshot["segment_bytes_total"] = float(self.backend.segment_bytes_total)
        snapshot["segment_bytes_live"] = float(self.backend.segment_bytes_live)
        snapshot["segment_bytes_dead"] = float(self.backend.segment_bytes_dead)
        snapshot["compactions_run"] = float(self.backend.compactions_run)
        snapshot["compactions_prepared"] = float(self.backend.compactions_prepared)
        snapshot["compactions_refreshed"] = float(self.backend.compactions_refreshed)
        snapshot["bytes_reclaimed"] = float(self.backend.bytes_reclaimed)
        return snapshot

    def total_pages(self) -> int:
        return sum(t.page_count for t in self._tables.values())
