"""The Database: a catalog of tables sharing one buffer pool, plus triggers and SQL.

This is the top-level object the Focus system talks to — the stand-in
for the paper's DB2 Universal Database instance.  It owns:

* a :class:`~repro.minidb.buffer_pool.BufferPool` (shared across all
  tables so the Figure 8(b) memory-scaling sweep controls a single knob),
* the table catalog (create/drop/lookup),
* the trigger registry,
* entry points for the fluent :class:`~repro.minidb.query.Query` builder
  and the SQL text interface.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Sequence

from .buffer_pool import BufferPool, IOStats
from .errors import CatalogError
from .pages import DEFAULT_PAGE_SIZE
from .query import Query
from .table import Table
from .triggers import Trigger, TriggerAction, TriggerRegistry
from .types import Schema


class Database:
    """An in-process relational database instance."""

    def __init__(
        self,
        buffer_pool_pages: int = 256,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> None:
        self.stats = IOStats()
        self.buffer_pool = BufferPool(buffer_pool_pages, self.stats)
        self.page_size = page_size
        self.triggers = TriggerRegistry()
        self._tables: dict[str, Table] = {}
        self._next_file_id = 0

    # -- catalog -------------------------------------------------------------
    def create_table(self, name: str, schema: Schema) -> Table:
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        table = Table(name, schema, self._next_file_id, self.buffer_pool, self.page_size)
        self._next_file_id += 1
        table.add_mutation_listener(self._on_mutation)
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        table = self.table(name)
        table.truncate()
        del self._tables[name]

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(
                f"no table named {name!r}; have {sorted(self._tables)}"
            ) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # -- triggers -------------------------------------------------------------
    def create_trigger(
        self,
        name: str,
        table_name: str,
        action: TriggerAction,
        events: Sequence[str] = ("insert", "update", "delete"),
        every_n_rows: int = 1,
    ) -> Trigger:
        self.table(table_name)  # validate the table exists
        trigger = Trigger(
            name=name,
            table_name=table_name,
            action=action,
            events=tuple(events),
            every_n_rows=every_n_rows,
        )
        return self.triggers.register(trigger)

    def drop_trigger(self, name: str) -> None:
        self.triggers.drop(name)

    def _on_mutation(self, event: str, table: Table, rows: list) -> None:
        self.triggers.notify(event, table.name, rows)

    # -- querying -----------------------------------------------------------------
    def query(self, source: str | Iterable[Mapping[str, Any]], alias: Optional[str] = None) -> Query:
        """Start a fluent query from a table name or a materialised row iterable."""
        return Query(self, source, alias)

    def sql(self, text: str, parameters: Optional[Mapping[str, Any]] = None) -> list[dict[str, Any]]:
        """Execute a SQL statement (the compact dialect in :mod:`repro.minidb.sql`)."""
        from .sql import execute_sql

        return execute_sql(self, text, parameters or {})

    # -- maintenance ------------------------------------------------------------------
    def resize_buffer_pool(self, capacity_pages: int) -> None:
        self.buffer_pool.resize(capacity_pages)

    def clear_cache(self) -> None:
        """Evict all cached pages (cold-start a measurement)."""
        self.buffer_pool.clear_cache()

    def reset_stats(self) -> None:
        self.stats.reset()

    def io_snapshot(self) -> dict[str, float]:
        return self.stats.snapshot()

    def total_pages(self) -> int:
        return sum(t.page_count for t in self._tables.values())
