"""A fluent query builder with a small rule-based planner.

The builder composes the operators from :mod:`repro.minidb.operators`
into plans; the planner applies a few simple but effective rules:

* an equality predicate on an indexed column turns a table scan into an
  index lookup;
* graph predicates (:meth:`Query.descendants_of` /
  :meth:`Query.reachable_from`) become interval-index window range scans
  when the base table carries the interval index, indexed id-set probes
  when another index covers the tested column, and membership filters
  otherwise;
* equi-joins use a hash join by default, a sort-merge join when
  requested (``join(..., algorithm="merge")``) — the paper's BulkProbe
  is phrased to make sort-merge profitable — or an index-nested-loop
  join (``algorithm="index"``) probing the inner table's index once per
  outer row.

Example::

    rows = (Query(db, "LINK")
            .join("CRAWL", on=[("oid_dst", "oid")], algorithm="index")
            .where(col("relevance") > lit(0.5))
            .group_by("oid_dst")
            .aggregate("sum", col("wgt_fwd"), "score")
            .run())

``Query.explain()`` renders the chosen plan without running it.
"""

from __future__ import annotations

import warnings
from typing import Any, Iterable, Optional, Sequence, Union

from .errors import QueryError
from .expressions import (
    And,
    ColumnRef,
    Comparison,
    Expression,
    Literal,
    col,
)
from .operators import (
    Aggregate,
    Distinct,
    Filter,
    GroupByAggregate,
    HashJoin,
    IndexKeysLookup,
    IndexLookup,
    IndexNestedLoopJoin,
    IndexRangeScan,
    LeftOuterJoin,
    Limit,
    NestedLoopJoin,
    Operator,
    Project,
    RowDict,
    RowSource,
    Sort,
    SortMergeJoin,
    TableScan,
    explain_lines,
)
from .table import Table


def _split_conjuncts(expr: Optional[Expression]) -> list[Expression]:
    if expr is None:
        return []
    if isinstance(expr, And):
        out: list[Expression] = []
        for part in expr.parts:
            out.extend(_split_conjuncts(part))
        return out
    return [expr]


def _indexable_equalities(
    predicate: Optional[Expression], table: Table, alias: str
) -> tuple[Optional[tuple[str, list[Any]]], list[Expression]]:
    """Find an index of *table* fully bound by equality conjuncts of *predicate*.

    Returns ``((index_name, key_values), residual_conjuncts)`` or
    ``(None, conjuncts)`` when no index applies.
    """
    conjuncts = _split_conjuncts(predicate)
    bound: dict[str, Any] = {}
    consumed: dict[str, Expression] = {}
    for conj in conjuncts:
        if not isinstance(conj, Comparison) or conj.op != "=":
            continue
        column_side, literal_side = conj.left, conj.right
        if isinstance(literal_side, ColumnRef) and isinstance(column_side, Literal):
            column_side, literal_side = literal_side, column_side
        if not isinstance(column_side, ColumnRef) or not isinstance(literal_side, Literal):
            continue
        name = column_side.name
        if name.startswith(alias + "."):
            name = name[len(alias) + 1 :]
        if "." in name or name not in table.schema:
            continue
        if name not in bound:
            bound[name] = literal_side.value
            consumed[name] = conj
    if not bound:
        return None, conjuncts
    # Try the primary key first, then every secondary index.
    candidates = []
    if table.schema.primary_key:
        candidates.append((f"{table.name}_pk", tuple(table.schema.primary_key)))
    candidates.extend((idx.name, idx.key_columns) for idx in table.indexes.values())
    for index_name, key_columns in candidates:
        if all(c in bound for c in key_columns):
            key = [bound[c] for c in key_columns]
            used = {consumed[c] for c in key_columns}
            residual = [c for c in conjuncts if c not in used]
            return (index_name, key), residual
    return None, conjuncts


class Query:
    """Fluent single-block query over the tables of a :class:`~repro.minidb.database.Database`."""

    def __init__(self, database: "Database", source: Union[str, Iterable[RowDict]], alias: Optional[str] = None) -> None:  # noqa: F821
        self.database = database
        self._joins: list[dict[str, Any]] = []
        self._predicate: Optional[Expression] = None
        self._group_keys: list[tuple[str, Expression]] = []
        self._aggregates: list[Aggregate] = []
        self._having: Optional[Expression] = None
        self._projections: Optional[list[tuple[str, Expression]]] = None
        self._order: list[tuple[Expression, bool]] = []
        self._limit: Optional[int] = None
        self._offset: int = 0
        self._distinct = False
        self._graph: list[dict[str, Any]] = []
        if isinstance(source, str):
            self._base_table: Optional[Table] = database.table(source)
            self._base_rows: Optional[Iterable[RowDict]] = None
            self._base_alias = alias or source
        else:
            self._base_table = None
            self._base_rows = source
            self._base_alias = alias

    # -- building ---------------------------------------------------------------
    def where(self, predicate: Expression) -> "Query":
        if self._predicate is None:
            self._predicate = predicate
        else:
            self._predicate = And([self._predicate, predicate])
        return self

    def join(
        self,
        other: Union[str, Iterable[RowDict]],
        on: Sequence[tuple[str, str]],
        alias: Optional[str] = None,
        how: str = "inner",
        algorithm: str = "hash",
        residual: Optional[Expression] = None,
    ) -> "Query":
        """Join with another table (by name) or a materialised row iterable.

        ``on`` is a list of ``(left_column, right_column)`` equality pairs.
        ``how`` is ``"inner"`` or ``"left"``; ``algorithm`` is ``"hash"``,
        ``"merge"``, or ``"nested"`` (ignored for left joins, which are
        hash-based).
        """
        if how not in ("inner", "left"):
            raise QueryError(f"unsupported join type {how!r}")
        if algorithm not in ("hash", "merge", "nested", "index"):
            raise QueryError(f"unsupported join algorithm {algorithm!r}")
        self._joins.append(
            {
                "other": other,
                "on": list(on),
                "alias": alias,
                "how": how,
                "algorithm": algorithm,
                "residual": residual,
            }
        )
        return self

    def descendants_of(
        self,
        column: str,
        root: Any,
        include_self: bool = False,
        via: Optional[str] = None,
    ) -> "Query":
        """Keep rows whose *column* is a tree descendant of *root*.

        Answered by an interval index: *via* names it explicitly,
        otherwise it is resolved from the column (see
        :func:`repro.minidb.planner.resolve_interval_index`).
        """
        self._graph.append(
            {
                "kind": "descendants",
                "column": column,
                "root": root,
                "include_self": include_self,
                "via": via,
            }
        )
        return self

    def reachable_from(
        self, column: str, root: Any, via: Optional[str] = None
    ) -> "Query":
        """Keep rows whose *column* is graph-reachable from *root* (root included)."""
        self._graph.append(
            {
                "kind": "reachable",
                "column": column,
                "root": root,
                "include_self": True,
                "via": via,
            }
        )
        return self

    def group_by(self, *columns: Union[str, tuple[str, Expression]]) -> "Query":
        for column in columns:
            if isinstance(column, tuple):
                name, expr = column
            else:
                name, expr = column.split(".")[-1], col(column)
            self._group_keys.append((name, expr))
        return self

    def aggregate(self, func: str, arg: Optional[Expression], output_name: str) -> "Query":
        self._aggregates.append(Aggregate(func, arg, output_name))
        return self

    def having(self, predicate: Expression) -> "Query":
        self._having = predicate
        return self

    def select(self, *outputs: Union[str, tuple[str, Expression]]) -> "Query":
        """Choose output columns; strings select columns, tuples compute expressions."""
        projections: list[tuple[str, Expression]] = []
        for output in outputs:
            if isinstance(output, tuple):
                name, expr = output
                projections.append((name, expr))
            else:
                projections.append((output.split(".")[-1], col(output)))
        self._projections = projections
        return self

    def distinct(self) -> "Query":
        self._distinct = True
        return self

    def order_by(self, *keys: tuple[Union[str, Expression], bool]) -> "Query":
        for key, ascending in keys:
            expr = col(key) if isinstance(key, str) else key
            self._order.append((expr, ascending))
        return self

    def limit(self, limit: int, offset: int = 0) -> "Query":
        self._limit = limit
        self._offset = offset
        return self

    # -- execution -----------------------------------------------------------------
    def plan(self) -> Operator:
        """Build the operator tree (exposed for plan-shape tests)."""
        plan, remaining_predicate = self._base_plan()
        for join_spec in self._joins:
            plan = self._apply_join(plan, join_spec)
        if remaining_predicate is not None:
            plan = Filter(plan, remaining_predicate)
        if self._aggregates or self._group_keys:
            plan = GroupByAggregate(plan, self._group_keys, self._aggregates, self._having)
        if self._projections is not None:
            plan = Project(plan, self._projections)
        if self._distinct:
            plan = Distinct(plan)
        if self._order:
            plan = Sort(plan, self._order)
        if self._limit is not None:
            plan = Limit(plan, self._limit, self._offset)
        return plan

    def run(self) -> list[RowDict]:
        return self.plan().to_list()

    def explain(self) -> "ExplainResult":  # noqa: F821
        """Render the plan tree this query would execute."""
        from .planner import ExplainResult, planner_mode

        return ExplainResult(
            mode=planner_mode(), lines=tuple(explain_lines(self.plan()))
        )

    def scalar(self) -> Any:
        """Run and return the single value of the single row (or None when empty)."""
        rows = self.run()
        if not rows:
            return None
        if len(rows) > 1 or len(rows[0]) != 1:
            raise QueryError("scalar() expects exactly one row with one column")
        return next(iter(rows[0].values()))

    # -- internals --------------------------------------------------------------------
    def _base_plan(self) -> tuple[Operator, Optional[Expression]]:
        if self._base_table is None:
            if self._graph:
                raise QueryError("graph predicates need a table-backed base")
            base: Operator = RowSource(self._base_rows or [], self._base_alias)
            return base, self._predicate
        if self._graph:
            return self._graph_base_plan()
        # Only push an index access when the whole query is a single-table
        # block (joins change which conjuncts refer to the base table).
        if not self._joins:
            match, residual = _indexable_equalities(
                self._predicate, self._base_table, self._base_alias
            )
            if match is not None:
                index_name, key = match
                base = IndexLookup(self._base_table, index_name, key, self._base_alias)
                remaining = And(residual) if len(residual) > 1 else (residual[0] if residual else None)
                return base, remaining
        return TableScan(self._base_table, self._base_alias), self._predicate

    def _graph_base_plan(self) -> tuple[Operator, Optional[Expression]]:
        """Access path for graph predicates: the first spec that can drive
        the base becomes a window range scan (or an indexed id-set probe);
        the rest degrade to membership filters."""
        from .expressions import InSet
        from .planner import point_index, resolve_interval_index

        base: Optional[Operator] = None
        filters: list[Expression] = []
        for spec in self._graph:
            table, index = resolve_interval_index(
                self.database, spec["column"], spec["via"], label=f"{spec['kind']} query"
            )
            bare = spec["column"].split(".")[-1]
            driving = (
                base is None
                and table.name == self._base_table.name
                and bare == index.key_columns[0]
            )
            if driving:
                base = IndexRangeScan(
                    self._base_table,
                    index.name,
                    self._base_alias,
                    mode="reachable" if spec["kind"] == "reachable" else "descendants",
                    root=spec["root"],
                    include_root=spec["include_self"],
                )
                continue
            ids = (
                index.reachable_ids(spec["root"])
                if spec["kind"] == "reachable"
                else index.descendant_ids(spec["root"], include_self=spec["include_self"])
            )
            if base is None and not self._joins:
                probe_index = point_index(self._base_table, bare)
                if probe_index is not None:
                    base = IndexKeysLookup(
                        self._base_table, probe_index, [(v,) for v in ids], self._base_alias
                    )
                    continue
            filters.append(InSet(ColumnRef(spec["column"]), ids))
        if base is None:
            base = TableScan(self._base_table, self._base_alias)
        parts = filters + ([self._predicate] if self._predicate is not None else [])
        if not parts:
            return base, None
        return base, parts[0] if len(parts) == 1 else And(parts)

    def _apply_join(self, plan: Operator, join_spec: dict[str, Any]) -> Operator:
        other = join_spec["other"]
        alias = join_spec["alias"]
        if isinstance(other, str):
            table = self.database.table(other)
            right: Operator = TableScan(table, alias or other)
            right_columns = [
                f"{alias or other}.{c}" for c in table.schema.column_names
            ] + list(table.schema.column_names)
        else:
            right = RowSource(other, alias)
            materialised = list(other)
            right = RowSource(materialised, alias)
            right_columns = sorted({k for row in materialised for k in row})
            if alias:
                right_columns = right_columns + [f"{alias}.{c}" for c in right_columns]
        left_keys = [col(l) for l, _ in join_spec["on"]]
        right_keys = [col(r) for _, r in join_spec["on"]]
        residual = join_spec["residual"]
        if join_spec["how"] == "left":
            return LeftOuterJoin(plan, right, left_keys, right_keys, right_columns, residual)
        algorithm = join_spec["algorithm"]
        if algorithm == "index":
            if not isinstance(other, str):
                raise QueryError("index joins need a table-backed inner side")
            target = tuple(r.split(".")[-1] for _, r in join_spec["on"])
            from .planner import _inner_join_index

            index_name = _inner_join_index(table, target)
            if index_name is None:
                raise QueryError(
                    f"no index-nested-loop-safe index on {table.name!r} "
                    f"covering {target!r} (need the primary key or an "
                    "append-only secondary index)"
                )
            return IndexNestedLoopJoin(
                plan, table, index_name, left_keys, alias or other, residual
            )
        if algorithm == "merge":
            return SortMergeJoin(plan, right, left_keys, right_keys, residual)
        if algorithm == "nested":
            predicate_parts: list[Expression] = [
                Comparison("=", lk, rk) for lk, rk in zip(left_keys, right_keys)
            ]
            if residual is not None:
                predicate_parts.append(residual)
            return NestedLoopJoin(plan, right, And(predicate_parts))
        return HashJoin(plan, right, left_keys, right_keys, residual)


def legacy_scan_rows(table: Table, query: Optional[Query] = None) -> list[dict]:
    """Deprecated analytics read path: a raw ``Table.scan()`` as row dicts.

    Analytics code historically read whole tables with ``Table.scan()``
    plus ``Schema.row_to_mapping`` and joined them in Python; the
    supported read surface is now :meth:`Database.query` /
    :meth:`Database.sql`.  This shim keeps the old call sites working —
    with a :class:`DeprecationWarning` — and follows the
    ``StorageConfig`` shim pattern: naming both the legacy *table* and a
    new-style *query* is an error, not a silent preference.
    """
    if query is not None:
        raise ValueError(
            "pass either a table to scan (legacy) or a Query to run, not both"
        )
    warnings.warn(
        "direct Table.scan() for analytics is deprecated; "
        "use Database.query()/Database.sql() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    schema = table.schema
    return [schema.row_to_mapping(row) for _rid, row in table.scan()]
