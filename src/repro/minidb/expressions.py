"""A small typed expression tree used by predicates, projections, and updates.

Expressions are evaluated against a *row context*: a mapping from column
name to value.  Qualified names (``"CRAWL.oid"``) and bare names
(``"oid"``) are both supported; joins produce contexts keyed by the
qualified form with bare-name aliases when unambiguous.

The expression language covers what the paper's SQL snippets need:
comparisons, boolean connectives, arithmetic, ``IN`` (including
subquery results materialised to a set), ``COALESCE``, ``EXP``/``LOG``,
and NULL-aware semantics (any comparison with NULL is false, as in SQL's
three-valued logic collapsed to "unknown = not matched").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from .errors import QueryError

RowContext = Mapping[str, Any]


class Expression:
    """Base class for all expressions."""

    def evaluate(self, ctx: RowContext) -> Any:
        raise NotImplementedError

    def referenced_columns(self) -> set[str]:
        """Column names referenced anywhere in the expression."""
        return set()

    # Convenience builders so callers can write ``col("x") > lit(3)``.
    def __eq__(self, other: object):  # type: ignore[override]
        return Comparison("=", self, _wrap(other))

    def __ne__(self, other: object):  # type: ignore[override]
        return Comparison("<>", self, _wrap(other))

    def __lt__(self, other: object):
        return Comparison("<", self, _wrap(other))

    def __le__(self, other: object):
        return Comparison("<=", self, _wrap(other))

    def __gt__(self, other: object):
        return Comparison(">", self, _wrap(other))

    def __ge__(self, other: object):
        return Comparison(">=", self, _wrap(other))

    def __add__(self, other: object):
        return Arithmetic("+", self, _wrap(other))

    def __sub__(self, other: object):
        return Arithmetic("-", self, _wrap(other))

    def __mul__(self, other: object):
        return Arithmetic("*", self, _wrap(other))

    def __truediv__(self, other: object):
        return Arithmetic("/", self, _wrap(other))

    def __neg__(self):
        return Arithmetic("-", Literal(0), self)

    def __hash__(self) -> int:  # expressions are identity-hashed
        return id(self)


def _wrap(value: object) -> "Expression":
    if isinstance(value, Expression):
        return value
    return Literal(value)


@dataclass(eq=False)
class Literal(Expression):
    """A constant value."""

    value: Any

    def evaluate(self, ctx: RowContext) -> Any:
        return self.value

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


@dataclass(eq=False)
class ColumnRef(Expression):
    """A reference to a column by (possibly qualified) name."""

    name: str

    def evaluate(self, ctx: RowContext) -> Any:
        if self.name in ctx:
            return ctx[self.name]
        # Fall back: a bare name matching exactly one qualified key.
        if "." not in self.name:
            matches = [k for k in ctx if k.endswith("." + self.name)]
            if len(matches) == 1:
                return ctx[matches[0]]
            if len(matches) > 1:
                raise QueryError(f"ambiguous column {self.name!r}: {sorted(matches)}")
        else:
            bare = self.name.split(".", 1)[1]
            if bare in ctx:
                return ctx[bare]
        raise QueryError(f"unknown column {self.name!r}; row has {sorted(ctx)}")

    def referenced_columns(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return f"col({self.name!r})"


@dataclass(eq=False)
class Comparison(Expression):
    """Binary comparison with SQL NULL semantics (NULL never matches)."""

    op: str
    left: Expression
    right: Expression

    _OPS: dict[str, Callable[[Any, Any], bool]] = None  # type: ignore[assignment]

    def evaluate(self, ctx: RowContext) -> bool:
        lhs = self.left.evaluate(ctx)
        rhs = self.right.evaluate(ctx)
        if lhs is None or rhs is None:
            return False
        if self.op == "=":
            return lhs == rhs
        if self.op in ("<>", "!="):
            return lhs != rhs
        if self.op == "<":
            return lhs < rhs
        if self.op == "<=":
            return lhs <= rhs
        if self.op == ">":
            return lhs > rhs
        if self.op == ">=":
            return lhs >= rhs
        raise QueryError(f"unknown comparison operator {self.op!r}")

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(eq=False)
class Arithmetic(Expression):
    """Binary arithmetic; NULL operands propagate to NULL."""

    op: str
    left: Expression
    right: Expression

    def evaluate(self, ctx: RowContext) -> Any:
        lhs = self.left.evaluate(ctx)
        rhs = self.right.evaluate(ctx)
        if lhs is None or rhs is None:
            return None
        if self.op == "+":
            return lhs + rhs
        if self.op == "-":
            return lhs - rhs
        if self.op == "*":
            return lhs * rhs
        if self.op == "/":
            if rhs == 0:
                raise QueryError("division by zero")
            return lhs / rhs
        raise QueryError(f"unknown arithmetic operator {self.op!r}")

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(eq=False)
class And(Expression):
    parts: Sequence[Expression]

    def evaluate(self, ctx: RowContext) -> bool:
        return all(bool(p.evaluate(ctx)) for p in self.parts)

    def referenced_columns(self) -> set[str]:
        out: set[str] = set()
        for p in self.parts:
            out |= p.referenced_columns()
        return out

    def __repr__(self) -> str:
        return " AND ".join(repr(p) for p in self.parts)


@dataclass(eq=False)
class Or(Expression):
    parts: Sequence[Expression]

    def evaluate(self, ctx: RowContext) -> bool:
        return any(bool(p.evaluate(ctx)) for p in self.parts)

    def referenced_columns(self) -> set[str]:
        out: set[str] = set()
        for p in self.parts:
            out |= p.referenced_columns()
        return out

    def __repr__(self) -> str:
        return " OR ".join(repr(p) for p in self.parts)


@dataclass(eq=False)
class Not(Expression):
    inner: Expression

    def evaluate(self, ctx: RowContext) -> bool:
        return not bool(self.inner.evaluate(ctx))

    def referenced_columns(self) -> set[str]:
        return self.inner.referenced_columns()

    def __repr__(self) -> str:
        return f"NOT ({self.inner!r})"


@dataclass(eq=False)
class IsNull(Expression):
    inner: Expression
    negated: bool = False

    def evaluate(self, ctx: RowContext) -> bool:
        result = self.inner.evaluate(ctx) is None
        return not result if self.negated else result

    def referenced_columns(self) -> set[str]:
        return self.inner.referenced_columns()


@dataclass(eq=False)
class InSet(Expression):
    """``expr IN (v1, v2, ...)`` — values may come from a materialised subquery."""

    inner: Expression
    values: Iterable[Any]
    negated: bool = False

    def evaluate(self, ctx: RowContext) -> bool:
        value = self.inner.evaluate(ctx)
        if value is None:
            return False
        values = self.values() if callable(self.values) else self.values
        result = value in set(values)
        return not result if self.negated else result

    def referenced_columns(self) -> set[str]:
        return self.inner.referenced_columns()


@dataclass(eq=False)
class FunctionCall(Expression):
    """Scalar function application.

    Supported: ``coalesce``, ``exp``, ``log``, ``abs``, ``min``, ``max``,
    ``length``.  This covers the monitoring queries in §3.7 of the paper
    (e.g. ``avg(exp(relevance))`` combines :class:`FunctionCall` with the
    aggregation layer in :mod:`repro.minidb.operators`).
    """

    name: str
    args: Sequence[Expression]

    def evaluate(self, ctx: RowContext) -> Any:
        name = self.name.lower()
        values = [a.evaluate(ctx) for a in self.args]
        if name == "coalesce":
            for v in values:
                if v is not None:
                    return v
            return None
        if any(v is None for v in values):
            return None
        if name == "exp":
            return math.exp(values[0])
        if name == "log":
            if values[0] <= 0:
                raise QueryError("log of non-positive value")
            return math.log(values[0])
        if name == "abs":
            return abs(values[0])
        if name == "min":
            return min(values)
        if name == "max":
            return max(values)
        if name == "length":
            return len(values[0])
        if name == "floor":
            return math.floor(values[0])
        if name == "ceil":
            return math.ceil(values[0])
        if name == "sqrt":
            return math.sqrt(values[0])
        raise QueryError(f"unknown function {self.name!r}")

    def referenced_columns(self) -> set[str]:
        out: set[str] = set()
        for a in self.args:
            out |= a.referenced_columns()
        return out


# -- public helpers -----------------------------------------------------------

def col(name: str) -> ColumnRef:
    """Shorthand for :class:`ColumnRef`."""
    return ColumnRef(name)


def lit(value: Any) -> Literal:
    """Shorthand for :class:`Literal`."""
    return Literal(value)


def func(name: str, *args: Expression | Any) -> FunctionCall:
    return FunctionCall(name, [_wrap(a) for a in args])


def and_(*parts: Expression) -> Expression:
    parts = tuple(p for p in parts if p is not None)
    if not parts:
        return Literal(True)
    if len(parts) == 1:
        return parts[0]
    return And(parts)


def or_(*parts: Expression) -> Expression:
    if not parts:
        return Literal(False)
    if len(parts) == 1:
        return parts[0]
    return Or(parts)


def not_(inner: Expression) -> Not:
    return Not(inner)


def in_set(inner: Expression, values: Iterable[Any], negated: bool = False) -> InSet:
    return InSet(inner, values, negated)


def is_null(inner: Expression, negated: bool = False) -> IsNull:
    return IsNull(inner, negated)
