"""Checkpoint-time compaction of the durable backend's segment file.

The durable backend (:class:`~repro.minidb.backend.DurableBackend`)
never rewrites its segment file in place: every page flush appends a
fresh image, and the superseded image becomes garbage.  That is what
makes a crash harmless — at worst it leaves an unreferenced tail — but
it also means disk growth is unbounded on exactly the workloads the
backend exists for: a long focused crawl rewrites CRAWL rows and the
HUBS/AUTH score tables over and over, so dead images pile up forever.

The :class:`Compactor` bounds that growth.  At :meth:`checkpoint
<repro.minidb.backend.DurableBackend.checkpoint>` time it decides —
policy knobs ``compact_every`` (consider compaction at every Nth
checkpoint; 0 disables) and ``min_garbage_ratio`` (dead bytes as a
fraction of payload bytes that makes a rewrite worthwhile) — whether to
rewrite only the *live* page images into a brand-new epoch-stamped
segment file.  The atomic-swap protocol:

1. write every live image (CRC-verified while copying) into
   ``segments.<epoch>.dat``, in old-file offset order, and fsync it;
2. publish the checkpoint snapshot, whose page directory carries the
   new offsets and the new ``segment_epoch``, via the usual
   write-temp → fsync → rename — the rename is the commit point;
3. truncate (reset) the WAL to the new epoch;
4. unlink the stale segment file(s).

A crash before step 2's rename leaves the old snapshot pointing at the
old, untouched segment file; the half-written new segment is fenced
(deleted) at the next open.  A crash after the rename leaves the new
snapshot pointing at the fully-fsynced new segment; the old file is the
stale one and is fenced instead.  There is no window in which the
published directory can point into the wrong file.
"""

from __future__ import annotations

import os
from typing import BinaryIO, Dict, Tuple

from .errors import StorageError
from .pages import PageId
from .wal import (
    FRAME_HEADER_SIZE,
    SEGMENT_MAGIC,
    FileOps,
    read_frame_at,
    write_frame,
)

#: Directory entry: (byte offset of the frame, total frame length).
SegmentEntry = Tuple[int, int]


class Compactor:
    """Policy and mechanism for rewriting a segment file down to its live images."""

    def __init__(self, compact_every: int = 1, min_garbage_ratio: float = 0.5) -> None:
        if compact_every < 0:
            raise StorageError("compact_every must be >= 0 (0 disables compaction)")
        if not 0.0 <= min_garbage_ratio <= 1.0:
            raise StorageError("compact_min_garbage_ratio must be within [0, 1]")
        self.compact_every = int(compact_every)
        self.min_garbage_ratio = float(min_garbage_ratio)
        #: Committed compactions (a rewrite whose snapshot was published).
        self.compactions_run = 0
        #: Segment bytes reclaimed by committed compactions, cumulative.
        self.bytes_reclaimed = 0
        self._checkpoints_since_consideration = 0

    # -- policy ------------------------------------------------------------
    def due(self, live_bytes: int, dead_bytes: int) -> bool:
        """Decide, at a checkpoint, whether this one should compact.

        ``compact_every`` rate-limits how often the question is even
        asked; once asked, the answer is yes only when the garbage
        fraction of the segment payload reaches ``min_garbage_ratio``
        (so a mostly-live file is never rewritten for nothing).
        """
        if not self.compact_every:
            return False
        self._checkpoints_since_consideration += 1
        if self._checkpoints_since_consideration < self.compact_every:
            return False
        self._checkpoints_since_consideration = 0
        total = live_bytes + dead_bytes
        if total <= 0:
            return False
        return dead_bytes / total >= self.min_garbage_ratio

    def note_committed(self, reclaimed_bytes: int) -> None:
        """Record a compaction whose snapshot rename succeeded."""
        self.compactions_run += 1
        self.bytes_reclaimed += max(int(reclaimed_bytes), 0)

    # -- mechanism ---------------------------------------------------------
    def rewrite(
        self,
        ops: FileOps,
        old_segments: BinaryIO,
        directory: Dict[PageId, SegmentEntry],
        new_path: str | os.PathLike,
    ) -> Tuple[BinaryIO, Dict[PageId, SegmentEntry], int]:
        """Copy the live images of *directory* into a fresh segment file.

        Images are copied in old-file offset order (one sequential pass)
        and CRC-verified on the way through; a damaged live image aborts
        the compaction with :class:`StorageError` before anything is
        published, leaving the old file authoritative.  Returns the new
        (fsynced, not yet published) file handle, the rebuilt directory,
        and the new end-of-file offset.
        """
        new_fh = ops.open(new_path, "w+b")
        try:
            new_fh.write(SEGMENT_MAGIC)
            new_directory: Dict[PageId, SegmentEntry] = {}
            end = len(SEGMENT_MAGIC)
            for page_id, (offset, _length) in sorted(
                directory.items(), key=lambda item: item[1][0]
            ):
                payload = read_frame_at(old_segments, offset)
                new_offset = write_frame(new_fh, payload)
                frame_len = FRAME_HEADER_SIZE + len(payload)
                new_directory[page_id] = (new_offset, frame_len)
                end = new_offset + frame_len
            new_fh.flush()
            ops.fsync(new_fh)
        except Exception as exc:
            # Closing the handle is always safe (unbuffered: nothing to
            # flush, the on-disk state is untouched).  The *file* is
            # removed only on a live-process abort (damaged source frame,
            # disk full) — deliberately via plain os, not ops: an injected
            # crash is not an abort — the process is dead and must leave
            # the half-written file behind for the open-time fence.
            new_fh.close()
            if isinstance(exc, (StorageError, OSError)):
                try:
                    os.remove(new_path)
                except OSError:  # pragma: no cover - cleanup is best-effort
                    pass
            raise
        return new_fh, new_directory, end
