"""A compact SQL dialect for ad-hoc queries against a minidb Database.

One of the paper's practical arguments for building the crawler on a
DBMS is that "it became trivial to write ad-hoc SQL queries to monitor
the crawler and diagnose problems such as stagnation" (§3.1, §3.7).
This module provides enough SQL for those queries — and for the
distillation statements of Figure 4 — without pretending to be a full
SQL-92 implementation.

Supported statements::

    SELECT [DISTINCT] select_list
    FROM table [alias] [, table [alias]]...
    [WHERE predicate]
    [GROUP BY expr [, expr]...]
    [HAVING predicate]
    [ORDER BY expr [ASC|DESC] [, ...]]
    [LIMIT n]

    INSERT INTO table [(col, ...)] VALUES (v, ...) [, (v, ...)]...
    INSERT INTO table [(col, ...)] SELECT ...
    UPDATE table SET col = expr [, col = expr]... [WHERE predicate]
    DELETE FROM table [WHERE predicate]
    EXPLAIN SELECT ...

Expressions support the usual comparison operators, ``AND``/``OR``/``NOT``,
arithmetic, ``IN (SELECT ...)``, ``IN (literal, ...)``, ``IS [NOT] NULL``,
scalar subqueries ``(SELECT ...)``, named parameters ``:name``, and the
functions ``exp``, ``log``, ``abs``, ``coalesce``, ``length``.  Aggregates
(``count``, ``sum``, ``avg``, ``min``, ``max``) are allowed in the select
list and HAVING clause of grouped queries.  Three *graph predicates* —
``descendant_of(col, root)``, ``in_subtree(col, root)`` and
``reachable_from(col, root[, 'index_name'])`` — test membership against
an interval index (:mod:`repro.minidb.intervals`) and become index range
scans when they can drive the access path.

Plan construction lives in :mod:`repro.minidb.planner`: comma-separated
FROM lists join on the connecting equality conjuncts of the WHERE clause
(the style used by Figure 4's distillation SQL), remaining conjuncts
become filters, and in the default ``index`` planner mode eligible scans
and hash joins are replaced by index probes.  ``EXPLAIN SELECT ...``
returns the plan tree, one row per line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from .errors import QueryError, SQLSyntaxError
from .expressions import (
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    InSet,
    IsNull,
    Literal,
    Not,
    Or,
)
from .operators import Aggregate, RowDict

_AGGREGATE_FUNCS = {"count", "sum", "avg", "min", "max"}

#: WHERE-clause predicates answered by an interval index (see planner.py).
_GRAPH_FUNCS = ("descendant_of", "in_subtree", "reachable_from")

# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+(e[+-]?\d+)?|\d+e[+-]?\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<param>:[A-Za-z_][A-Za-z0-9_]*)
  | (?P<name>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<op><>|<=|>=|!=|=|<|>|\(|\)|,|\*|\+|-|/)
    """,
    re.VERBOSE | re.IGNORECASE,
)


@dataclass
class _Token:
    kind: str
    value: str

    def upper(self) -> str:
        return self.value.upper()


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SQLSyntaxError(f"cannot tokenize SQL near: {text[pos:pos + 30]!r}")
        pos = match.end()
        kind = match.lastgroup or ""
        if kind == "ws":
            continue
        tokens.append(_Token(kind, match.group()))
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


@dataclass
class SelectItem:
    expression: "SqlExpr"
    alias: Optional[str]
    is_star: bool = False


@dataclass
class SelectStatement:
    items: list[SelectItem]
    tables: list[tuple[str, str]]  # (table name, alias)
    where: Optional["SqlExpr"]
    group_by: list["SqlExpr"]
    having: Optional["SqlExpr"]
    order_by: list[tuple["SqlExpr", bool]]
    limit: Optional[int]
    distinct: bool = False


@dataclass
class InsertStatement:
    table: str
    columns: Optional[list[str]]
    values: Optional[list[list["SqlExpr"]]]
    select: Optional[SelectStatement]


@dataclass
class UpdateStatement:
    table: str
    assignments: list[tuple[str, "SqlExpr"]]
    where: Optional["SqlExpr"]


@dataclass
class DeleteStatement:
    table: str
    where: Optional["SqlExpr"]


@dataclass
class ExplainStatement:
    """``EXPLAIN SELECT ...`` — render the plan instead of executing it."""

    select: SelectStatement


# SQL expression AST nodes (kept separate from runtime Expression so that
# aggregates and subqueries can be handled by the executor).


@dataclass
class SqlColumn:
    name: str


@dataclass
class SqlLiteral:
    value: Any


@dataclass
class SqlParam:
    name: str


@dataclass
class SqlBinary:
    op: str
    left: "SqlExpr"
    right: "SqlExpr"


@dataclass
class SqlUnaryNot:
    inner: "SqlExpr"


@dataclass
class SqlIsNull:
    inner: "SqlExpr"
    negated: bool


@dataclass
class SqlIn:
    inner: "SqlExpr"
    values: Optional[list["SqlExpr"]]
    subquery: Optional[SelectStatement]
    negated: bool


@dataclass
class SqlFunction:
    name: str
    args: list["SqlExpr"]
    star: bool = False


@dataclass
class SqlSubquery:
    select: SelectStatement


SqlExpr = Any  # union of the dataclasses above


# ---------------------------------------------------------------------------
# Parser (recursive descent)
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: list[_Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ---------------------------------------------------
    def _peek(self, offset: int = 0) -> Optional[_Token]:
        index = self.pos + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of SQL")
        self.pos += 1
        return token

    def _accept_keyword(self, *keywords: str) -> Optional[str]:
        token = self._peek()
        if token is not None and token.kind == "name" and token.upper() in keywords:
            self.pos += 1
            return token.upper()
        return None

    def _expect_keyword(self, keyword: str) -> None:
        if self._accept_keyword(keyword) is None:
            token = self._peek()
            raise SQLSyntaxError(f"expected {keyword}, found {token.value if token else 'end'!r}")

    def _accept_op(self, op: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "op" and token.value == op:
            self.pos += 1
            return True
        return False

    def _expect_op(self, op: str) -> None:
        if not self._accept_op(op):
            token = self._peek()
            raise SQLSyntaxError(f"expected {op!r}, found {token.value if token else 'end'!r}")

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    # -- statements ---------------------------------------------------------
    def parse_statement(self) -> Any:
        keyword = self._accept_keyword(
            "SELECT", "INSERT", "UPDATE", "DELETE", "WITH", "EXPLAIN"
        )
        if keyword == "EXPLAIN":
            inner = self.parse_statement()
            if not isinstance(inner, SelectStatement):
                raise SQLSyntaxError("EXPLAIN supports SELECT statements only")
            return ExplainStatement(inner)
        if keyword == "SELECT":
            return self._parse_select_body()
        if keyword == "INSERT":
            return self._parse_insert()
        if keyword == "UPDATE":
            return self._parse_update()
        if keyword == "DELETE":
            return self._parse_delete()
        token = self._peek()
        raise SQLSyntaxError(f"unsupported statement starting at {token.value if token else 'end'!r}")

    def _parse_select(self) -> SelectStatement:
        self._expect_keyword("SELECT")
        return self._parse_select_body()

    def _parse_select_body(self) -> SelectStatement:
        distinct = self._accept_keyword("DISTINCT") is not None
        items = [self._parse_select_item()]
        while self._accept_op(","):
            items.append(self._parse_select_item())
        self._expect_keyword("FROM")
        tables = [self._parse_table_ref()]
        while self._accept_op(","):
            tables.append(self._parse_table_ref())
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expr()
        group_by: list[SqlExpr] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_expr())
            while self._accept_op(","):
                group_by.append(self._parse_expr())
        having = None
        if self._accept_keyword("HAVING"):
            having = self._parse_expr()
        order_by: list[tuple[SqlExpr, bool]] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept_op(","):
                order_by.append(self._parse_order_item())
        limit = None
        if self._accept_keyword("LIMIT"):
            token = self._next()
            if token.kind != "number":
                raise SQLSyntaxError(f"LIMIT expects a number, found {token.value!r}")
            limit = int(float(token.value))
        return SelectStatement(
            items=items,
            tables=tables,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def _parse_select_item(self) -> SelectItem:
        if self._accept_op("*"):
            return SelectItem(expression=None, alias=None, is_star=True)
        expr = self._parse_expr()
        alias = None
        if self._accept_keyword("AS"):
            alias_token = self._next()
            alias = alias_token.value
        else:
            token = self._peek()
            if (
                token is not None
                and token.kind == "name"
                and token.upper() not in ("FROM",)
            ):
                alias = self._next().value
        return SelectItem(expression=expr, alias=alias)

    def _parse_order_item(self) -> tuple[SqlExpr, bool]:
        expr = self._parse_expr()
        ascending = True
        keyword = self._accept_keyword("ASC", "DESC")
        if keyword == "DESC":
            ascending = False
        return expr, ascending

    def _parse_table_ref(self) -> tuple[str, str]:
        token = self._next()
        if token.kind != "name":
            raise SQLSyntaxError(f"expected table name, found {token.value!r}")
        name = token.value
        alias = name
        if self._accept_keyword("AS"):
            alias = self._next().value
        else:
            peek = self._peek()
            if (
                peek is not None
                and peek.kind == "name"
                and peek.upper()
                not in ("WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "ON", "INNER", "LEFT", "JOIN")
            ):
                alias = self._next().value
        return name, alias

    def _parse_insert(self) -> InsertStatement:
        self._expect_keyword("INTO")
        table = self._next().value
        columns: Optional[list[str]] = None
        if self._accept_op("("):
            columns = [self._next().value]
            while self._accept_op(","):
                columns.append(self._next().value)
            self._expect_op(")")
        if self._accept_keyword("VALUES"):
            values = [self._parse_value_tuple()]
            while self._accept_op(","):
                values.append(self._parse_value_tuple())
            return InsertStatement(table=table, columns=columns, values=values, select=None)
        # INSERT ... SELECT, optionally wrapped in parentheses.
        wrapped = self._accept_op("(")
        select = self._parse_select()
        if wrapped:
            self._expect_op(")")
        return InsertStatement(table=table, columns=columns, values=None, select=select)

    def _parse_value_tuple(self) -> list[SqlExpr]:
        self._expect_op("(")
        values = [self._parse_expr()]
        while self._accept_op(","):
            values.append(self._parse_expr())
        self._expect_op(")")
        return values

    def _parse_update(self) -> UpdateStatement:
        table = self._next().value
        self._expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self._accept_op(","):
            assignments.append(self._parse_assignment())
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expr()
        return UpdateStatement(table=table, assignments=assignments, where=where)

    def _parse_assignment(self) -> tuple[str, SqlExpr]:
        # Accept both "col = expr" and the paper's "(col) = expr".
        parenthesised = self._accept_op("(")
        column = self._next().value
        if parenthesised:
            self._expect_op(")")
        self._expect_op("=")
        return column, self._parse_expr()

    def _parse_delete(self) -> DeleteStatement:
        self._expect_keyword("FROM")
        table = self._next().value
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expr()
        return DeleteStatement(table=table, where=where)

    # -- expressions ------------------------------------------------------------
    def _parse_expr(self) -> SqlExpr:
        return self._parse_or()

    def _parse_or(self) -> SqlExpr:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            right = self._parse_and()
            left = SqlBinary("or", left, right)
        return left

    def _parse_and(self) -> SqlExpr:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            right = self._parse_not()
            left = SqlBinary("and", left, right)
        return left

    def _parse_not(self) -> SqlExpr:
        if self._accept_keyword("NOT"):
            return SqlUnaryNot(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> SqlExpr:
        left = self._parse_additive()
        if self._accept_keyword("IS"):
            negated = self._accept_keyword("NOT") is not None
            self._expect_keyword("NULL")
            return SqlIsNull(left, negated)
        negated = False
        if self._accept_keyword("NOT"):
            negated = True
            self._expect_keyword("IN")
            return self._parse_in(left, negated)
        if self._accept_keyword("IN"):
            return self._parse_in(left, negated)
        token = self._peek()
        if token is not None and token.kind == "op" and token.value in ("=", "<>", "!=", "<", "<=", ">", ">="):
            op = self._next().value
            right = self._parse_additive()
            return SqlBinary(op, left, right)
        return left

    def _parse_in(self, left: SqlExpr, negated: bool) -> SqlExpr:
        self._expect_op("(")
        if self._accept_keyword("SELECT"):
            select = self._parse_select_body()
            self._expect_op(")")
            return SqlIn(left, values=None, subquery=select, negated=negated)
        values = [self._parse_expr()]
        while self._accept_op(","):
            values.append(self._parse_expr())
        self._expect_op(")")
        return SqlIn(left, values=values, subquery=None, negated=negated)

    def _parse_additive(self) -> SqlExpr:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token is not None and token.kind == "op" and token.value in ("+", "-"):
                op = self._next().value
                right = self._parse_multiplicative()
                left = SqlBinary(op, left, right)
            else:
                return left

    def _parse_multiplicative(self) -> SqlExpr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token is not None and token.kind == "op" and token.value in ("*", "/"):
                op = self._next().value
                right = self._parse_unary()
                left = SqlBinary(op, left, right)
            else:
                return left

    def _parse_unary(self) -> SqlExpr:
        if self._accept_op("-"):
            return SqlBinary("-", SqlLiteral(0), self._parse_unary())
        if self._accept_op("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> SqlExpr:
        token = self._peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of expression")
        if token.kind == "number":
            self._next()
            text = token.value
            if "." in text or "e" in text.lower():
                return SqlLiteral(float(text))
            return SqlLiteral(int(text))
        if token.kind == "string":
            self._next()
            return SqlLiteral(token.value[1:-1].replace("''", "'"))
        if token.kind == "param":
            self._next()
            return SqlParam(token.value[1:])
        if token.kind == "op" and token.value == "(":
            self._next()
            if self._accept_keyword("SELECT"):
                select = self._parse_select_body()
                self._expect_op(")")
                return SqlSubquery(select)
            expr = self._parse_expr()
            self._expect_op(")")
            return expr
        if token.kind == "name":
            upper = token.upper()
            if upper == "NULL":
                self._next()
                return SqlLiteral(None)
            if upper in ("TRUE", "FALSE"):
                self._next()
                return SqlLiteral(upper == "TRUE")
            self._next()
            # Function call?
            if self._accept_op("("):
                if self._accept_op("*"):
                    self._expect_op(")")
                    return SqlFunction(token.value.lower(), [], star=True)
                if self._accept_op(")"):
                    return SqlFunction(token.value.lower(), [])
                args = [self._parse_expr()]
                while self._accept_op(","):
                    args.append(self._parse_expr())
                self._expect_op(")")
                return SqlFunction(token.value.lower(), args)
            return SqlColumn(token.value)
        raise SQLSyntaxError(f"unexpected token {token.value!r}")


def parse_sql(text: str) -> Any:
    """Parse a single SQL statement into its AST."""
    parser = _Parser(_tokenize(text))
    statement = parser.parse_statement()
    if not parser.at_end():
        leftover = parser._peek()
        raise SQLSyntaxError(f"unexpected trailing token {leftover.value!r}")
    return statement


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------


class _Compiler:
    """Compile SQL AST expressions into runtime Expressions, resolving
    parameters and (correlated-free) subqueries eagerly."""

    def __init__(self, database: "Database", parameters: Mapping[str, Any]) -> None:  # noqa: F821
        self.database = database
        self.parameters = parameters
        self.aggregates: list[Aggregate] = []
        self._agg_counter = 0

    # Aggregates are replaced by column references into the post-aggregation
    # row; the GroupByAggregate operator computes them.
    def compile(self, node: SqlExpr, allow_aggregates: bool = False) -> Expression:
        if isinstance(node, SqlLiteral):
            return Literal(node.value)
        if isinstance(node, SqlColumn):
            return ColumnRef(node.name)
        if isinstance(node, SqlParam):
            if node.name not in self.parameters:
                raise QueryError(f"missing SQL parameter :{node.name}")
            return Literal(self.parameters[node.name])
        if isinstance(node, SqlBinary):
            if node.op == "and":
                return And([self.compile(node.left, allow_aggregates), self.compile(node.right, allow_aggregates)])
            if node.op == "or":
                return Or([self.compile(node.left, allow_aggregates), self.compile(node.right, allow_aggregates)])
            if node.op in ("=", "<>", "!=", "<", "<=", ">", ">="):
                return Comparison(node.op, self.compile(node.left, allow_aggregates), self.compile(node.right, allow_aggregates))
            return Arithmetic(node.op, self.compile(node.left, allow_aggregates), self.compile(node.right, allow_aggregates))
        if isinstance(node, SqlUnaryNot):
            return Not(self.compile(node.inner, allow_aggregates))
        if isinstance(node, SqlIsNull):
            return IsNull(self.compile(node.inner, allow_aggregates), node.negated)
        if isinstance(node, SqlIn):
            inner = self.compile(node.inner, allow_aggregates)
            if node.subquery is not None:
                rows = execute_select(self.database, node.subquery, self.parameters)
                values = [next(iter(r.values())) for r in rows]
            else:
                values = [self.compile(v).evaluate({}) for v in (node.values or [])]
            return InSet(inner, values, node.negated)
        if isinstance(node, SqlSubquery):
            rows = execute_select(self.database, node.select, self.parameters)
            if not rows:
                return Literal(None)
            if len(rows) > 1 or len(rows[0]) != 1:
                raise QueryError("scalar subquery must return one row with one column")
            return Literal(next(iter(rows[0].values())))
        if isinstance(node, SqlFunction):
            if node.name in _GRAPH_FUNCS:
                # Membership fallback: resolve the id set through the
                # interval index.  When the predicate can drive the
                # access path instead, the planner consumes it before
                # it ever reaches a filter.
                from .planner import compile_graph_function

                return compile_graph_function(node, self.database, self)
            if node.name in _AGGREGATE_FUNCS:
                if not allow_aggregates:
                    raise QueryError(f"aggregate {node.name!r} not allowed here")
                arg = None
                if not node.star and node.args:
                    arg = self.compile(node.args[0])
                output_name = f"__agg{self._agg_counter}"
                self._agg_counter += 1
                self.aggregates.append(Aggregate(node.name, arg, output_name))
                return ColumnRef(output_name)
            args = [self.compile(a, allow_aggregates) for a in node.args]
            return FunctionCall(node.name, args)
        raise QueryError(f"cannot compile SQL expression node {node!r}")


def _contains_aggregate(node: SqlExpr) -> bool:
    if isinstance(node, SqlFunction):
        if node.name in _AGGREGATE_FUNCS:
            return True
        return any(_contains_aggregate(a) for a in node.args)
    if isinstance(node, SqlBinary):
        return _contains_aggregate(node.left) or _contains_aggregate(node.right)
    if isinstance(node, (SqlUnaryNot,)):
        return _contains_aggregate(node.inner)
    if isinstance(node, SqlIsNull):
        return _contains_aggregate(node.inner)
    if isinstance(node, SqlIn):
        return _contains_aggregate(node.inner)
    return False


def _expr_name(node: SqlExpr, fallback: str) -> str:
    if isinstance(node, SqlColumn):
        return node.name.split(".")[-1]
    if isinstance(node, SqlFunction):
        if node.args and isinstance(node.args[0], SqlColumn):
            return f"{node.name}_{node.args[0].name.split('.')[-1]}"
        return node.name
    return fallback


def _split_where(
    where: Optional[SqlExpr],
) -> list[SqlExpr]:
    if where is None:
        return []
    if isinstance(where, SqlBinary) and where.op == "and":
        return _split_where(where.left) + _split_where(where.right)
    return [where]


def _column_table(name: str, aliases: Sequence[str]) -> Optional[str]:
    if "." in name:
        prefix = name.split(".", 1)[0]
        if prefix in aliases:
            return prefix
    return None


def execute_select(
    database: "Database",  # noqa: F821
    statement: SelectStatement,
    parameters: Mapping[str, Any],
    mode: Optional[str] = None,
) -> list[RowDict]:
    """Execute a parsed SELECT statement and return its rows.

    Plan construction is delegated to :func:`repro.minidb.planner.plan_select`
    (imported lazily — the planner imports this module's AST).  The built
    plan is recorded as ``database.last_plan`` before execution so cost
    attribution and tests can inspect the access paths taken; subqueries
    plan and run during the outer plan's construction, so ``last_plan``
    always reflects the outermost statement.
    """
    from .planner import plan_select

    plan = plan_select(database, statement, parameters, mode=mode)
    database.last_plan = plan
    return plan.execute()


def execute_sql(
    database: "Database",  # noqa: F821
    text: str,
    parameters: Optional[Mapping[str, Any]] = None,
) -> list[RowDict]:
    """Parse and execute one SQL statement.

    SELECT returns its rows; INSERT/UPDATE/DELETE return a single row
    ``{"rowcount": n}``.
    """
    parameters = parameters or {}
    statement = parse_sql(text)
    if isinstance(statement, SelectStatement):
        return execute_select(database, statement, parameters)
    if isinstance(statement, ExplainStatement):
        from .planner import plan_select

        plan = plan_select(database, statement.select, parameters)
        database.last_plan = plan
        return [{"plan": line} for line in plan.explain().lines]
    compiler = _Compiler(database, parameters)
    if isinstance(statement, InsertStatement):
        table = database.table(statement.table)
        columns = statement.columns or table.schema.column_names
        count = 0
        if statement.values is not None:
            for value_tuple in statement.values:
                if len(value_tuple) != len(columns):
                    raise QueryError("INSERT value count does not match column count")
                values = {
                    column: compiler.compile(expr).evaluate({})
                    for column, expr in zip(columns, value_tuple)
                }
                table.insert(values)
                count += 1
        else:
            rows = execute_select(database, statement.select, parameters)
            for row in rows:
                values = dict(zip(columns, row.values()))
                table.insert(values)
                count += 1
        return [{"rowcount": count}]
    if isinstance(statement, UpdateStatement):
        table = database.table(statement.table)
        predicate = (
            compiler.compile(statement.where) if statement.where is not None else None
        )
        assignments = [
            (column, compiler.compile(expr)) for column, expr in statement.assignments
        ]
        count = 0
        for rid, row in list(table.scan()):
            ctx = table.schema.row_to_mapping(row)
            if predicate is None or predicate.evaluate(ctx):
                changes = {column: expr.evaluate(ctx) for column, expr in assignments}
                table.update_row(rid, changes)
                count += 1
        return [{"rowcount": count}]
    if isinstance(statement, DeleteStatement):
        table = database.table(statement.table)
        predicate = (
            compiler.compile(statement.where) if statement.where is not None else None
        )
        count = table.delete_where(predicate)
        return [{"rowcount": count}]
    raise QueryError(f"unsupported statement type {type(statement).__name__}")
