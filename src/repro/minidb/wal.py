"""Write-ahead logging and the framed record files behind durable storage.

Durability in minidb follows the classic snapshot-plus-redo-log recipe
(the disk-based-structured-storage direction of EMBANKS): every logical
mutation is appended to a write-ahead log *before* the owning process is
allowed to forget it, dirty pages are flushed lazily, and recovery
replays the log over the last checkpoint snapshot.

Two file formats share one framing scheme:

* a **record frame** is ``<u32 payload length><u32 crc32><payload>``.
  The CRC covers the payload only; a frame whose length field runs past
  the end of the file, or whose checksum does not match, marks the
  *torn tail* left by a crash mid-append.  Iteration stops cleanly at
  the first bad frame and reports the safe truncation offset, so a
  reopened log can cut the tail and keep appending.
* every file starts with an 8-byte magic/version header; the WAL
  additionally stores an **epoch** number that ties it to the snapshot
  it extends.  A checkpoint bumps the epoch in both places; finding a
  WAL whose epoch disagrees with the snapshot means the log belongs to
  a different (older or half-finished) checkpoint generation and must
  be discarded rather than replayed.

Payloads are pickled Python tuples.  The WAL is *logical*: it records
table-level operations (insert/update/delete/DDL), not page images, so
replaying it against the exactly-restored snapshot state reproduces
record ids deterministically.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, BinaryIO, Optional

from .errors import StorageError

#: Frame header: payload length and CRC32, both little-endian u32.
_FRAME = struct.Struct("<II")

FRAME_HEADER_SIZE = _FRAME.size


class FileOps:
    """The file-operation seam of the durable storage layer.

    Every *mutating* file operation — opening for write, writing,
    truncating, fsyncing, renaming, removing — goes through one of these
    objects so tests can substitute a fault-injecting implementation
    (:class:`repro.minidb.testing.FaultInjector`) that crashes the
    process model at an arbitrary I/O point.  Reads are not routed: a
    crash during a read leaves no durability hazard.

    Files are opened unbuffered: the crash model is a process kill with
    the OS surviving, so everything handed to the OS before the crash
    point persists and nothing lingers in user-space buffers.
    """

    def open(self, path: str | os.PathLike, mode: str) -> BinaryIO:
        return open(path, mode, buffering=0)

    def fsync(self, fh: BinaryIO) -> None:
        fh.flush()
        os.fsync(fh.fileno())

    def replace(self, src: str | os.PathLike, dst: str | os.PathLike) -> None:
        os.replace(src, dst)

    def remove(self, path: str | os.PathLike) -> None:
        os.remove(path)

#: File magics (8 bytes: 4 magic + 2 version + 2 reserved).
WAL_MAGIC = b"MDBW\x01\x00\x00\x00"
SEGMENT_MAGIC = b"MDBS\x01\x00\x00\x00"

#: Op tag of a *cut marker* record: ``(WAL_CUT_OP, n)`` marks the point
#: where logical unit-of-work *n* (a crawl round, for the sharded engine)
#: is fully logged.  Cut markers are not table mutations — replay skips
#: them — but :meth:`WriteAheadLog.replay` can truncate the log at the
#: last cut ``<= n``, which is how a shard database rewinds to exactly
#: the round recorded in the coordinator manifest.
WAL_CUT_OP = "__cut__"

#: The WAL header stores the epoch right after the magic, as u64.
_EPOCH = struct.Struct("<Q")
WAL_HEADER_SIZE = len(WAL_MAGIC) + _EPOCH.size


def write_frame(fh: BinaryIO, payload: bytes) -> int:
    """Append one framed record at the current position; returns its offset."""
    offset = fh.tell()
    fh.write(_FRAME.pack(len(payload), zlib.crc32(payload)))
    fh.write(payload)
    return offset


def read_frame_at(fh: BinaryIO, offset: int) -> bytes:
    """Read and verify the frame at *offset*, raising :class:`StorageError` on damage."""
    fh.seek(offset)
    header = fh.read(_FRAME.size)
    if len(header) < _FRAME.size:
        raise StorageError(f"truncated frame header at offset {offset}")
    length, crc = _FRAME.unpack(header)
    payload = fh.read(length)
    if len(payload) < length or zlib.crc32(payload) != crc:
        raise StorageError(f"corrupt frame at offset {offset}")
    return payload


@dataclass
class TailScan:
    """Result of scanning a framed file: payloads plus the safe end offset.

    ``ends[i]`` is the file offset just past frame *i*, so a caller can
    truncate the file immediately after any intact frame.
    """

    payloads: list[bytes]
    good_end: int
    torn: bool
    ends: list[int] = field(default_factory=list)


def scan_frames(fh: BinaryIO, start: int) -> TailScan:
    """Read frames from *start* until EOF or the first damaged frame.

    A damaged frame (short header, short payload, or CRC mismatch) is the
    torn tail of a crashed append; everything before it is intact and
    everything after it is unrecoverable, so the scan stops there.
    """
    payloads: list[bytes] = []
    ends: list[int] = []
    offset = start
    fh.seek(0, io.SEEK_END)
    file_end = fh.tell()
    torn = False
    while offset < file_end:
        header_end = offset + _FRAME.size
        if header_end > file_end:
            torn = True
            break
        fh.seek(offset)
        length, crc = _FRAME.unpack(fh.read(_FRAME.size))
        payload_end = header_end + length
        if payload_end > file_end:
            torn = True
            break
        payload = fh.read(length)
        if zlib.crc32(payload) != crc:
            torn = True
            break
        payloads.append(payload)
        ends.append(payload_end)
        offset = payload_end
    return TailScan(payloads=payloads, good_end=offset, torn=torn, ends=ends)


class WriteAheadLog:
    """An append-only logical redo log with epoch-stamped truncation.

    Records are arbitrary picklable tuples.  ``append`` flushes to the
    OS after every record (the simulated durability boundary); ``sync``
    additionally fsyncs, and is called by checkpoints.

    *fsync_batch* adds group commit on top: ``0`` (the default) keeps
    the behaviour above — no per-record fsync, durability only at
    checkpoints; ``N >= 1`` guarantees an fsync at least once every N
    appended records, so ``1`` is classic fsync-per-commit durability
    and larger N coalesces the fsyncs of a whole write burst (e.g. one
    engine round) into one disk barrier.  ``syncs_performed`` counts
    the fsyncs issued either way.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        fsync_batch: int = 0,
        ops: Optional[FileOps] = None,
    ) -> None:
        self.path = os.fspath(path)
        self.fsync_batch = max(int(fsync_batch), 0)
        self.ops = ops if ops is not None else FileOps()
        self.bytes_written = 0
        self.records_written = 0
        self.syncs_performed = 0
        self._pending_records = 0
        self._epoch = 0
        if os.path.exists(self.path):
            self._fh = self.ops.open(self.path, "r+b")
            self._epoch = self._read_header()
            self._fh.seek(0, io.SEEK_END)
        else:
            self._fh = self.ops.open(self.path, "w+b")
            self._write_header(0)

    # -- header ----------------------------------------------------------
    def _write_header(self, epoch: int) -> None:
        self._fh.seek(0)
        self._fh.truncate()
        self._fh.write(WAL_MAGIC)
        self._fh.write(_EPOCH.pack(epoch))
        self._fh.flush()
        self._epoch = epoch

    def _read_header(self) -> int:
        self._fh.seek(0)
        header = self._fh.read(WAL_HEADER_SIZE)
        if len(header) < WAL_HEADER_SIZE:
            # A header shorter than expected is the torn remnant of a crash
            # during creation or reset — both windows where the log holds no
            # records yet.  Rewrite it as an empty epoch-0 log; if a newer
            # snapshot exists, its epoch check discards this log anyway.
            # A *full-length* header with the wrong magic stays fatal: that
            # is a foreign file, not a torn write.
            if WAL_MAGIC.startswith(header[: len(WAL_MAGIC)]):
                self._write_header(0)
                return 0
            raise StorageError(f"{self.path} is not a minidb WAL (bad magic)")
        if header[: len(WAL_MAGIC)] != WAL_MAGIC:
            raise StorageError(f"{self.path} is not a minidb WAL (bad magic)")
        return _EPOCH.unpack(header[len(WAL_MAGIC) :])[0]

    @property
    def epoch(self) -> int:
        return self._epoch

    # -- appending -------------------------------------------------------
    def append(self, record: tuple) -> None:
        """Serialise and append one logical record, flushing to the OS.

        With group commit enabled (``fsync_batch > 0``) every N-th append
        also fsyncs, so at most N records are ever exposed to a power
        loss between explicit :meth:`sync` points.
        """
        payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        self._fh.seek(0, io.SEEK_END)
        write_frame(self._fh, payload)
        self._fh.flush()
        self.bytes_written += _FRAME.size + len(payload)
        self.records_written += 1
        if self.fsync_batch:
            self._pending_records += 1
            if self._pending_records >= self.fsync_batch:
                self.sync()

    def sync(self) -> None:
        self.ops.fsync(self._fh)
        self.syncs_performed += 1
        self._pending_records = 0

    def append_cut(self, cut: int) -> None:
        """Append a cut marker: every record of unit-of-work *cut* is logged."""
        self.append((WAL_CUT_OP, int(cut)))

    # -- replay / truncation ---------------------------------------------
    def replay(
        self,
        expected_epoch: Optional[int] = None,
        upto_cut: Optional[int] = None,
    ) -> list[tuple]:
        """Return every intact record, truncating any torn tail in place.

        When *expected_epoch* is given and disagrees with the log's own
        epoch, the log belongs to a different checkpoint generation: its
        records are already folded into (or superseded by) the snapshot,
        so it is reset instead of replayed.

        When *upto_cut* is given, replay stops at (and the file is
        truncated after) the **last cut marker whose number is <=
        upto_cut**; records past it belong to units of work newer than
        the caller's recovery target and are discarded.  A log with no
        such marker replays nothing: all of its content postdates the
        target (the snapshot alone is already at or past it).
        """
        if expected_epoch is not None and expected_epoch != self._epoch:
            self.reset(expected_epoch)
            return []
        scan = scan_frames(self._fh, WAL_HEADER_SIZE)
        records = [pickle.loads(payload) for payload in scan.payloads]
        if upto_cut is None:
            if scan.torn:
                self._fh.truncate(scan.good_end)
                self._fh.flush()
            self._fh.seek(0, io.SEEK_END)
            return records
        keep = 0
        cut_end = WAL_HEADER_SIZE
        for index, record in enumerate(records):
            if (
                isinstance(record, tuple)
                and len(record) == 2
                and record[0] == WAL_CUT_OP
                and record[1] <= upto_cut
            ):
                keep = index + 1
                cut_end = scan.ends[index]
        self._fh.truncate(cut_end)
        self._fh.flush()
        self._fh.seek(0, io.SEEK_END)
        return records[:keep]

    def reset(self, epoch: int) -> None:
        """Discard every record and stamp the log with a new epoch."""
        self._write_header(epoch)
        self.ops.fsync(self._fh)
        self._pending_records = 0

    def close(self) -> None:
        if not self._fh.closed:
            if self._pending_records:
                # Don't leave an un-fsynced group-commit tail behind.
                self.sync()
            self._fh.flush()
            self._fh.close()


def dump_record(record: Any) -> bytes:
    """Pickle a snapshot/segment payload (shared helper)."""
    return pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)


def load_record(payload: bytes) -> Any:
    return pickle.loads(payload)
