"""Secondary indexes: hash (equality) and ordered (range) indexes.

Indexes map key tuples to lists of :class:`RecordId`s.  The index
directory itself is kept in memory (as a real engine would keep upper
B-tree levels cached), but every *probe that dereferences a record id*
goes back through the table's heap file and is therefore charged page
I/O by the buffer pool.  This is exactly the access pattern the paper
describes for ``SingleProbe``: small records, little locality, so each
probe tends to touch a different page.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator, Optional, Sequence

from .errors import CatalogError, StorageError
from .pages import RecordId
from .types import Schema

#: Sentinel distinguishing "absent" from a stored None in bucket pops.
_MISSING = object()


class Index:
    """Base class for secondary indexes over a subset of a table's columns."""

    def __init__(self, name: str, schema: Schema, key_columns: Sequence[str]) -> None:
        if not key_columns:
            raise CatalogError(f"index {name!r} needs at least one key column")
        self.name = name
        self.schema = schema
        self.key_columns = tuple(key_columns)
        self._positions = schema.project_positions(key_columns)
        #: Number of key probes served, for instrumentation.
        self.probe_count = 0
        #: Number of entry deletions processed since the last clear().
        #: The planner only lets a *secondary* index drive an
        #: index-nested-loop join while this is zero: an append-only
        #: index keeps its postings in heap insertion order, so probe
        #: results match what a hash join built from a table scan would
        #: produce row-for-row.  (Unique primary-key indexes are always
        #: safe regardless.)
        self.deletions = 0
        # Short keys (every index in the system is 1-2 columns) build
        # without a generator frame per row.
        if len(self._positions) == 1:
            position = self._positions[0]
            self.key_of = lambda row: (row[position],)
        elif len(self._positions) == 2:
            first, second = self._positions
            self.key_of = lambda row: (row[first], row[second])

    def key_of(self, row: Sequence[Any]) -> tuple:
        return tuple(row[p] for p in self._positions)

    # -- maintenance -------------------------------------------------------
    def insert(self, row: Sequence[Any], rid: RecordId) -> None:
        raise NotImplementedError

    def insert_many(self, pairs: Iterable[tuple[Sequence[Any], RecordId]]) -> None:
        """Add many ``(row, rid)`` entries; subclasses may batch per key.

        This is the bulk-load path used by index backfill and by
        post-recovery rebuilds (one heap scan feeding every index).
        """
        for row, rid in pairs:
            self.insert(row, rid)

    def delete(self, row: Sequence[Any], rid: RecordId) -> None:
        raise NotImplementedError

    def delete_many(self, pairs: Iterable[tuple[Sequence[Any], RecordId]]) -> None:
        """Remove many ``(row, rid)`` entries; subclasses may batch per key."""
        for row, rid in pairs:
            self.delete(row, rid)

    def clear(self) -> None:
        raise NotImplementedError

    # -- lookups ---------------------------------------------------------------
    def search(self, key: tuple) -> list[RecordId]:
        raise NotImplementedError

    def contains(self, key: tuple) -> bool:
        """Whether any entry exists under *key* (no result-list allocation)."""
        return bool(self.search(key))

    @property
    def key_count(self) -> int:
        """Number of distinct keys — the planner's fan-out statistic."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class HashIndex(Index):
    """Equality-only index: key tuple -> insertion-ordered set of record ids.

    Buckets are dicts used as ordered sets (``rid -> None``): membership
    and deletion are O(1) regardless of bucket size — the old record-id
    *lists* made every delete a linear probe, which was the serial
    crawler's dominant cost on hot buckets such as ``status='frontier'``
    — while iteration still yields record ids in insertion order, so
    :meth:`search` results are byte-for-byte what the list version
    returned.
    """

    def __init__(self, name: str, schema: Schema, key_columns: Sequence[str]) -> None:
        super().__init__(name, schema, key_columns)
        self._buckets: dict[tuple, dict[RecordId, None]] = {}
        self._entries = 0

    def insert(self, row: Sequence[Any], rid: RecordId) -> None:
        bucket = self._buckets.setdefault(self.key_of(row), {})
        if rid not in bucket:
            bucket[rid] = None
            self._entries += 1

    def insert_many(self, pairs: Iterable[tuple[Sequence[Any], RecordId]]) -> None:
        buckets = self._buckets
        added = 0
        if len(self._positions) == 1:
            # Inline the single-column key build: bulk loads pay one dict
            # op per pair instead of an extra call per pair.
            position = self._positions[0]
            for row, rid in pairs:
                bucket = buckets.setdefault((row[position],), {})
                if rid not in bucket:
                    bucket[rid] = None
                    added += 1
        else:
            key_of = self.key_of
            for row, rid in pairs:
                bucket = buckets.setdefault(key_of(row), {})
                if rid not in bucket:
                    bucket[rid] = None
                    added += 1
        self._entries += added

    def delete(self, row: Sequence[Any], rid: RecordId) -> None:
        key = self.key_of(row)
        bucket = self._buckets.get(key)
        if bucket is None or bucket.pop(rid, _MISSING) is _MISSING:
            raise StorageError(f"index {self.name!r}: {rid} not found under key {key!r}")
        self._entries -= 1
        self.deletions += 1
        if not bucket:
            del self._buckets[key]

    def clear(self) -> None:
        self._buckets.clear()
        self._entries = 0
        self.deletions = 0

    def search(self, key: tuple) -> list[RecordId]:
        self.probe_count += 1
        return list(self._buckets.get(tuple(key), ()))

    def contains(self, key: tuple) -> bool:
        self.probe_count += 1
        return key in self._buckets

    def keys(self) -> Iterator[tuple]:
        return iter(self._buckets)

    @property
    def key_count(self) -> int:
        return len(self._buckets)

    def __len__(self) -> int:
        return self._entries


class OrderedIndex(Index):
    """Sorted index supporting equality and range lookups.

    Maintains a sorted list of keys plus a parallel dict of postings.  This
    models a B-tree whose inner nodes are memory-resident.
    """

    def __init__(self, name: str, schema: Schema, key_columns: Sequence[str]) -> None:
        super().__init__(name, schema, key_columns)
        self._keys: list[tuple] = []
        self._postings: dict[tuple, list[RecordId]] = {}
        self._entries = 0

    def insert(self, row: Sequence[Any], rid: RecordId) -> None:
        key = self.key_of(row)
        if key not in self._postings:
            bisect.insort(self._keys, key)
            self._postings[key] = []
        self._postings[key].append(rid)
        self._entries += 1

    def insert_many(self, pairs: Iterable[tuple[Sequence[Any], RecordId]]) -> None:
        """Bulk load: one sort over the merged key list instead of per-row insort.

        Timsort is near-linear on the (typical) mostly-sorted bulk input,
        where per-row ``insort`` into the middle of a large key list is
        quadratic in the worst case.
        """
        postings = self._postings
        key_of = self.key_of
        new_keys: list[tuple] = []
        added = 0
        for row, rid in pairs:
            key = key_of(row)
            bucket = postings.get(key)
            if bucket is None:
                postings[key] = [rid]
                new_keys.append(key)
            else:
                bucket.append(rid)
            added += 1
        if new_keys:
            self._keys.extend(new_keys)
            self._keys.sort()
        self._entries += added

    def delete(self, row: Sequence[Any], rid: RecordId) -> None:
        key = self.key_of(row)
        bucket = self._postings.get(key)
        if not bucket or rid not in bucket:
            raise StorageError(f"index {self.name!r}: {rid} not found under key {key!r}")
        bucket.remove(rid)
        self._entries -= 1
        self.deletions += 1
        if not bucket:
            del self._postings[key]
            pos = bisect.bisect_left(self._keys, key)
            if pos < len(self._keys) and self._keys[pos] == key:
                del self._keys[pos]

    def clear(self) -> None:
        self._keys.clear()
        self._postings.clear()
        self._entries = 0
        self.deletions = 0

    def search(self, key: tuple) -> list[RecordId]:
        self.probe_count += 1
        return list(self._postings.get(tuple(key), ()))

    def range_search(
        self,
        low: Optional[tuple] = None,
        high: Optional[tuple] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[tuple[tuple, RecordId]]:
        """Yield ``(key, rid)`` pairs with ``low <= key <= high`` in key order.

        Open bounds are expressed by passing ``None``.  Prefix keys work
        naturally through tuple comparison when the caller pads bounds
        appropriately.
        """
        self.probe_count += 1
        if low is None:
            start = 0
        else:
            low = tuple(low)
            start = (
                bisect.bisect_left(self._keys, low)
                if include_low
                else bisect.bisect_right(self._keys, low)
            )
        for pos in range(start, len(self._keys)):
            key = self._keys[pos]
            if high is not None:
                high_t = tuple(high)
                if include_high:
                    if key > high_t:
                        break
                elif key >= high_t:
                    break
            for rid in self._postings[key]:
                yield key, rid

    def ordered_keys(self) -> list[tuple]:
        return list(self._keys)

    def min_key(self) -> Optional[tuple]:
        return self._keys[0] if self._keys else None

    def max_key(self) -> Optional[tuple]:
        return self._keys[-1] if self._keys else None

    @property
    def key_count(self) -> int:
        return len(self._keys)

    def __len__(self) -> int:
        return self._entries


def build_index(
    kind: str, name: str, schema: Schema, key_columns: Iterable[str]
) -> Index:
    """Factory: ``kind`` is ``"hash"``, ``"ordered"`` or ``"interval"``."""
    key_columns = list(key_columns)
    if kind == "hash":
        return HashIndex(name, schema, key_columns)
    if kind == "ordered":
        return OrderedIndex(name, schema, key_columns)
    if kind == "interval":
        from .intervals import IntervalIndex

        return IntervalIndex(name, schema, key_columns)
    raise CatalogError(
        f"unknown index kind {kind!r} (expected 'hash', 'ordered' or 'interval')"
    )
