"""minidb: the relational-engine substrate for the Focus reproduction.

The paper implements its focused crawler, classifier, and distiller as
clients of IBM DB2, and argues that the database is "not merely a robust
data repository, but takes an active role in the computations involved in
resource discovery."  minidb is a small page-based relational engine that
plays DB2's role here: tables on slotted pages behind an LRU buffer pool
with full I/O accounting, hash and ordered secondary indexes, a library
of relational operators (including sort-merge and left outer joins), a
fluent query builder, a compact SQL dialect for ad-hoc monitoring
queries, and statement triggers.

Typical use::

    from repro.minidb import Database, make_schema, INTEGER, FLOAT, col, lit

    db = Database(buffer_pool_pages=512)
    crawl = db.create_table("CRAWL", make_schema(
        ("oid", INTEGER, False), ("relevance", FLOAT), primary_key=["oid"]))
    crawl.insert({"oid": 1, "relevance": 0.9})
    rows = db.query("CRAWL").where(col("relevance") > lit(0.5)).run()
"""

from .backend import DurableBackend, MemoryBackend, StorageBackend
from .buffer_pool import BufferPool, IOStats
from .compactor import Compactor
from .database import Database
from .storage_config import StorageConfig
from .wal import WAL_CUT_OP, FileOps, WriteAheadLog
from .errors import (
    BufferPoolError,
    CatalogError,
    ConstraintError,
    MiniDBError,
    QueryError,
    SchemaError,
    SQLSyntaxError,
    StorageError,
)
from .expressions import (
    Expression,
    and_,
    col,
    func,
    in_set,
    is_null,
    lit,
    not_,
    or_,
)
from .index import HashIndex, OrderedIndex
from .intervals import IntervalIndex
from .operators import Aggregate
from .pages import DEFAULT_PAGE_SIZE, PageId, RecordId
from .planner import ExplainResult, Plan, planner_mode
from .query import Query, legacy_scan_rows
from .sql import execute_sql, parse_sql
from .table import Table
from .triggers import Trigger
from .types import BLOB, FLOAT, INTEGER, TEXT, Column, ColumnType, Schema, make_schema

__all__ = [
    "Aggregate",
    "BLOB",
    "BufferPool",
    "BufferPoolError",
    "CatalogError",
    "Column",
    "ColumnType",
    "Compactor",
    "ConstraintError",
    "Database",
    "DEFAULT_PAGE_SIZE",
    "DurableBackend",
    "ExplainResult",
    "Expression",
    "FLOAT",
    "FileOps",
    "HashIndex",
    "INTEGER",
    "IOStats",
    "IntervalIndex",
    "MemoryBackend",
    "MiniDBError",
    "OrderedIndex",
    "PageId",
    "Plan",
    "Query",
    "QueryError",
    "RecordId",
    "Schema",
    "SchemaError",
    "SQLSyntaxError",
    "StorageBackend",
    "StorageConfig",
    "StorageError",
    "TEXT",
    "Table",
    "Trigger",
    "WAL_CUT_OP",
    "WriteAheadLog",
    "and_",
    "col",
    "execute_sql",
    "func",
    "in_set",
    "is_null",
    "legacy_scan_rows",
    "lit",
    "make_schema",
    "not_",
    "or_",
    "parse_sql",
    "planner_mode",
]
