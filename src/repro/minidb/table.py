"""Tables: schema + heap file + secondary indexes + constraints.

A :class:`Table` is the unit the rest of the system works with.  Its
mutation API accepts either positional rows or column-name mappings;
all mutations keep every secondary index and the (optional) primary-key
index consistent, and fire any statement triggers registered on the
owning database.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Optional, Sequence

from .buffer_pool import BufferPool
from .errors import CatalogError, ConstraintError, QueryError, SchemaError
from .expressions import Expression
from .index import HashIndex, Index, OrderedIndex, build_index
from .pages import DEFAULT_PAGE_SIZE, RecordId
from .storage import HeapFile
from .types import Row, Schema


class Table:
    """A named relation with optional primary key and secondary indexes."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        file_id: int,
        buffer_pool: BufferPool,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> None:
        self.name = name
        self.schema = schema
        self.heap = HeapFile(file_id, schema, buffer_pool, page_size)
        self.indexes: dict[str, Index] = {}
        self._pk_index: Optional[HashIndex] = None
        if schema.primary_key:
            self._pk_index = HashIndex(
                f"{name}_pk", schema, list(schema.primary_key)
            )
        #: Hooks invoked after a mutation: callables taking (event, table, rows).
        self._mutation_listeners: list[Callable[[str, "Table", list[Row]], None]] = []
        #: Write-ahead journal sink (set by a durable Database); None keeps
        #: the in-memory fast path at a single attribute check per mutation.
        self._journal: Optional[Callable[[tuple], None]] = None

    # -- metadata -----------------------------------------------------------
    @property
    def row_count(self) -> int:
        return self.heap.row_count

    @property
    def page_count(self) -> int:
        return self.heap.page_count

    def __len__(self) -> int:
        return self.row_count

    def add_mutation_listener(
        self, listener: Callable[[str, "Table", list[Row]], None]
    ) -> None:
        self._mutation_listeners.append(listener)

    def set_journal(self, journal: Optional[Callable[[tuple], None]]) -> None:
        """Attach the owning database's write-ahead journal sink."""
        self._journal = journal

    def _log(self, record: tuple) -> None:
        if self._journal is not None:
            self._journal(record)

    @staticmethod
    def _rid_tuple(rid: RecordId) -> tuple[int, int]:
        """The journal encoding of a record id (file id is implied by the table)."""
        return (rid.page_id.page_no, rid.slot)

    # -- index management ------------------------------------------------------
    def create_index(self, name: str, columns: Sequence[str], kind: str = "hash") -> Index:
        """Create and backfill a secondary index over *columns*."""
        index = self.attach_index(name, columns, kind)
        index.insert_many((row, rid) for rid, row in self.heap.scan())
        self._log(("create_index", self.name, name, list(columns), kind))
        return index

    def attach_index(self, name: str, columns: Sequence[str], kind: str = "hash") -> Index:
        """Register an index definition *without* backfilling it.

        Recovery attaches every index first and then rebuilds them all in
        a single heap pass (:meth:`rebuild_indexes`) instead of paying one
        sequential scan per index.
        """
        if name in self.indexes:
            raise CatalogError(f"index {name!r} already exists on table {self.name!r}")
        index = build_index(kind, name, self.schema, columns)
        self.indexes[name] = index
        return index

    def drop_index(self, name: str) -> None:
        if name not in self.indexes:
            raise CatalogError(f"no index {name!r} on table {self.name!r}")
        del self.indexes[name]
        self._log(("drop_index", self.name, name))

    def rebuild_indexes(self) -> None:
        """Rebuild the primary-key and all secondary indexes in one heap pass.

        Used after recovery: the heap is scanned once (sequential I/O via
        :meth:`HeapFile.scan_from`) and the ``(row, rid)`` pairs are bulk
        loaded into every index, instead of per-row inserts with one scan
        per index.
        """
        indexes: list[Index] = list(self.indexes.values())
        if self._pk_index is not None:
            indexes.append(self._pk_index)
        if not indexes:
            return
        for index in indexes:
            index.clear()
        pairs = [(row, rid) for rid, row in self.heap.scan_from(0)]
        for index in indexes:
            index.insert_many(pairs)

    def index_on(self, columns: Sequence[str]) -> Optional[Index]:
        """Return an index whose key is exactly *columns* (order-sensitive), if any."""
        target = tuple(columns)
        if self._pk_index is not None and self._pk_index.key_columns == target:
            return self._pk_index
        for index in self.indexes.values():
            if index.key_columns == target:
                return index
        return None

    def ordered_index_on_prefix(self, columns: Sequence[str]) -> Optional[OrderedIndex]:
        """Return an ordered index whose key starts with *columns*, if any."""
        target = tuple(columns)
        for index in self.indexes.values():
            if isinstance(index, OrderedIndex) and index.key_columns[: len(target)] == target:
                return index
        return None

    # -- mutation -----------------------------------------------------------------
    def insert(self, values: Sequence[Any] | Mapping[str, Any]) -> RecordId:
        """Insert one row (positional or mapping form); returns its record id."""
        row = self._coerce(values)
        self._check_primary_key(row)
        rid = self.heap.insert(row)
        self._index_insert(row, rid)
        self._log(("insert", self.name, [row]))
        self._notify("insert", [row])
        return rid

    def insert_many(self, rows: Iterable[Sequence[Any] | Mapping[str, Any]]) -> list[RecordId]:
        """Atomic bulk insert; returns the record ids of the inserted rows.

        Every row is coerced and checked (types, sizes, primary-key
        uniqueness — including duplicates *within* the batch) before any of
        them touches the heap, so a constraint violation anywhere in the
        batch leaves the table unchanged.  The heap append itself goes
        through :meth:`HeapFile.insert_rows`, which pins each fill page
        once per page switch rather than once per row.
        """
        coerce = self._coerce
        row_size = self.schema.row_size
        check_row_size = self.heap.check_row_size
        pk_index = self._pk_index
        coerced: list[Row] = []
        sizes: list[int] = []
        if pk_index is not None:
            key_of = self.schema.key_of
            existing_key = pk_index.contains
            batch_keys: set[tuple] = set()
            for values in rows:
                row = coerce(values)
                key = key_of(row)
                if None in key:
                    raise ConstraintError(
                        f"table {self.name!r}: primary key {self.schema.primary_key} cannot be NULL"
                    )
                if existing_key(key):
                    raise ConstraintError(
                        f"table {self.name!r}: duplicate primary key {key!r}"
                    )
                size = row_size(row)
                check_row_size(size)
                if key in batch_keys:
                    raise ConstraintError(
                        f"table {self.name!r}: duplicate primary key {key!r} within batch"
                    )
                batch_keys.add(key)
                coerced.append(row)
                sizes.append(size)
        else:
            for values in rows:
                row = coerce(values)
                size = row_size(row)
                check_row_size(size)
                coerced.append(row)
                sizes.append(size)
        if not coerced:
            return []
        rids = self.heap.insert_rows(coerced, sizes)
        # Indexes are bulk-loaded per index (hoisted locals in insert_many)
        # instead of per row through _index_insert's double dispatch.
        pairs = list(zip(coerced, rids))
        if pk_index is not None:
            pk_index.insert_many(pairs)
        for index in self.indexes.values():
            index.insert_many(pairs)
        self._log(("insert", self.name, coerced))
        self._notify("insert", coerced)
        return rids

    def update_row(self, rid: RecordId, changes: Mapping[str, Any]) -> Row:
        """Apply *changes* to the row at *rid*; returns the new row."""
        old = self.heap.read(rid)
        merged = self.schema.row_to_mapping(old)
        merged.update(changes)
        new = self.schema.row_from_mapping(merged)
        if self.schema.primary_key and self.schema.key_of(new) != self.schema.key_of(old):
            self._check_primary_key(new)
        self._index_delete(old, rid)
        self.heap.update(rid, new)
        self._index_insert(new, rid)
        self._log(("update", self.name, [(self._rid_tuple(rid), dict(changes))]))
        self._notify("update", [new])
        return new

    def update_column(self, column: str, updates: Sequence[tuple[RecordId, Any]]) -> int:
        """Bulk-set one column: the single-column fast path of :meth:`update_rows`.

        Identical semantics (validation, index maintenance, journal
        record); the fast path engages only for an unindexed non-key
        column, where per-row change dicts and per-change column
        resolution are pure overhead — the crawl engine's ``wgt_fwd``
        refresh is the canonical caller.  Indexed or primary-key columns
        delegate to :meth:`update_rows`.
        """
        if not updates:
            return 0
        indexed = (self.schema.primary_key and column in self.schema.primary_key) or any(
            column in index.key_columns for index in self.indexes.values()
        )
        if indexed:
            return self.update_rows([(rid, {column: value}) for rid, value in updates])
        position = self.schema.position(column)
        validate = self.schema.validator(column)
        sizeof = self.schema.sizer(column)
        heap = self.heap
        get_page = heap.buffer_pool.get_page
        new_rows: list[Row] = []
        for rid, value in updates:
            heap.check_rid(rid)
            page = get_page(rid.page_id)
            old = page.read(rid.slot)
            coerced = validate(value)
            new = old[:position] + (coerced,) + old[position + 1 :]
            page.update(
                rid.slot, new, old_size=0, new_size=sizeof(coerced) - sizeof(old[position])
            )
            new_rows.append(new)
        if self._journal is not None:
            self._log(
                (
                    "update",
                    self.name,
                    [(self._rid_tuple(rid), {column: value}) for rid, value in updates],
                )
            )
        self._notify("update", new_rows)
        return len(new_rows)

    def update_rows(self, updates: Sequence[tuple[RecordId, Mapping[str, Any]]]) -> int:
        """Apply many per-row change sets in one batch; returns the row count.

        Unlike row-at-a-time :meth:`update_row`, index maintenance is
        limited to the indexes whose key columns actually appear in the
        change sets (and, within those, to rows whose key value really
        changed), and deletions against each index are grouped so a hot
        bucket is rebuilt once instead of probed per row.  Primary-key
        changes fall back to the checked row-at-a-time path.
        """
        if not updates:
            return 0
        changed_columns: set[str] = set()
        for _rid, changes in updates:
            changed_columns.update(changes.keys())
        unknown = changed_columns - set(self.schema.column_names)
        if unknown:
            raise SchemaError(
                f"unknown columns {sorted(unknown)}; have {self.schema.column_names}"
            )
        if self.schema.primary_key and changed_columns & set(self.schema.primary_key):
            for rid, changes in updates:
                self.update_row(rid, changes)
            return len(updates)

        columns = {
            column.name: (index, self.schema.validator(column.name), self.schema.sizer(column.name))
            for index, column in enumerate(self.schema.columns)
        }
        # Patch only the changed columns into the stored row: the untouched
        # values were validated when first stored, and summing per-column
        # size deltas avoids re-measuring (and re-encoding) the whole row.
        heap = self.heap
        get_page = heap.buffer_pool.get_page
        items: list[tuple[RecordId, Row, Row, int]] = []
        for rid, changes in updates:
            heap.check_rid(rid)
            old = get_page(rid.page_id).read(rid.slot)
            patched = list(old)
            size_delta = 0
            for name, value in changes.items():
                index, validate, sizeof = columns[name]
                coerced = validate(value)
                size_delta += sizeof(coerced) - sizeof(old[index])
                patched[index] = coerced
            items.append((rid, old, tuple(patched), size_delta))

        affected = [
            index
            for index in self.indexes.values()
            if changed_columns & set(index.key_columns)
        ]
        # Rows whose key actually moved, computed once per index and reused
        # for both the grouped deletes and the re-inserts.
        moved_by_index = [
            (
                index,
                [
                    (rid, old, new)
                    for rid, old, new, _delta in items
                    if index.key_of(old) != index.key_of(new)
                ],
            )
            for index in affected
        ]
        for index, moved in moved_by_index:
            if moved:
                index.delete_many([(old, rid) for rid, old, _new in moved])
        for rid, _old, new, size_delta in items:
            # Re-fetch through the pool per row: a page object cached from
            # the read pass may have been *evicted* by a later read in a
            # batch wider than the pool, and mutating a detached page
            # would silently lose the write on a durable backend.
            # page.update sets the dirty flag itself.
            get_page(rid.page_id).update(rid.slot, new, old_size=0, new_size=size_delta)
        for index, moved in moved_by_index:
            for rid, _old, new in moved:
                index.insert(new, rid)
        if self._journal is not None:
            self._log(
                (
                    "update",
                    self.name,
                    [(self._rid_tuple(rid), dict(changes)) for rid, changes in updates],
                )
            )
        self._notify("update", [new for _rid, _old, new, _delta in items])
        return len(items)

    def update_where(
        self, predicate: Optional[Expression], changes: Mapping[str, Any]
    ) -> int:
        """Update every row matching *predicate* (all rows when None); returns match count."""
        touched = 0
        for rid, row in list(self.heap.scan()):
            if predicate is None or predicate.evaluate(self.schema.row_to_mapping(row)):
                self.update_row(rid, changes)
                touched += 1
        return touched

    def delete_row(self, rid: RecordId) -> Row:
        row = self.heap.delete(rid)
        self._index_delete(row, rid)
        self._log(("delete", self.name, [self._rid_tuple(rid)]))
        self._notify("delete", [row])
        return row

    def delete_where(self, predicate: Optional[Expression]) -> int:
        """Delete every row matching *predicate* (all rows when None); returns count."""
        deleted: list[RecordId] = []
        for rid, row in list(self.heap.scan()):
            if predicate is None or predicate.evaluate(self.schema.row_to_mapping(row)):
                self.heap.delete(rid)
                self._index_delete(row, rid)
                deleted.append(rid)
        if deleted:
            self._log(("delete", self.name, [self._rid_tuple(rid) for rid in deleted]))
            self._notify("delete", [])
        return len(deleted)

    def truncate(self) -> None:
        self.heap.truncate()
        if self._pk_index is not None:
            self._pk_index.clear()
        for index in self.indexes.values():
            index.clear()
        self._log(("truncate", self.name))
        self._notify("delete", [])

    # -- reads ------------------------------------------------------------------------
    def scan(self) -> Iterator[tuple[RecordId, Row]]:
        return self.heap.scan()

    def rows(self) -> Iterator[Row]:
        return self.heap.scan_rows()

    def rows_as_dicts(self) -> Iterator[dict[str, Any]]:
        for row in self.heap.scan_rows():
            yield self.schema.row_to_mapping(row)

    def get_by_key(self, key: Sequence[Any]) -> Optional[Row]:
        """Point lookup through the primary-key index."""
        if self._pk_index is None:
            raise QueryError(f"table {self.name!r} has no primary key")
        rids = self._pk_index.search(tuple(key))
        if not rids:
            return None
        return self.heap.read(rids[0])

    def lookup(self, index_name: str, key: Sequence[Any]) -> list[Row]:
        """Fetch rows through a named secondary index (random I/O per row)."""
        index = self._resolve_index(index_name)
        return [self.heap.read(rid) for rid in index.search(tuple(key))]

    def lookup_rids(self, index_name: str, key: Sequence[Any]) -> list[RecordId]:
        index = self._resolve_index(index_name)
        return index.search(tuple(key))

    def read(self, rid: RecordId) -> Row:
        return self.heap.read(rid)

    # -- internals ----------------------------------------------------------------------
    def _resolve_index(self, index_name: str) -> Index:
        if self._pk_index is not None and index_name == self._pk_index.name:
            return self._pk_index
        try:
            return self.indexes[index_name]
        except KeyError:
            raise CatalogError(
                f"no index {index_name!r} on table {self.name!r}"
            ) from None

    def _coerce(self, values: Sequence[Any] | Mapping[str, Any]) -> Row:
        # Exact-type checks first: bulk writers hand over plain tuples or
        # dicts, and an isinstance against typing.Mapping costs a
        # __subclasscheck__ per row on this hot path.
        kind = type(values)
        if kind is tuple or kind is list:
            return self.schema.validate_row(values)
        if kind is dict or isinstance(values, Mapping):
            return self.schema.row_from_mapping(values)
        return self.schema.validate_row(values)

    def _check_primary_key(self, row: Row) -> None:
        if self._pk_index is None:
            return
        key = self.schema.key_of(row)
        if None in key:
            raise ConstraintError(
                f"table {self.name!r}: primary key {self.schema.primary_key} cannot be NULL"
            )
        if self._pk_index.contains(key):
            raise ConstraintError(
                f"table {self.name!r}: duplicate primary key {key!r}"
            )

    def _index_insert(self, row: Row, rid: RecordId) -> None:
        if self._pk_index is not None:
            self._pk_index.insert(row, rid)
        for index in self.indexes.values():
            index.insert(row, rid)

    def _index_delete(self, row: Row, rid: RecordId) -> None:
        if self._pk_index is not None:
            self._pk_index.delete(row, rid)
        for index in self.indexes.values():
            index.delete(row, rid)

    def _notify(self, event: str, rows: list[Row]) -> None:
        for listener in self._mutation_listeners:
            listener(event, self, rows)
