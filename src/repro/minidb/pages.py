"""Slotted pages and record identifiers.

minidb stores every table as a heap file made of fixed-capacity pages.
A page holds a list of row slots; a slot may be emptied by a delete,
leaving a tombstone so that record ids (:class:`RecordId`) of other rows
remain stable.  Pages track their approximate byte usage so the storage
layer can decide when to allocate a new page — this is what makes the
buffer-pool experiments (paper Figure 8b) meaningful: a table's size in
pages, not in rows, drives I/O.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from .errors import StorageError

#: Default page capacity in bytes.  4 KiB mirrors the paper's DB2 buffer
#: pool accounting ("Buffer Pool (x 4kB)" on the x-axis of Figure 8b).
DEFAULT_PAGE_SIZE = 4096

#: Fixed per-slot overhead (slot directory entry), in bytes.
SLOT_OVERHEAD = 8

#: Fixed per-page overhead (header), in bytes.
PAGE_HEADER = 24


@dataclass(frozen=True)
class PageId:
    """Identifies a page: which file (table/index) and which page number within it.

    Page and record ids are the hottest dict keys in the engine (buffer
    pool, index buckets, delta caches), so their hash is computed once at
    construction instead of per lookup.
    """

    file_id: int
    page_no: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.file_id, self.page_no)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"page({self.file_id}:{self.page_no})"


@dataclass(frozen=True)
class RecordId:
    """Identifies a row: page plus slot number within the page."""

    page_id: PageId
    slot: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.page_id._hash, self.slot)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"rid({self.page_id.file_id}:{self.page_id.page_no}:{self.slot})"


@dataclass
class Page:
    """An in-memory slotted page.

    ``slots`` holds either a row tuple or ``None`` (a tombstone left by a
    delete).  ``used_bytes`` approximates how full the page is; the heap
    file uses it to decide whether another row fits.
    """

    page_id: PageId
    capacity: int = DEFAULT_PAGE_SIZE
    slots: list[Optional[tuple]] = field(default_factory=list)
    used_bytes: int = PAGE_HEADER
    dirty: bool = False
    #: Count of empty slots left by deletes; lets insert append without
    #: scanning the slot directory when there is nothing to reuse (the
    #: common case for append-only tables such as CRAWL and LINK).
    tombstones: int = 0

    def free_bytes(self) -> int:
        return self.capacity - self.used_bytes

    def fits(self, row_size: int) -> bool:
        return self.free_bytes() >= row_size + SLOT_OVERHEAD

    def insert(self, row: tuple, row_size: int) -> int:
        """Insert *row* into the first free slot (or a new one); return the slot number."""
        if not self.fits(row_size):
            raise StorageError(f"row of {row_size} bytes does not fit in {self.page_id}")
        return self.append_row(row, row_size)

    def append_row(self, row: tuple, row_size: int) -> int:
        """:meth:`insert` without the capacity re-check.

        Bulk loaders check :meth:`fits` once per row already; slot
        assignment (tombstone reuse first, then append) is identical.
        """
        self.used_bytes += row_size + SLOT_OVERHEAD
        self.dirty = True
        if self.tombstones:
            for slot, existing in enumerate(self.slots):
                if existing is None:
                    self.slots[slot] = row
                    self.tombstones -= 1
                    return slot
        self.slots.append(row)
        return len(self.slots) - 1

    def read(self, slot: int) -> tuple:
        row = self._slot(slot)
        if row is None:
            raise StorageError(f"slot {slot} of {self.page_id} is empty")
        return row

    def update(self, slot: int, row: tuple, old_size: int, new_size: int) -> None:
        if self._slot(slot) is None:
            raise StorageError(f"slot {slot} of {self.page_id} is empty")
        self.used_bytes += new_size - old_size
        self.slots[slot] = row
        self.dirty = True

    def delete(self, slot: int, row_size: int) -> None:
        if self._slot(slot) is None:
            raise StorageError(f"slot {slot} of {self.page_id} is already empty")
        self.slots[slot] = None
        self.tombstones += 1
        self.used_bytes -= row_size + SLOT_OVERHEAD
        self.dirty = True

    def _slot(self, slot: int) -> Optional[tuple]:
        if slot < 0 or slot >= len(self.slots):
            raise StorageError(f"slot {slot} out of range for {self.page_id}")
        return self.slots[slot]

    def rows(self) -> Iterator[tuple[int, tuple]]:
        """Yield ``(slot, row)`` for every live row on the page."""
        for slot, row in enumerate(self.slots):
            if row is not None:
                yield slot, row

    # -- durable images ---------------------------------------------------
    def image(self) -> tuple:
        """A compact, serialisable image of the page (for durable backends)."""
        return (
            self.page_id.file_id,
            self.page_id.page_no,
            self.capacity,
            list(self.slots),
            self.used_bytes,
            self.tombstones,
        )

    @classmethod
    def from_image(cls, image: tuple) -> "Page":
        """Rebuild a (clean) page from :meth:`image` output."""
        file_id, page_no, capacity, slots, used_bytes, tombstones = image
        return cls(
            page_id=PageId(file_id, page_no),
            capacity=capacity,
            slots=list(slots),
            used_bytes=used_bytes,
            dirty=False,
            tombstones=tombstones,
        )

    def live_count(self) -> int:
        return sum(1 for row in self.slots if row is not None)

    def is_empty(self) -> bool:
        return self.live_count() == 0
