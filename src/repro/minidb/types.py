"""Column types, schemas, and rows for the minidb relational engine.

The engine stores rows as plain tuples; a :class:`Schema` describes the
column names, types, and nullability, and knows how to validate and
coerce incoming values.  Types are intentionally small: the paper's
tables (CRAWL, LINK, HUBS, AUTH, DOCUMENT, TAXONOMY, STAT, BLOB) only
need integers, floats, strings, and raw blobs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from .errors import SchemaError


class ColumnType(enum.Enum):
    """Supported column types.

    ``INTEGER`` holds arbitrary-precision Python ints (used for 16-bit class
    ids, 32-bit term ids, and 64-bit URL oids alike).  ``FLOAT`` holds
    doubles (log-probabilities, scores).  ``TEXT`` holds unicode strings.
    ``BLOB`` holds opaque bytes (the paper's BLOB statistics records).
    """

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BLOB = "blob"

    def validate(self, value: Any) -> Any:
        """Coerce *value* to this column type, raising :class:`SchemaError` if impossible."""
        if value is None:
            return None
        if self is ColumnType.INTEGER:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, int):
                return value
            if isinstance(value, float) and value.is_integer():
                return int(value)
            raise SchemaError(f"expected INTEGER, got {value!r}")
        if self is ColumnType.FLOAT:
            if isinstance(value, bool):
                raise SchemaError(f"expected FLOAT, got {value!r}")
            if isinstance(value, (int, float)):
                return float(value)
            raise SchemaError(f"expected FLOAT, got {value!r}")
        if self is ColumnType.TEXT:
            if isinstance(value, str):
                return value
            raise SchemaError(f"expected TEXT, got {value!r}")
        if self is ColumnType.BLOB:
            if isinstance(value, (bytes, bytearray)):
                return bytes(value)
            raise SchemaError(f"expected BLOB, got {value!r}")
        raise SchemaError(f"unknown column type {self!r}")  # pragma: no cover

    def storage_size(self, value: Any) -> int:
        """Approximate on-page size in bytes of *value*, used for page accounting."""
        if value is None:
            return 1
        if self is ColumnType.INTEGER:
            return 8
        if self is ColumnType.FLOAT:
            return 8
        if self is ColumnType.TEXT:
            return 4 + len(value.encode("utf-8"))
        if self is ColumnType.BLOB:
            return 4 + len(value)
        return 8  # pragma: no cover


INTEGER = ColumnType.INTEGER
FLOAT = ColumnType.FLOAT
TEXT = ColumnType.TEXT
BLOB = ColumnType.BLOB


@dataclass(frozen=True)
class Column:
    """A single column definition."""

    name: str
    type: ColumnType
    nullable: bool = True

    def validate(self, value: Any) -> Any:
        if value is None:
            if not self.nullable:
                raise SchemaError(f"column {self.name!r} is NOT NULL")
            return None
        return self.type.validate(value)


Row = tuple
"""A stored row: a plain tuple, positionally aligned with the schema columns."""


def _call(func, value):
    """``map``-able application helper (avoids a per-value lambda allocation)."""
    return func(value)


def _specialized_validator(column: "Column"):
    """A per-column validator with an exact-type fast path.

    Bulk inserts call one validator per value; the generic
    :meth:`Column.validate` pays an enum-identity chain per call.  The
    specialized closure answers the overwhelmingly common case — the
    value already has the column's exact Python type — with a single
    ``type(value) is T`` check and defers everything else (None,
    coercions, errors) to the generic path, so the accepted/rejected
    value space is identical.
    """
    generic = column.validate
    expected = {
        ColumnType.INTEGER: int,
        ColumnType.FLOAT: float,
        ColumnType.TEXT: str,
        ColumnType.BLOB: bytes,
    }[column.type]

    def validate(value, _expected=expected, _generic=generic):
        if type(value) is _expected:
            return value
        return _generic(value)

    return validate


#: Exact Python type per column type, used by the fused row validator.
_EXACT_TYPE_NAME = {
    ColumnType.INTEGER: "int",
    ColumnType.FLOAT: "float",
    ColumnType.TEXT: "str",
    ColumnType.BLOB: "bytes",
}


def _fused_row_validator(columns: Sequence["Column"], validators: tuple):
    """Compile one whole-row validator with inline exact-type checks.

    Bulk inserts validate every value of every row; even a specialized
    per-column closure costs a Python call per value.  Generating a single
    expression — ``(r[0] if type(r[0]) is int else _v[0](r[0]), ...)`` —
    keeps the all-fast-path row to *one* call per row, while any value
    that fails its exact-type check falls back to the full per-column
    validator (identical accepted/rejected semantics).
    """
    parts = [
        f"(r[{i}] if type(r[{i}]) is {_EXACT_TYPE_NAME[c.type]} else _v[{i}](r[{i}]))"
        for i, c in enumerate(columns)
    ]
    source = f"lambda r, _v=_v: ({', '.join(parts)}{',' if parts else ''})"
    return eval(source, {"_v": validators, "__builtins__": {"int": int, "float": float, "str": str, "bytes": bytes, "type": type}})  # noqa: S307


def _specialized_sizer(ctype: ColumnType):
    """Per-column storage sizer without the enum dispatch of ``storage_size``."""
    if ctype in (ColumnType.INTEGER, ColumnType.FLOAT):
        return lambda value: 8 if value is not None else 1
    if ctype is ColumnType.TEXT:
        return lambda value: 4 + len(value.encode("utf-8")) if value is not None else 1
    return lambda value: 4 + len(value) if value is not None else 1


@dataclass
class Schema:
    """An ordered collection of :class:`Column` definitions plus an optional primary key.

    The schema is the single source of truth for column order.  Rows are
    stored as tuples in schema order; :meth:`row_from_mapping` and
    :meth:`row_to_mapping` convert between dict-like and tuple forms.
    """

    columns: Sequence[Column]
    primary_key: Sequence[str] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in schema: {names}")
        self._index = {c.name: i for i, c in enumerate(self.columns)}
        for key_col in self.primary_key:
            if key_col not in self._index:
                raise SchemaError(f"primary key column {key_col!r} not in schema")
        # Hot-path caches: row conversion runs per row on every insert/scan.
        # Validators/sizers are exact-type-specialized closures (same
        # semantics as Column.validate / ColumnType.storage_size).
        self._names = tuple(names)
        self._validators = tuple(_specialized_validator(c) for c in self.columns)
        self._fused_validator = _fused_row_validator(self.columns, self._validators)
        self._sizers = tuple(_specialized_sizer(c.type) for c in self.columns)
        self._pk_positions = tuple(self._index[k] for k in self.primary_key)
        # All-numeric schemas (LINK, HUBS, AUTH) have one possible row size
        # unless a value is NULL; skip the per-column summation for them.
        self._fixed_row_size = (
            8 * len(self.columns)
            if all(c.type in (ColumnType.INTEGER, ColumnType.FLOAT) for c in self.columns)
            else None
        )

    # -- introspection -------------------------------------------------
    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def position(self, name: str) -> int:
        """Return the position of column *name*, raising :class:`SchemaError` if unknown."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"unknown column {name!r}; have {self.column_names}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.position(name)]

    # -- row helpers ----------------------------------------------------
    def validate_row(self, values: Sequence[Any]) -> Row:
        """Validate and coerce a positional row."""
        if len(values) != len(self.columns):
            raise SchemaError(
                f"row has {len(values)} values, schema has {len(self.columns)} columns"
            )
        return self._fused_validator(values)

    def validator(self, name: str):
        """The specialized validator of column *name* (bulk update hot path)."""
        return self._validators[self.position(name)]

    def sizer(self, name: str):
        """The specialized storage sizer of column *name* (bulk update hot path)."""
        return self._sizers[self.position(name)]

    def row_from_mapping(self, mapping: Mapping[str, Any]) -> Row:
        """Build a positional row from a column-name mapping (missing columns become NULL)."""
        if not self._index.keys() >= mapping.keys():
            unknown = set(mapping) - set(self._index)
            raise SchemaError(f"unknown columns {sorted(unknown)}; have {self.column_names}")
        return self.validate_row(list(map(mapping.get, self._names)))

    def row_to_mapping(self, row: Sequence[Any]) -> dict[str, Any]:
        return dict(zip(self._names, row))

    def key_of(self, row: Sequence[Any]) -> tuple:
        """Extract the primary-key tuple from a row (empty tuple if no primary key)."""
        positions = self._pk_positions
        if len(positions) == 1:
            return (row[positions[0]],)
        return tuple(row[p] for p in positions)

    def row_size(self, row: Sequence[Any]) -> int:
        """Approximate stored size of *row* in bytes."""
        fixed = self._fixed_row_size
        if fixed is not None and None not in row:
            return fixed
        return sum(map(_call, self._sizers, row))

    def project_positions(self, names: Iterable[str]) -> list[int]:
        return [self.position(n) for n in names]


def schema_to_spec(schema: Schema) -> tuple:
    """A plain-data description of *schema* (for WAL records and snapshots)."""
    return (
        [(c.name, c.type.value, c.nullable) for c in schema.columns],
        list(schema.primary_key),
    )


def schema_from_spec(spec: tuple) -> Schema:
    """Rebuild a :class:`Schema` from :func:`schema_to_spec` output."""
    columns, primary_key = spec
    return Schema(
        [Column(name, ColumnType(type_value), nullable) for name, type_value, nullable in columns],
        tuple(primary_key),
    )


def make_schema(*columns: tuple, primary_key: Sequence[str] = ()) -> Schema:
    """Convenience constructor.

    Each column spec is ``(name, type)`` or ``(name, type, nullable)``::

        schema = make_schema(("oid", INTEGER, False), ("score", FLOAT),
                             primary_key=["oid"])
    """
    cols = []
    for spec in columns:
        if len(spec) == 2:
            name, ctype = spec
            cols.append(Column(name, ctype))
        elif len(spec) == 3:
            name, ctype, nullable = spec
            cols.append(Column(name, ctype, nullable))
        else:
            raise SchemaError(f"bad column spec {spec!r}")
    return Schema(cols, tuple(primary_key))
