"""Column types, schemas, and rows for the minidb relational engine.

The engine stores rows as plain tuples; a :class:`Schema` describes the
column names, types, and nullability, and knows how to validate and
coerce incoming values.  Types are intentionally small: the paper's
tables (CRAWL, LINK, HUBS, AUTH, DOCUMENT, TAXONOMY, STAT, BLOB) only
need integers, floats, strings, and raw blobs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from .errors import SchemaError


class ColumnType(enum.Enum):
    """Supported column types.

    ``INTEGER`` holds arbitrary-precision Python ints (used for 16-bit class
    ids, 32-bit term ids, and 64-bit URL oids alike).  ``FLOAT`` holds
    doubles (log-probabilities, scores).  ``TEXT`` holds unicode strings.
    ``BLOB`` holds opaque bytes (the paper's BLOB statistics records).
    """

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BLOB = "blob"

    def validate(self, value: Any) -> Any:
        """Coerce *value* to this column type, raising :class:`SchemaError` if impossible."""
        if value is None:
            return None
        if self is ColumnType.INTEGER:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, int):
                return value
            if isinstance(value, float) and value.is_integer():
                return int(value)
            raise SchemaError(f"expected INTEGER, got {value!r}")
        if self is ColumnType.FLOAT:
            if isinstance(value, bool):
                raise SchemaError(f"expected FLOAT, got {value!r}")
            if isinstance(value, (int, float)):
                return float(value)
            raise SchemaError(f"expected FLOAT, got {value!r}")
        if self is ColumnType.TEXT:
            if isinstance(value, str):
                return value
            raise SchemaError(f"expected TEXT, got {value!r}")
        if self is ColumnType.BLOB:
            if isinstance(value, (bytes, bytearray)):
                return bytes(value)
            raise SchemaError(f"expected BLOB, got {value!r}")
        raise SchemaError(f"unknown column type {self!r}")  # pragma: no cover

    def storage_size(self, value: Any) -> int:
        """Approximate on-page size in bytes of *value*, used for page accounting."""
        if value is None:
            return 1
        if self is ColumnType.INTEGER:
            return 8
        if self is ColumnType.FLOAT:
            return 8
        if self is ColumnType.TEXT:
            return 4 + len(value.encode("utf-8"))
        if self is ColumnType.BLOB:
            return 4 + len(value)
        return 8  # pragma: no cover


INTEGER = ColumnType.INTEGER
FLOAT = ColumnType.FLOAT
TEXT = ColumnType.TEXT
BLOB = ColumnType.BLOB


@dataclass(frozen=True)
class Column:
    """A single column definition."""

    name: str
    type: ColumnType
    nullable: bool = True

    def validate(self, value: Any) -> Any:
        if value is None:
            if not self.nullable:
                raise SchemaError(f"column {self.name!r} is NOT NULL")
            return None
        return self.type.validate(value)


Row = tuple
"""A stored row: a plain tuple, positionally aligned with the schema columns."""


@dataclass
class Schema:
    """An ordered collection of :class:`Column` definitions plus an optional primary key.

    The schema is the single source of truth for column order.  Rows are
    stored as tuples in schema order; :meth:`row_from_mapping` and
    :meth:`row_to_mapping` convert between dict-like and tuple forms.
    """

    columns: Sequence[Column]
    primary_key: Sequence[str] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in schema: {names}")
        self._index = {c.name: i for i, c in enumerate(self.columns)}
        for key_col in self.primary_key:
            if key_col not in self._index:
                raise SchemaError(f"primary key column {key_col!r} not in schema")
        # Hot-path caches: row conversion runs per row on every insert/scan.
        self._names = tuple(names)
        self._validators = tuple(c.validate for c in self.columns)
        self._sizers = tuple(c.type.storage_size for c in self.columns)

    # -- introspection -------------------------------------------------
    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def position(self, name: str) -> int:
        """Return the position of column *name*, raising :class:`SchemaError` if unknown."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"unknown column {name!r}; have {self.column_names}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.position(name)]

    # -- row helpers ----------------------------------------------------
    def validate_row(self, values: Sequence[Any]) -> Row:
        """Validate and coerce a positional row."""
        if len(values) != len(self.columns):
            raise SchemaError(
                f"row has {len(values)} values, schema has {len(self.columns)} columns"
            )
        return tuple(map(lambda v, validate: validate(v), values, self._validators))

    def row_from_mapping(self, mapping: Mapping[str, Any]) -> Row:
        """Build a positional row from a column-name mapping (missing columns become NULL)."""
        if not self._index.keys() >= mapping.keys():
            unknown = set(mapping) - set(self._index)
            raise SchemaError(f"unknown columns {sorted(unknown)}; have {self.column_names}")
        return self.validate_row(list(map(mapping.get, self._names)))

    def row_to_mapping(self, row: Sequence[Any]) -> dict[str, Any]:
        return dict(zip(self._names, row))

    def key_of(self, row: Sequence[Any]) -> tuple:
        """Extract the primary-key tuple from a row (empty tuple if no primary key)."""
        return tuple(row[self.position(k)] for k in self.primary_key)

    def row_size(self, row: Sequence[Any]) -> int:
        """Approximate stored size of *row* in bytes."""
        return sum(map(lambda v, size: size(v), row, self._sizers))

    def project_positions(self, names: Iterable[str]) -> list[int]:
        return [self.position(n) for n in names]


def schema_to_spec(schema: Schema) -> tuple:
    """A plain-data description of *schema* (for WAL records and snapshots)."""
    return (
        [(c.name, c.type.value, c.nullable) for c in schema.columns],
        list(schema.primary_key),
    )


def schema_from_spec(spec: tuple) -> Schema:
    """Rebuild a :class:`Schema` from :func:`schema_to_spec` output."""
    columns, primary_key = spec
    return Schema(
        [Column(name, ColumnType(type_value), nullable) for name, type_value, nullable in columns],
        tuple(primary_key),
    )


def make_schema(*columns: tuple, primary_key: Sequence[str] = ()) -> Schema:
    """Convenience constructor.

    Each column spec is ``(name, type)`` or ``(name, type, nullable)``::

        schema = make_schema(("oid", INTEGER, False), ("score", FLOAT),
                             primary_key=["oid"])
    """
    cols = []
    for spec in columns:
        if len(spec) == 2:
            name, ctype = spec
            cols.append(Column(name, ctype))
        elif len(spec) == 3:
            name, ctype, nullable = spec
            cols.append(Column(name, ctype, nullable))
        else:
            raise SchemaError(f"bad column spec {spec!r}")
    return Schema(cols, tuple(primary_key))
