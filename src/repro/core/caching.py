"""Small shared caching primitives used on the crawl hot paths.

One LRU policy, reused everywhere a hot-path cache needs bounding: the
engine's classification-outcome cache (keyed by page oid) and the
classifier's per-node term-vector cache (keyed by term id) both wrap
:class:`LRUCache`.  The implementation leans on CPython's insertion-
ordered dicts: a hit is refreshed with a delete + reinsert (both O(1)),
and eviction removes the first key in iteration order — the least
recently used entry.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

#: Sentinel distinguishing "absent" from a stored None.
_MISSING = object()


class LRUCache:
    """A bounded mapping with least-recently-used eviction and hit counters.

    ``capacity=0`` disables the cache entirely (gets miss, puts are
    dropped) — useful for switching a cache off via configuration without
    branching at every call site.
    """

    __slots__ = ("capacity", "hits", "misses", "_data")

    def __init__(self, capacity: int) -> None:
        self.capacity = max(int(capacity), 0)
        self.hits = 0
        self.misses = 0
        self._data: Dict[Any, Any] = {}

    def get(self, key: Any) -> Optional[Any]:
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return None
        # Refresh recency: delete + reinsert moves the key to the back of
        # the dict's insertion order in O(1).
        del self._data[key]
        self._data[key] = value
        self.hits += 1
        return value

    def peek(self, key: Any) -> Optional[Any]:
        """Read without refreshing recency or touching the counters."""
        return self._data.get(key)

    @property
    def raw(self) -> Dict[Any, Any]:
        """The backing dict, for read-only fast paths.

        While the cache is below capacity no eviction can happen, so hot
        loops may probe this dict directly (a single C-level ``get``)
        instead of paying the per-hit recency refresh; once full they must
        switch back to :meth:`get` so the LRU order stays meaningful.
        """
        return self._data

    def put(self, key: Any, value: Any) -> None:
        if self.capacity == 0:
            return
        data = self._data
        if key in data:
            del data[key]
        data[key] = value
        while len(data) > self.capacity:
            del data[next(iter(data))]

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[Any]:
        return iter(self._data)

    def clear(self) -> None:
        self._data.clear()
