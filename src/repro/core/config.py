"""Top-level configuration for the Focus system: FocusConfig and JobSpec."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence, Tuple

from repro.crawler.focused import CrawlerConfig
from repro.crawler.policies import CrawlOrdering
from repro.minidb import StorageConfig
from repro.webgraph.graph import WebConfig


@dataclass
class FocusConfig:
    """Everything needed to set up and run a focused-crawling experiment.

    The defaults reproduce the paper's canonical scenario: a
    cycling-flavoured good topic on a laptop-scale synthetic web.
    """

    #: Topics the user marks good (C*), as slash paths into the taxonomy.
    good_topics: Sequence[str] = ("recreation/cycling",)
    #: Training examples generated per leaf topic (the paper's D(c)).
    examples_per_leaf: int = 30
    #: Number of seed URLs handed to the crawler (keyword-search simulation).
    seed_count: int = 24
    #: Buffer-pool pages of the crawl database.
    buffer_pool_pages: int = 2048
    #: Random seed for example generation and seed selection.
    seed: int = 13
    #: Crawler behaviour (page budget, focus mode, distillation cadence, ...).
    crawler: CrawlerConfig = field(default_factory=CrawlerConfig)
    #: Synthetic web parameters (only used when the system builds its own web).
    web: Optional[WebConfig] = None

    def copy_with(self, **overrides) -> "FocusConfig":
        """A shallow-copied config with the given fields replaced."""
        from dataclasses import replace

        return replace(self, **overrides)


def _crawler_to_dict(config: CrawlerConfig) -> dict[str, Any]:
    """Plain-data form of a CrawlerConfig (JSON-safe for HTTP job specs)."""
    data = dataclasses.asdict(config)
    ordering = config.ordering
    if ordering is not None:
        data["ordering"] = {
            "name": ordering.name,
            "keys": [list(pair) for pair in ordering.keys],
            "buckets": [list(pair) for pair in ordering.buckets],
        }
    storage = getattr(config, "storage", None)
    data["storage"] = storage.to_dict() if storage is not None else None
    return data


def _crawler_from_dict(data: Mapping[str, Any]) -> CrawlerConfig:
    kwargs = dict(data)
    ordering = kwargs.get("ordering")
    if ordering is not None:
        kwargs["ordering"] = CrawlOrdering(
            name=ordering["name"],
            keys=tuple((column, bool(asc)) for column, asc in ordering["keys"]),
            buckets=tuple((column, int(size)) for column, size in ordering.get("buckets", [])),
        )
    storage = kwargs.get("storage")
    if storage is not None:
        kwargs["storage"] = StorageConfig.from_dict(storage)
    known = {f.name for f in dataclasses.fields(CrawlerConfig)}
    unknown = sorted(set(kwargs) - known)
    if unknown:
        raise ValueError(f"unknown CrawlerConfig fields {unknown}")
    return CrawlerConfig(**kwargs)


@dataclass(frozen=True)
class JobSpec:
    """One crawl job, as a frozen, serializable value.

    A JobSpec is the unit of work of the crawl service: everything
    :meth:`FocusSystem.start` needs to run one crawl — topics, seeds,
    budgets, crawler behaviour, and storage policy — in a single object
    that round-trips through JSON (:meth:`to_dict` / :meth:`from_dict`),
    so jobs can be submitted over the HTTP API, queued, and logged.
    ``None`` fields defer to the owning system's configuration.
    """

    #: Good topics of this job; None uses the system's configured topics.
    good_topics: Optional[Tuple[str, ...]] = None
    #: Seed URLs; None uses the system's simulated keyword-search seeds.
    seeds: Optional[Tuple[str, ...]] = None
    #: Page budget; None uses ``CrawlerConfig.max_pages``.
    max_pages: Optional[int] = None
    #: Focused (classifier-guided) or the unfocused baseline.
    focused: bool = True
    #: Seed of the job's transient-failure/latency streams.
    fetch_failure_seed: int = 0
    #: Durable checkpoint directory; None keeps the crawl in memory.
    checkpoint_dir: Optional[str] = None
    #: Crawler behaviour; None copies the system's configured crawler.
    crawler: Optional[CrawlerConfig] = None
    #: Storage policy override; None resolves from the crawler config.
    storage: Optional[StorageConfig] = None
    #: Cap on total fetch attempts (politeness/cost budget; 0 = unlimited).
    #: Checked at round boundaries by the job manager, so a job that
    #: burns its fetch budget on failures stops even though its page
    #: budget is unmet.
    fetch_budget: int = 0
    #: Fetch cassette (``webgraph.cassette``): empty disables; set, the
    #: job records its fetches into this file or replays it.
    cassette_path: str = ""
    #: "record", "replay", or "auto" (replay iff the file exists).
    cassette_mode: str = "auto"
    #: Optional display name (shows up in service listings).
    name: str = ""

    def __post_init__(self) -> None:
        # Tolerate lists/sequences at construction; store tuples so the
        # spec is hashable and safely shared.
        for attr in ("good_topics", "seeds"):
            value = getattr(self, attr)
            if value is not None and not isinstance(value, tuple):
                object.__setattr__(self, attr, tuple(value))
        if self.max_pages is not None and self.max_pages < 1:
            raise ValueError("max_pages must be >= 1 (or None for the config default)")
        if self.fetch_budget < 0:
            raise ValueError("fetch_budget must be >= 0 (0 = unlimited)")
        if self.cassette_mode not in ("auto", "record", "replay"):
            raise ValueError(
                f"cassette_mode must be 'auto', 'record', or 'replay', got {self.cassette_mode!r}"
            )

    def replace(self, **overrides: Any) -> "JobSpec":
        return dataclasses.replace(self, **overrides)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-safe form (refuses non-serializable storage overrides)."""
        return {
            "good_topics": list(self.good_topics) if self.good_topics is not None else None,
            "seeds": list(self.seeds) if self.seeds is not None else None,
            "max_pages": self.max_pages,
            "focused": self.focused,
            "fetch_failure_seed": self.fetch_failure_seed,
            "checkpoint_dir": self.checkpoint_dir,
            "crawler": _crawler_to_dict(self.crawler) if self.crawler is not None else None,
            "storage": self.storage.to_dict() if self.storage is not None else None,
            "fetch_budget": self.fetch_budget,
            "cassette_path": self.cassette_path,
            "cassette_mode": self.cassette_mode,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown JobSpec fields {unknown}; expected {sorted(known)}")
        kwargs = dict(data)
        if kwargs.get("crawler") is not None:
            kwargs["crawler"] = _crawler_from_dict(kwargs["crawler"])
        if kwargs.get("storage") is not None:
            kwargs["storage"] = StorageConfig.from_dict(kwargs["storage"])
        return cls(**kwargs)
