"""Top-level configuration for the Focus system."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.crawler.focused import CrawlerConfig
from repro.webgraph.graph import WebConfig


@dataclass
class FocusConfig:
    """Everything needed to set up and run a focused-crawling experiment.

    The defaults reproduce the paper's canonical scenario: a
    cycling-flavoured good topic on a laptop-scale synthetic web.
    """

    #: Topics the user marks good (C*), as slash paths into the taxonomy.
    good_topics: Sequence[str] = ("recreation/cycling",)
    #: Training examples generated per leaf topic (the paper's D(c)).
    examples_per_leaf: int = 30
    #: Number of seed URLs handed to the crawler (keyword-search simulation).
    seed_count: int = 24
    #: Buffer-pool pages of the crawl database.
    buffer_pool_pages: int = 2048
    #: Random seed for example generation and seed selection.
    seed: int = 13
    #: Crawler behaviour (page budget, focus mode, distillation cadence, ...).
    crawler: CrawlerConfig = field(default_factory=CrawlerConfig)
    #: Synthetic web parameters (only used when the system builds its own web).
    web: Optional[WebConfig] = None

    def copy_with(self, **overrides) -> "FocusConfig":
        """A shallow-copied config with the given fields replaced."""
        from dataclasses import replace

        return replace(self, **overrides)
