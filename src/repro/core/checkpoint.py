"""Crawl checkpoints: pause, kill, and resume long-running crawls.

The paper's systems argument is that a focused crawl is a *long-running,
pausable* process precisely because all of its state lives in the
database.  This module closes the loop for our engine: a
:class:`CheckpointManager` rides the engine's round boundaries and saves,
inside the database's own atomic snapshot, the small amount of state
that lives *outside* the tables —

* the engine's round counters, per-oid relevance map, and stagnation
  streak, plus the trace accumulated so far;
* the frontier's entries/priorities, per-server load, and discovery
  watermark;
* the positions of the simulated-network RNG streams (the engine's
  fetch transport — fetcher plus any latency-injection layer — and the
  server pool), so a resumed crawl sees the identical failure/latency
  sequence the uninterrupted crawl would have seen;
* the incremental distiller's LINK high-water mark and pending weight
  updates (the cached adjacency itself is rebuilt from the recovered
  heap).

Because the blob is stored by :meth:`repro.minidb.Database.checkpoint`
in the same atomically renamed snapshot record as the page directory, a
crash can never publish crawl state and table state from different
moments.  Resume opens the database pinned to that snapshot
(``replay_wal=False`` discards the redo tail of work the engine will
redo deterministically) and rebuilds the crawler around it; a resumed
crawl then visits exactly the pages — with bit-identical relevance
floats — that the uninterrupted crawl would have visited.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.crawler.focused import CrawlerConfig, FocusedCrawler
from repro.minidb import Database, FileOps
from repro.minidb.errors import StorageError
from repro.minidb.wal import dump_record, load_record, read_frame_at, write_frame
from repro.webgraph.servers import ServerPool
from repro.webgraph.transport import FetchTransport

#: File name of the sharded coordinator's manifest inside a checkpoint
#: directory; its presence is how :meth:`FocusSystem.resume` tells a
#: sharded checkpoint from a single-database one.
MANIFEST_FILE = "coordinator.manifest"


@dataclass
class CrawlCheckpoint:
    """The crawl-level state stored inside a database snapshot."""

    config: CrawlerConfig
    focused: bool
    seeds: List[str]
    good_topics: List[str]
    fetch_failure_seed: int
    engine_state: Dict[str, Any]
    frontier_state: Dict[str, Any]
    fetcher_state: Dict[str, Any]
    server_rng_state: Dict[str, Any]
    checkpoints_saved: int = 0
    extras: Dict[str, Any] = field(default_factory=dict)


@dataclass
class CoordinatorManifest:
    """The crawl-level state of a *sharded* crawl's checkpoint.

    Where a single-engine checkpoint rides inside the one database's
    atomic snapshot, a sharded crawl has N databases and one coordinator;
    the manifest is the coordinator's atomically-replaced sidecar file in
    the checkpoint directory.  ``round`` is the authoritative recovery
    point: every shard database rewinds to it via its WAL cut markers
    (``Database.open(replay_upto_cut=round)``), so the manifest and all N
    databases always recover to one common round boundary no matter
    where a crash landed.
    """

    round: int
    shards: int
    config: CrawlerConfig
    focused: bool
    seeds: List[str]
    good_topics: List[str]
    fetch_failure_seed: int
    engine_state: Dict[str, Any]
    #: Per-shard frontier / transport / server-RNG snapshots, index-aligned.
    shard_states: List[Dict[str, Any]]
    checkpoints_saved: int = 0
    extras: Dict[str, Any] = field(default_factory=dict)


def write_coordinator_manifest(
    directory: str, manifest: CoordinatorManifest, ops: FileOps | None = None
) -> str:
    """Atomically publish *manifest* into the checkpoint *directory*.

    Write-to-temp, fsync, rename — the manifest is either the old one or
    the new one, never torn.  The payload is one CRC-framed pickle (the
    WAL's frame format), so a partially written temp file can never be
    mistaken for a manifest.  *ops* is the fault-injection seam the
    sharded kill/resume torture tests crash inside.
    """
    ops = ops or FileOps()
    os.makedirs(directory, exist_ok=True)
    final = os.path.join(directory, MANIFEST_FILE)
    tmp = final + ".tmp"
    fh = ops.open(tmp, "wb")
    try:
        write_frame(fh, dump_record(manifest))
        ops.fsync(fh)
    finally:
        fh.close()
    ops.replace(tmp, final)
    return final


def read_coordinator_manifest(directory: str) -> CoordinatorManifest:
    """Load the checkpoint *directory*'s coordinator manifest.

    Reads are not routed through the fault-injection seam (the crash
    model kills processes, not completed disk writes).
    """
    path = os.path.join(directory, MANIFEST_FILE)
    if not os.path.exists(path):
        raise StorageError(f"{directory!r} holds no coordinator manifest")
    with open(path, "rb") as fh:
        manifest = load_record(read_frame_at(fh, 0))
    if not isinstance(manifest, CoordinatorManifest):
        raise StorageError(f"{path!r} does not contain a coordinator manifest")
    return manifest


class CheckpointManager:
    """Snapshots a running crawl into its (durable) database.

    Attach one to a crawl by assigning it to ``engine.checkpointer`` and
    setting ``CrawlerConfig.checkpoint_every``; the engine then calls
    :meth:`save` after every N successful fetches, at a round boundary
    where all write buffers are flushed.
    """

    def __init__(
        self,
        database: Database,
        crawler: FocusedCrawler,
        fetcher: FetchTransport,
        servers: ServerPool,
        seeds: List[str],
        good_topics: List[str],
        fetch_failure_seed: int = 0,
        focused: bool = True,
    ) -> None:
        if not database.backend.persistent:
            raise StorageError(
                "crawl checkpoints need a durable database; open one with Database.open(path)"
            )
        self.database = database
        self.crawler = crawler
        self.fetcher = fetcher
        self.servers = servers
        self.seeds = list(seeds)
        self.good_topics = list(good_topics)
        self.fetch_failure_seed = fetch_failure_seed
        self.focused = focused
        self.checkpoints_saved = 0
        #: Cumulative wall-clock seconds the crawl spent paused inside
        #: :meth:`save` — the price of durability (flush + snapshot +
        #: any segment compaction), reported by the throughput bench.
        self.save_seconds = 0.0
        #: Per-checkpoint pauses (the deltas summed into save_seconds);
        #: the bench compares pause floors checkpoint-by-checkpoint
        #: across repeats, which a single cumulative scalar can't support.
        self.pause_log: list[float] = []

    def attach(self) -> None:
        """Register with the crawl engine as its checkpoint sink."""
        self.crawler.engine.checkpointer = self

    def save(self) -> None:
        """Checkpoint the database with the current crawl state riding along."""
        started = time.perf_counter()
        self.checkpoints_saved += 1
        self.database.checkpoint(app_state=self._crawl_state())
        paused = time.perf_counter() - started
        self.save_seconds += paused
        self.pause_log.append(paused)

    def _crawl_state(self) -> CrawlCheckpoint:
        engine = self.crawler.engine
        return CrawlCheckpoint(
            config=self.crawler.config,
            focused=self.focused,
            seeds=self.seeds,
            good_topics=self.good_topics,
            fetch_failure_seed=self.fetch_failure_seed,
            engine_state=engine.state_snapshot(),
            frontier_state=self.crawler.frontier.state_snapshot(),
            fetcher_state=self.fetcher.state_snapshot(),
            server_rng_state=self.servers.rng_state(),
            checkpoints_saved=self.checkpoints_saved,
        )

    @staticmethod
    def load(
        path: str, buffer_pool_pages: int = 256, storage=None
    ) -> tuple[Database, CrawlCheckpoint]:
        """Recover the database pinned to its last checkpoint, plus the crawl state.

        Post-checkpoint WAL records are discarded (not replayed): the
        resumed engine re-executes that work deterministically, and
        replaying it would leave the tables ahead of the engine state.
        *storage* (a :class:`~repro.minidb.StorageConfig`) overrides the
        reopen's durability knobs; the checkpointed crawl config's own
        storage policy is re-applied by the resume path either way.
        """
        database = Database.open(
            path, buffer_pool_pages=buffer_pool_pages, replay_wal=False, storage=storage
        )
        state = database.app_state()
        if not isinstance(state, CrawlCheckpoint):
            database.close()
            raise StorageError(f"{path!r} holds no crawl checkpoint to resume from")
        return database, state
