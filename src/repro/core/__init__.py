"""core: the Focus system facade, configuration, schemata, and evaluation metrics."""

from .checkpoint import CheckpointManager, CrawlCheckpoint
from .config import FocusConfig
from .metrics import (
    CoTopic,
    CoveragePoint,
    average_harvest_rate,
    citation_sociology,
    coverage_series,
    distance_histogram,
    harvest_series,
    moving_average,
    relevant_reference_set,
)
from .schema import CRAWL_STATUSES, create_crawl_tables, create_focus_database
from .system import CrawlResult, FocusSystem

__all__ = [
    "CRAWL_STATUSES",
    "CheckpointManager",
    "CoTopic",
    "CoveragePoint",
    "CrawlCheckpoint",
    "CrawlResult",
    "FocusConfig",
    "FocusSystem",
    "average_harvest_rate",
    "citation_sociology",
    "coverage_series",
    "create_crawl_tables",
    "create_focus_database",
    "distance_histogram",
    "harvest_series",
    "moving_average",
    "relevant_reference_set",
]
