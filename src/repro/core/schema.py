"""Relational schemata for the Focus system (paper Figure 1).

The crawl state lives in four tables shared by the crawler, the
classifier, and the distiller:

* ``CRAWL(oid, url, sid, relevance, numtries, serverload, lastvisited,
  kcid, status)`` — one row per known URL; ``relevance`` holds the soft
  focus R(u) (a probability in [0, 1]; the paper stores its logarithm),
  ``numtries`` the fetch attempts, ``serverload`` the lazily updated
  count of pages fetched from the same server, ``lastvisited`` the crawl
  tick of the last successful fetch, ``kcid`` the best-matching leaf
  class, and ``status`` one of ``frontier``/``visited``/``failed``/``dead``.
* ``LINK(oid_src, sid_src, oid_dst, sid_dst, wgt_fwd, wgt_rev)`` — the
  crawl graph with relevance-derived edge weights.
* ``HUBS(oid, score)`` and ``AUTH(oid, score)`` — distillation scores.

The classifier's own tables (``TAXONOMY``, ``DOCUMENT``, ``STAT_<c0>``,
``BLOB``) are created by
:class:`repro.classifier.training.ModelInstaller`.
"""

from __future__ import annotations

from typing import Optional

from repro.minidb import Database, FLOAT, INTEGER, StorageConfig, TEXT, make_schema

#: Allowed values of CRAWL.status.
CRAWL_STATUSES = ("frontier", "visited", "failed", "dead")


def create_crawl_tables(database: Database) -> None:
    """Create CRAWL, LINK, HUBS, and AUTH (idempotent)."""
    if not database.has_table("CRAWL"):
        database.create_table(
            "CRAWL",
            make_schema(
                ("oid", INTEGER, False),
                ("url", TEXT, False),
                ("sid", INTEGER),
                ("relevance", FLOAT),
                ("numtries", INTEGER),
                ("serverload", INTEGER),
                ("lastvisited", INTEGER),
                ("kcid", INTEGER),
                ("status", TEXT),
                primary_key=["oid"],
            ),
        )
        crawl = database.table("CRAWL")
        crawl.create_index("crawl_status", ["status"], kind="hash")
        crawl.create_index("crawl_sid", ["sid"], kind="hash")
    if not database.has_table("LINK"):
        database.create_table(
            "LINK",
            make_schema(
                ("oid_src", INTEGER, False),
                ("sid_src", INTEGER),
                ("oid_dst", INTEGER, False),
                ("sid_dst", INTEGER),
                ("wgt_fwd", FLOAT),
                ("wgt_rev", FLOAT),
            ),
        )
        link = database.table("LINK")
        link.create_index("link_src", ["oid_src"], kind="hash")
        link.create_index("link_dst", ["oid_dst"], kind="hash")
        # Pre/post-order window index over the crawl graph: each row is
        # the edge oid_src -> oid_dst, keyed (id, parent).  Backs the
        # reachable_from() SQL predicate and Query.reachable_from() with
        # window range scans instead of per-hop hash-index BFS.
        link.create_index("link_graph", ["oid_dst", "oid_src"], kind="interval")
    for score_table in ("HUBS", "AUTH"):
        if not database.has_table(score_table):
            database.create_table(
                score_table,
                make_schema(
                    ("oid", INTEGER, False),
                    ("score", FLOAT),
                    primary_key=["oid"],
                ),
            )


def create_focus_database(
    buffer_pool_pages: int = 2048,
    path: Optional[str] = None,
    storage: Optional[StorageConfig] = None,
    wal_fsync_batch: Optional[int] = None,
    compact_every: Optional[int] = None,
    compact_min_garbage_ratio: Optional[float] = None,
    ops=None,
) -> Database:
    """A database with the crawl tables created.

    With *path* the database is durable (segment file + WAL at that
    directory) and an existing directory is recovered, so crawls survive
    restarts; without it the store is in-memory, as in the seed.

    Durability policy comes in as one
    :class:`~repro.minidb.StorageConfig` via ``storage=`` (its
    ``buffer_pool_pages``, when set, wins over the positional default).
    The per-knob keywords are deprecated pass-throughs resolved — and
    warned about — by :meth:`Database.open`.
    """
    if path is not None:
        database = Database.open(
            path,
            buffer_pool_pages=buffer_pool_pages,
            storage=storage,
            wal_fsync_batch=wal_fsync_batch,
            compact_every=compact_every,
            compact_min_garbage_ratio=compact_min_garbage_ratio,
            ops=ops,
        )
    else:
        pages = (storage or StorageConfig()).pool_pages(buffer_pool_pages)
        database = Database(buffer_pool_pages=pages)
    create_crawl_tables(database)
    return database
