"""Evaluation metrics for resource discovery (paper §3.3–§3.6).

The paper evaluates its system with four indirect indicators, all of
which are computed here:

* **Harvest rate** (Figure 5) — a moving average of the classifier's
  relevance over the pages fetched, as a function of how many pages have
  been fetched.
* **Coverage** (Figure 6) — how quickly a test crawl started from a
  disjoint seed set re-discovers the relevant URLs (and servers) found by
  a reference crawl.
* **Distance histogram** (Figure 7) — the shortest link distance from the
  seed set to the best authorities, demonstrating large-radius exploration.
* **Citation sociology** (§1) — topics over-represented within one link
  of the good pages relative to the crawl at large.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.crawler.focused import CrawlTrace
from repro.webgraph.graph import WebGraph
from repro.webgraph.urls import host_of, normalize_url


# ---------------------------------------------------------------------------
# Harvest rate (Figure 5)
# ---------------------------------------------------------------------------

def moving_average(values: Sequence[float], window: int) -> list[float]:
    """Trailing moving average; the first ``window-1`` points average what is available."""
    if window < 1:
        raise ValueError("window must be >= 1")
    out: list[float] = []
    running = 0.0
    values = list(values)
    for i, value in enumerate(values):
        running += value
        if i >= window:
            running -= values[i - window]
        out.append(running / min(i + 1, window))
    return out


def harvest_series(trace: CrawlTrace, window: int = 100) -> list[tuple[int, float]]:
    """The Figure 5 series: (#URLs fetched, moving-average relevance)."""
    relevances = trace.relevance_series()
    averaged = moving_average(relevances, window)
    return [(i + 1, value) for i, value in enumerate(averaged)]


def average_harvest_rate(trace: CrawlTrace, skip_first: int = 0) -> float:
    """Mean relevance over the crawl (optionally skipping the seed warm-up)."""
    relevances = trace.relevance_series()[skip_first:]
    if not relevances:
        return 0.0
    return float(np.mean(relevances))


# ---------------------------------------------------------------------------
# Coverage (Figure 6)
# ---------------------------------------------------------------------------

@dataclass
class CoveragePoint:
    """One point of the Figure 6 curves."""

    pages_crawled: int
    url_coverage: float
    server_coverage: float


def relevant_reference_set(
    trace: CrawlTrace, relevance_threshold: float = float(np.exp(-1.0))
) -> set[str]:
    """Relevant URLs of a reference crawl.

    The paper uses log R(u) > −1; with probabilities that is R(u) > e⁻¹.
    """
    return {
        visit.url for visit in trace.visits if visit.relevance > relevance_threshold
    }


def relevant_reference_set_db(
    database, relevance_threshold: float = float(np.exp(-1.0))
) -> set[str]:
    """Relevant URLs of a reference crawl, read from its CRAWL table.

    The database-backed twin of :func:`relevant_reference_set`: one
    planner-driven query over the crawl store instead of a Python walk
    of the in-memory trace.  The two agree exactly — a visited row's
    ``relevance`` is the value recorded at visit time — which
    ``tests/experiments`` pins.
    """
    rows = database.sql(
        "select url from CRAWL where status = 'visited' and relevance > :threshold",
        {"threshold": relevance_threshold},
    )
    return {row["url"] for row in rows}


def coverage_series(
    reference: CrawlTrace,
    test: CrawlTrace,
    relevance_threshold: float = float(np.exp(-1.0)),
    reference_urls: Optional[set[str]] = None,
) -> list[CoveragePoint]:
    """Fraction of the reference crawl's relevant URLs / servers found by the test crawl.

    *reference_urls* overrides the trace-derived relevant set — the
    Figure-6 experiment passes the set read back from the reference
    crawl's database so the whole analysis runs off the crawl store.
    """
    if reference_urls is None:
        reference_urls = relevant_reference_set(reference, relevance_threshold)
    reference_servers = {host_of(url) for url in reference_urls}
    if not reference_urls:
        return []
    seen_urls: set[str] = set()
    seen_servers: set[str] = set()
    points: list[CoveragePoint] = []
    for i, visit in enumerate(test.visits, start=1):
        url = normalize_url(visit.url)
        if url in reference_urls:
            seen_urls.add(url)
        server = host_of(url)
        if server in reference_servers:
            seen_servers.add(server)
        points.append(
            CoveragePoint(
                pages_crawled=i,
                url_coverage=len(seen_urls) / len(reference_urls),
                server_coverage=len(seen_servers) / max(len(reference_servers), 1),
            )
        )
    return points


# ---------------------------------------------------------------------------
# Distance histogram (Figure 7)
# ---------------------------------------------------------------------------

def distance_histogram(
    web: WebGraph,
    start_urls: Iterable[str],
    target_urls: Iterable[str],
    max_distance: Optional[int] = None,
) -> Dict[int, int]:
    """Histogram of shortest link distances from the seed set to the targets.

    Targets unreachable from the seed set are reported under distance -1.
    """
    distances = web.shortest_distances(start_urls)
    histogram: Dict[int, int] = {}
    for url in target_urls:
        distance = distances.get(normalize_url(url), -1)
        if max_distance is not None and distance > max_distance:
            distance = max_distance
        histogram[distance] = histogram.get(distance, 0) + 1
    return dict(sorted(histogram.items()))


def crawl_distances(
    web: WebGraph, trace: CrawlTrace, start_urls: Iterable[str]
) -> Dict[str, int]:
    """Shortest distances *found by the crawl* from the seed set.

    Figure 7's x-axis is "Shortest distance found (#links)": the BFS may
    only expand pages the crawler actually visited, so shortcuts through
    unvisited parts of the web do not count.
    """
    visited = trace.visited_set()
    distances: Dict[str, int] = {}
    queue: list[str] = []
    for url in start_urls:
        normalized = normalize_url(url)
        if normalized not in distances:
            distances[normalized] = 0
            queue.append(normalized)
    head = 0
    while head < len(queue):
        current = queue[head]
        head += 1
        if current not in visited or not web.has_page(current):
            continue  # the crawl never expanded this page
        for target in web.out_links(current):
            normalized = normalize_url(target)
            if normalized not in distances:
                distances[normalized] = distances[current] + 1
                queue.append(normalized)
    return distances


def crawl_distance_histogram(
    web: WebGraph,
    trace: CrawlTrace,
    start_urls: Iterable[str],
    target_urls: Iterable[str],
) -> Dict[int, int]:
    """Figure 7: histogram of crawl-found distances from the seeds to the targets."""
    distances = crawl_distances(web, trace, start_urls)
    histogram: Dict[int, int] = {}
    for url in target_urls:
        distance = distances.get(normalize_url(url), -1)
        histogram[distance] = histogram.get(distance, 0) + 1
    return dict(sorted(histogram.items()))


# ---------------------------------------------------------------------------
# Citation sociology (§1)
# ---------------------------------------------------------------------------

@dataclass
class CoTopic:
    """A topic over-represented in the neighbourhood of the good pages."""

    kcid: int
    name: str
    neighbourhood_share: float
    baseline_share: float
    lift: float


def citation_sociology(
    trace: CrawlTrace,
    web: WebGraph,
    good_urls: set[str],
    kcid_names: Mapping[int, str],
    exclude_kcids: set[int],
    min_neighbour_pages: int = 5,
) -> list[CoTopic]:
    """Find topics unusually frequent within one link of the good pages.

    ``good_urls`` are the crawled pages judged relevant; their out-link
    targets that were also crawled form the neighbourhood.  Each
    neighbourhood page's best-leaf class (recorded during the crawl) is
    compared against the class distribution of the whole crawl; classes
    in ``exclude_kcids`` (the good topic itself and its subtree) are
    skipped.  Returns co-topics ordered by decreasing lift.
    """
    best_leaf = {visit.url: visit.best_leaf_cid for visit in trace.visits}
    overall = Counter(cid for cid in best_leaf.values() if cid is not None)
    neighbourhood: Counter = Counter()
    for url in good_urls:
        if not web.has_page(url):
            continue
        for target in web.out_links(url):
            target = normalize_url(target)
            cid = best_leaf.get(target)
            if cid is not None:
                neighbourhood[cid] += 1
    total_neighbourhood = sum(neighbourhood.values())
    total_overall = sum(overall.values())
    results: list[CoTopic] = []
    if total_neighbourhood < min_neighbour_pages or total_overall == 0:
        return results
    for cid, count in neighbourhood.items():
        if cid in exclude_kcids:
            continue
        share = count / total_neighbourhood
        baseline = overall.get(cid, 0) / total_overall
        lift = share / baseline if baseline > 0 else float("inf")
        results.append(
            CoTopic(
                kcid=cid,
                name=kcid_names.get(cid, str(cid)),
                neighbourhood_share=share,
                baseline_share=baseline,
                lift=lift,
            )
        )
    return sorted(results, key=lambda c: -c.lift)
