"""FocusSystem: the user-facing facade tying every module together.

A :class:`FocusSystem` owns a synthetic web (or accepts one), the topic
taxonomy with its good-topic marking, the trained classifier, and runs
crawls that persist their state in a minidb database — the full
architecture of paper Figure 1.  Typical use::

    from repro import FocusSystem, FocusConfig

    system = FocusSystem.bootstrap(FocusConfig(good_topics=["recreation/cycling"]))
    system.train()
    result = system.crawl(max_pages=1000)
    print(result.harvest_rate())
    for url, score in result.top_hubs(5):
        print(url, score)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.classifier.model import HierarchicalModel
from repro.classifier.training import ClassifierTrainer, ModelInstaller, TrainingConfig
from repro.crawler.focused import CrawlerConfig, CrawlTrace, FocusedCrawler
from repro.crawler.monitor import CrawlMonitor
from repro.crawler.unfocused import UnfocusedCrawler
from repro.minidb import Database
from repro.taxonomy.examples import ExampleStore, generate_examples
from repro.taxonomy.tree import NodeMark, TopicTaxonomy
from repro.webgraph.fetch import Fetcher
from repro.webgraph.graph import SyntheticWebBuilder, WebGraph
from repro.webgraph.urls import normalize_url

from . import metrics
from .checkpoint import CheckpointManager
from .config import FocusConfig
from .schema import create_focus_database


@dataclass
class CrawlResult:
    """A finished crawl plus everything needed to evaluate it."""

    trace: CrawlTrace
    database: Database
    crawler: FocusedCrawler
    web: WebGraph
    taxonomy: TopicTaxonomy
    seeds: List[str]
    good_topics: List[str]

    # -- headline metrics -------------------------------------------------------------
    def harvest_rate(self, skip_first: int = 0) -> float:
        """Average relevance of fetched pages (the paper's headline indicator)."""
        return metrics.average_harvest_rate(self.trace, skip_first)

    def harvest_series(self, window: int = 100) -> list[tuple[int, float]]:
        return metrics.harvest_series(self.trace, window)

    def pages_fetched(self) -> int:
        return self.trace.pages_fetched

    def ground_truth_precision(self) -> float:
        """Fraction of fetched pages whose ground-truth topic is good/subsumed.

        Available only because the substrate is synthetic; the paper has no
        such oracle and relies on the classifier instead (§3.4).
        """
        relevant = self.web.relevant_pages(self.good_topics)
        if not self.trace.fetched_urls:
            return 0.0
        hits = sum(1 for url in self.trace.fetched_urls if url in relevant)
        return hits / len(self.trace.fetched_urls)

    # -- distillation views --------------------------------------------------------------
    def top_hubs(self, k: int = 10) -> list[tuple[str, float]]:
        return self.crawler.top_hubs(k)

    def top_authorities(self, k: int = 10) -> list[tuple[str, float]]:
        return self.crawler.top_authorities(k)

    def authority_distance_histogram(self, top_k: int = 100) -> Dict[int, int]:
        """Figure 7: shortest crawl-found distances from the seed set to the top authorities."""
        authorities = [url for url, _ in self.top_authorities(top_k)]
        return metrics.crawl_distance_histogram(self.web, self.trace, self.seeds, authorities)

    # -- monitoring ----------------------------------------------------------------------
    def monitor(self) -> CrawlMonitor:
        return CrawlMonitor(self.database)

    def citation_sociology(self, relevance_threshold: float = 0.5) -> list[metrics.CoTopic]:
        """§1's citation-sociology query: co-topics within one link of good pages."""
        good_urls = {
            visit.url
            for visit in self.trace.visits
            if visit.relevance > relevance_threshold
        }
        exclude = {
            node.cid
            for node in self.taxonomy.nodes()
            if node.mark in (NodeMark.GOOD, NodeMark.SUBSUMED)
        }
        names = {node.cid: node.path or "root" for node in self.taxonomy.nodes()}
        return metrics.citation_sociology(
            self.trace, self.web, good_urls, names, exclude
        )


class FocusSystem:
    """The resource-discovery system: web + taxonomy + classifier + crawls."""

    def __init__(
        self,
        web: WebGraph,
        taxonomy: TopicTaxonomy,
        config: Optional[FocusConfig] = None,
    ) -> None:
        self.web = web
        self.taxonomy = taxonomy
        self.config = config or FocusConfig()
        self.taxonomy.mark_good(list(self.config.good_topics))
        self.examples: Optional[ExampleStore] = None
        self.model: Optional[HierarchicalModel] = None

    # -- construction -------------------------------------------------------------------
    @classmethod
    def bootstrap(cls, config: Optional[FocusConfig] = None, seed: Optional[int] = None) -> "FocusSystem":
        """Build a synthetic web and a matching taxonomy, then wrap them in a system."""
        config = config or FocusConfig()
        builder = SyntheticWebBuilder(config.web, seed=seed)
        web = builder.build()
        taxonomy = TopicTaxonomy.from_topic_tree(web.topic_tree)
        return cls(web, taxonomy, config)

    @classmethod
    def from_web(
        cls,
        web: WebGraph,
        good_topics: Sequence[str],
        config: Optional[FocusConfig] = None,
    ) -> "FocusSystem":
        """Wrap an existing synthetic web."""
        config = (config or FocusConfig()).copy_with(good_topics=tuple(good_topics))
        taxonomy = TopicTaxonomy.from_topic_tree(web.topic_tree)
        return cls(web, taxonomy, config)

    # -- training ----------------------------------------------------------------------------
    def train(self, training_config: Optional[TrainingConfig] = None) -> HierarchicalModel:
        """Generate example documents and train the hierarchical classifier."""
        self.examples = generate_examples(
            self.taxonomy,
            self.web,
            per_leaf=self.config.examples_per_leaf,
            seed=self.config.seed,
        )
        trainer = ClassifierTrainer(self.taxonomy, self.examples, training_config)
        self.model = trainer.train()
        return self.model

    def install_model(self, database: Database) -> None:
        """Materialise the classifier statistics into a database (TAXONOMY/STAT/BLOB)."""
        if self.model is None:
            raise RuntimeError("call train() before install_model()")
        ModelInstaller(database).install(self.model)

    # -- good-topic administration ----------------------------------------------------------------
    def mark_good(self, paths: Sequence[str]) -> None:
        """Replace the good-topic set (requires retraining only if topics are new leaves)."""
        self.config = self.config.copy_with(good_topics=tuple(paths))
        self.taxonomy.mark_good(list(paths))

    def add_good_topic(self, path: str) -> None:
        """The §3.7 stagnation fix: additionally mark *path* good."""
        self.taxonomy.add_good(path)
        self.config = self.config.copy_with(
            good_topics=tuple(n.path for n in self.taxonomy.good_nodes())
        )

    # -- seeds --------------------------------------------------------------------------------
    def default_seeds(self, count: Optional[int] = None, exclude: Iterable[str] = ()) -> List[str]:
        """Simulated keyword-search + distillation seeds for the primary good topic."""
        count = count if count is not None else self.config.seed_count
        rng = np.random.default_rng(self.config.seed + 101)
        return self.web.keyword_seed_pages(
            self.config.good_topics[0], count=count, rng=rng, exclude=exclude
        )

    # -- crawling -------------------------------------------------------------------------------
    def crawl(
        self,
        max_pages: Optional[int] = None,
        seeds: Optional[Sequence[str]] = None,
        focused: bool = True,
        crawler_config: Optional[CrawlerConfig] = None,
        database: Optional[Database] = None,
        fetch_failure_seed: int = 0,
        checkpoint_dir: Optional[str] = None,
        resume_from: Optional[str] = None,
    ) -> CrawlResult:
        """Run one crawl (focused by default) and return its result bundle.

        Each crawl gets its own database unless one is supplied, so repeated
        runs (reference vs. test crawls, focused vs. unfocused) never share
        frontier state.

        *checkpoint_dir* makes the crawl durable and resumable: its state
        goes to a segment-file/WAL database at that directory and a
        checkpoint is saved at the start and then every
        ``CrawlerConfig.checkpoint_every`` successful fetches.  A killed
        crawl is continued with ``crawl(resume_from=checkpoint_dir)`` on a
        system built from the same seeds, and visits exactly the pages —
        with identical relevance floats — that the uninterrupted crawl
        would have visited.
        """
        if resume_from is not None:
            conflicting = {
                "seeds": seeds is not None,
                "crawler_config": crawler_config is not None,
                "database": database is not None,
                "checkpoint_dir": checkpoint_dir is not None,
                "focused": focused is not True,
                "fetch_failure_seed": fetch_failure_seed != 0,
            }
            rejected = sorted(name for name, given in conflicting.items() if given)
            if rejected:
                raise ValueError(
                    f"resume_from restores {rejected} from the checkpoint; "
                    "do not pass them explicitly (only max_pages may be overridden)"
                )
            return self._resume_crawl(resume_from, max_pages)
        if self.model is None:
            self.train()
        # Copy the system-level crawler config (including the engine's
        # batching knobs) so per-crawl overrides never mutate it.
        config = crawler_config or dataclasses.replace(self.config.crawler)
        if max_pages is not None:
            config.max_pages = max_pages
        if database is None:
            database = create_focus_database(
                self.config.buffer_pool_pages,
                path=checkpoint_dir,
                wal_fsync_batch=config.wal_fsync_batch,
                compact_every=config.compact_every,
                compact_min_garbage_ratio=config.compact_min_garbage_ratio,
            )
        if checkpoint_dir is not None and database.app_state() is not None:
            database.close()
            raise ValueError(
                f"{checkpoint_dir!r} already holds a crawl checkpoint; "
                "continue it with crawl(resume_from=...) or point checkpoint_dir "
                "at a fresh directory"
            )
        if not database.has_table("TAXONOMY"):
            # The crawl database also carries the classifier tables, as in the
            # paper's single-DB architecture (and so monitoring SQL can join
            # CRAWL against TAXONOMY).
            self.install_model(database)
        # Make each crawl's transient-failure stream a deterministic function
        # of its own seed, not of how many fetches earlier crawls performed.
        self.web.servers.reseed(fetch_failure_seed)
        fetcher = Fetcher(self.web, failure_seed=fetch_failure_seed)
        crawler_cls = FocusedCrawler if focused else UnfocusedCrawler
        crawler = crawler_cls(fetcher, self.model, self.taxonomy, database, config)
        seed_urls = [normalize_url(u) for u in (seeds if seeds is not None else self.default_seeds())]
        crawler.add_seeds(seed_urls)
        if checkpoint_dir is not None:
            # The transport (not the bare fetcher) is the checkpointed
            # fetch layer: it snapshots the whole I/O stack's RNG streams
            # (for the default simulated transport the two are identical).
            manager = CheckpointManager(
                database,
                crawler,
                crawler.engine.transport,
                self.web.servers,
                seeds=seed_urls,
                good_topics=list(self.config.good_topics),
                fetch_failure_seed=fetch_failure_seed,
                focused=focused,
            )
            manager.attach()
            # An immediate checkpoint makes the crawl resumable from page
            # zero — a kill before the first periodic save loses nothing.
            manager.save()
        trace = crawler.crawl()
        return CrawlResult(
            trace=trace,
            database=database,
            crawler=crawler,
            web=self.web,
            taxonomy=self.taxonomy,
            seeds=seed_urls,
            good_topics=list(self.config.good_topics),
        )

    def _resume_crawl(self, path: str, max_pages: Optional[int] = None) -> CrawlResult:
        """Continue a killed crawl from its last checkpoint at *path*.

        The system must be built over the same web (same seeds/config) as
        the original run; everything else — tables, frontier, engine
        counters, RNG stream positions — comes from the checkpoint.
        """
        database, checkpoint = CheckpointManager.load(
            path, buffer_pool_pages=self.config.buffer_pool_pages
        )
        if self.model is None:
            self.train()
        config = checkpoint.config
        if max_pages is not None:
            config.max_pages = max_pages
        # Honour the crawl's WAL group-commit and compaction policies after
        # the reopen (the checkpoint is read from the database, so open()
        # could not know them).
        if getattr(config, "wal_fsync_batch", 0):
            database.backend.wal.fsync_batch = config.wal_fsync_batch
        compactor = database.backend.compactor
        compactor.compact_every = getattr(config, "compact_every", 1)
        compactor.min_garbage_ratio = getattr(config, "compact_min_garbage_ratio", 0.5)
        fetcher = Fetcher(self.web, failure_seed=checkpoint.fetch_failure_seed)
        self.web.servers.restore_rng(checkpoint.server_rng_state)
        crawler_cls = FocusedCrawler if checkpoint.focused else UnfocusedCrawler
        crawler = crawler_cls(fetcher, self.model, self.taxonomy, database, config)
        # The engine rebuilt the transport stack from the checkpointed
        # config; rewind its RNG streams (fetcher included) to the save.
        crawler.engine.transport.restore_state(checkpoint.fetcher_state)
        crawler.frontier.restore_state(checkpoint.frontier_state)
        crawler.engine.restore_state(checkpoint.engine_state)
        manager = CheckpointManager(
            database,
            crawler,
            crawler.engine.transport,
            self.web.servers,
            seeds=list(checkpoint.seeds),
            good_topics=list(checkpoint.good_topics),
            fetch_failure_seed=checkpoint.fetch_failure_seed,
            focused=checkpoint.focused,
        )
        manager.checkpoints_saved = checkpoint.checkpoints_saved
        manager.attach()
        trace = crawler.crawl()
        return CrawlResult(
            trace=trace,
            database=database,
            crawler=crawler,
            web=self.web,
            taxonomy=self.taxonomy,
            seeds=list(checkpoint.seeds),
            good_topics=list(checkpoint.good_topics),
        )
