"""FocusSystem: the user-facing facade tying every module together.

A :class:`FocusSystem` owns a synthetic web (or accepts one), the topic
taxonomy with its good-topic marking, the trained classifier, and runs
crawls that persist their state in a minidb database — the full
architecture of paper Figure 1.  Typical use::

    from repro import FocusSystem, FocusConfig

    system = FocusSystem.bootstrap(FocusConfig(good_topics=["recreation/cycling"]))
    system.train()
    result = system.crawl(max_pages=1000)
    print(result.harvest_rate())
    for url, score in result.top_hubs(5):
        print(url, score)
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.classifier.model import HierarchicalModel
from repro.classifier.training import ClassifierTrainer, ModelInstaller, TrainingConfig
from repro.crawler.focused import CrawlerConfig, CrawlTrace, FocusedCrawler
from repro.crawler.monitor import CrawlMonitor
from repro.crawler.unfocused import UnfocusedCrawler
from repro.minidb import Database
from repro.taxonomy.examples import ExampleStore, generate_examples
from repro.taxonomy.tree import NodeMark, TopicTaxonomy
from repro.webgraph.fetch import Fetcher
from repro.webgraph.graph import SyntheticWebBuilder, WebGraph
from repro.webgraph.urls import normalize_url

from . import metrics
from .checkpoint import MANIFEST_FILE, CheckpointManager, read_coordinator_manifest
from .config import FocusConfig, JobSpec
from .schema import create_focus_database

#: Lifecycle states of a :class:`CrawlHandle`.
HANDLE_STATUSES = (
    "pending",     # created, no round executed yet
    "running",     # inside / between step() calls
    "paused",      # pause() called; resume() re-arms it
    "completed",   # budget met or frontier exhausted
    "exhausted",   # fetch budget burned before the page budget was met
    "cancelled",   # cancel() called; partial result available
    "failed",      # a step raised; .error carries the exception
)

#: States in which a handle will never execute another round.
TERMINAL_STATUSES = ("completed", "exhausted", "cancelled", "failed")


@dataclass
class CrawlResult:
    """A finished crawl plus everything needed to evaluate it."""

    trace: CrawlTrace
    database: Database
    crawler: FocusedCrawler
    web: WebGraph
    taxonomy: TopicTaxonomy
    seeds: List[str]
    good_topics: List[str]
    #: Durable home of the crawl's tables, when it had one; lets
    #: :meth:`monitor` reopen a database that was closed after the crawl.
    checkpoint_path: Optional[str] = None

    # -- headline metrics -------------------------------------------------------------
    def harvest_rate(self, skip_first: int = 0) -> float:
        """Average relevance of fetched pages (the paper's headline indicator)."""
        return metrics.average_harvest_rate(self.trace, skip_first)

    def harvest_series(self, window: int = 100) -> list[tuple[int, float]]:
        return metrics.harvest_series(self.trace, window)

    def pages_fetched(self) -> int:
        return self.trace.pages_fetched

    def ground_truth_precision(self) -> float:
        """Fraction of fetched pages whose ground-truth topic is good/subsumed.

        Available only because the substrate is synthetic; the paper has no
        such oracle and relies on the classifier instead (§3.4).
        """
        relevant = self.web.relevant_pages(self.good_topics)
        if not self.trace.fetched_urls:
            return 0.0
        hits = sum(1 for url in self.trace.fetched_urls if url in relevant)
        return hits / len(self.trace.fetched_urls)

    # -- distillation views --------------------------------------------------------------
    def top_hubs(self, k: int = 10) -> list[tuple[str, float]]:
        return self.crawler.top_hubs(k)

    def top_authorities(self, k: int = 10) -> list[tuple[str, float]]:
        return self.crawler.top_authorities(k)

    def authority_distance_histogram(self, top_k: int = 100) -> Dict[int, int]:
        """Figure 7: shortest crawl-found distances from the seed set to the top authorities."""
        authorities = [url for url, _ in self.top_authorities(top_k)]
        return metrics.crawl_distance_histogram(self.web, self.trace, self.seeds, authorities)

    # -- monitoring ----------------------------------------------------------------------
    def monitor(self) -> CrawlMonitor:
        """SQL-backed monitoring over the crawl's tables.

        Works on a completed job whose database handle was already
        closed (e.g. by :meth:`CrawlHandle.close` or the service's job
        manager): a durable crawl is reopened from ``checkpoint_path``
        transparently, so callers never juggle reopen-by-hand.
        """
        if getattr(self.database, "sharded", False):
            raise RuntimeError(
                "a sharded crawl keeps one database per shard; open a "
                "CrawlMonitor over an individual shard database "
                "(shard-XX/ under the checkpoint directory) instead"
            )
        if self.database.closed:
            if self.checkpoint_path is None:
                raise RuntimeError(
                    "this crawl's in-memory database was closed and it has no "
                    "checkpoint directory to reopen from"
                )
            self.database = Database.open(self.checkpoint_path)
        return CrawlMonitor(self.database)

    def citation_sociology(self, relevance_threshold: float = 0.5) -> list[metrics.CoTopic]:
        """§1's citation-sociology query: co-topics within one link of good pages."""
        good_urls = {
            visit.url
            for visit in self.trace.visits
            if visit.relevance > relevance_threshold
        }
        exclude = {
            node.cid
            for node in self.taxonomy.nodes()
            if node.mark in (NodeMark.GOOD, NodeMark.SUBSUMED)
        }
        names = {node.cid: node.path or "root" for node in self.taxonomy.nodes()}
        return metrics.citation_sociology(
            self.trace, self.web, good_urls, names, exclude
        )


class CrawlHandle:
    """A live crawl job: the single way a crawl is started, stepped, and resumed.

    :meth:`FocusSystem.start` returns one of these for a fresh
    :class:`~repro.core.config.JobSpec`; :meth:`FocusSystem.resume`
    returns one re-armed from a checkpoint directory.  The handle owns
    the job's database, crawler, and (for durable jobs) checkpoint
    manager, and exposes the lifecycle the crawl service builds on:

    * :meth:`run` — drive the crawl to its terminal state (what the
      classic ``FocusSystem.crawl`` facade now does under the hood);
    * :meth:`step` — execute at most N engine rounds and return, the
      cooperative-scheduling quantum the multi-tenant job manager
      interleaves;
    * :meth:`pause` / :meth:`resume` / :meth:`cancel` — operator
      controls; pausing a durable job saves a checkpoint first, so a
      paused job survives a process death;
    * :meth:`progress` / :meth:`harvest_series` / :meth:`io_snapshot` —
      live observability read from in-memory crawl state (safe while a
      worker thread is mid-step; no cross-thread SQL);
    * :meth:`result` — the :class:`CrawlResult` bundle, in any terminal
      state (a cancelled job yields its partial crawl).

    Stepping is bit-deterministic: the engine's round sizing always sees
    the full page budget (``CrawlEngine.run(budget, max_rounds=...)``),
    so a crawl sliced into single rounds between other tenants visits
    exactly the pages — with identical relevance floats — that an
    uninterrupted solo run visits.
    """

    def __init__(
        self,
        system: "FocusSystem",
        spec: JobSpec,
        crawler: FocusedCrawler,
        web: WebGraph,
        seeds: List[str],
        manager: Optional[CheckpointManager] = None,
    ) -> None:
        self.system = system
        self.spec = spec
        self.crawler = crawler
        self.web = web
        self.seeds = list(seeds)
        self.manager = manager
        self.status = "pending"
        self.error: Optional[BaseException] = None
        self._result: Optional[CrawlResult] = None

    # -- views -----------------------------------------------------------------------
    @property
    def database(self) -> Database:
        return self.crawler.database

    @property
    def trace(self) -> CrawlTrace:
        return self.crawler.trace

    @property
    def budget(self) -> int:
        """The job's full page budget (already folded into the crawler config)."""
        return self.crawler.config.max_pages

    @property
    def pages_fetched(self) -> int:
        return self.trace.pages_fetched

    def fetch_attempts(self) -> int:
        """Total fetch attempts so far (successes, 404s, skips, and failures).

        Read from the engine's transport (the whole I/O stack: http or
        replay transports never touch the simulated fetcher), falling
        back to the bare fetcher for crawler shapes without one engine.
        """
        engine = getattr(self.crawler, "engine", None)
        stats = getattr(getattr(engine, "transport", None), "stats", None)
        if stats is None:
            stats = getattr(self.crawler.fetcher, "stats", None)
        return stats.attempts if stats is not None else 0

    @property
    def done(self) -> bool:
        return self.status in TERMINAL_STATUSES

    # -- lifecycle -------------------------------------------------------------------
    def step(self, rounds: Optional[int] = 1) -> int:
        """Execute at most *rounds* engine rounds (None = run to completion).

        Returns the number of pages fetched by this call.  A paused or
        terminal handle is a no-op returning 0, so schedulers can sweep
        their job table without state checks.
        """
        if self.done or self.status == "paused":
            return 0
        self.status = "running"
        before = self.trace.pages_fetched
        try:
            self.crawler.engine.run(self.budget, max_rounds=rounds)
        except BaseException as exc:
            self.status = "failed"
            self.error = exc
            raise
        fetched = self.trace.pages_fetched - before
        if self.trace.pages_fetched >= self.budget or self.trace.stagnated:
            self._finish("completed")
        elif self.spec.fetch_budget and self.fetch_attempts() >= self.spec.fetch_budget:
            # The politeness/cost budget ran out first: stop cleanly at a
            # round boundary with the partial crawl as the result.
            self._finish("exhausted")
        return fetched

    def run(self) -> CrawlResult:
        """Drive the crawl to a terminal state and return its result."""
        if self.status == "paused":
            raise RuntimeError("handle is paused; call resume() before run()")
        # A fetch budget is enforced at round boundaries, so honouring it
        # means stepping one round at a time (bit-identical either way).
        rounds = 1 if self.spec.fetch_budget else None
        while not self.done:
            self.step(rounds=rounds)
        return self.result()

    def pause(self) -> None:
        """Stop scheduling this job; durable jobs save a checkpoint first.

        The handle stays resumable in-process via :meth:`resume`; a
        durable job can additionally be re-armed in a *new* process with
        :meth:`FocusSystem.resume` on its checkpoint directory.
        """
        if self.done:
            raise RuntimeError(f"cannot pause a {self.status} crawl")
        if self.manager is not None:
            self.manager.save()
        self.status = "paused"

    def resume(self) -> None:
        """Re-arm a paused handle so :meth:`step` / :meth:`run` proceed."""
        if self.status != "paused":
            raise RuntimeError(f"cannot resume a {self.status} crawl (only paused)")
        self.status = "pending"

    def cancel(self) -> None:
        """Terminate the job, keeping its partial crawl as the result."""
        if self.done:
            return
        self._finish("cancelled")

    def close(self) -> None:
        """Release the job's database handle and fetch transport.

        The result can reopen durable databases; closing the transport
        flushes a recording cassette and releases any shared HTTP
        session/connections.
        """
        if not self.database.closed:
            self.database.close()
        transport = getattr(getattr(self.crawler, "engine", None), "transport", None)
        transport_close = getattr(transport, "close", None)
        if callable(transport_close):
            transport_close()

    # -- observability ---------------------------------------------------------------
    def progress(self) -> dict:
        """A JSON-safe snapshot of the job's progress (live while crawling)."""
        trace = self.trace
        info = {
            "name": self.spec.name,
            "status": self.status,
            "pages_fetched": trace.pages_fetched,
            "budget": self.budget,
            "failures": len(trace.failed_urls),
            "fetch_attempts": self.fetch_attempts(),
            "fetch_budget": self.spec.fetch_budget,
            "distillations": trace.distillations,
            "stagnated": trace.stagnated,
            "harvest_rate": metrics.average_harvest_rate(trace),
            "checkpoints_saved": self.manager.checkpoints_saved if self.manager else 0,
        }
        pipeline = self.pipeline_stats()
        if pipeline is not None:
            info["pipeline"] = pipeline
        return info

    def pipeline_stats(self) -> Optional[dict]:
        """Saturation counters (fetch overlap, prefetch, frontier buckets).

        ``None`` for crawler shapes without a single engine (e.g. the
        sharded crawler, whose shards each keep their own counters).
        """
        engine = getattr(self.crawler, "engine", None)
        stats = getattr(engine, "pipeline_stats", None)
        return stats() if stats is not None else None

    def harvest_series(self, window: int = 100) -> list[tuple[int, float]]:
        """The live harvest curve, from the in-memory trace."""
        return metrics.harvest_series(self.trace, window)

    def io_snapshot(self) -> dict:
        """The job's I/O counters (buffer pool, WAL, segments).

        Sharded crawlers aggregate across their shard databases (totals
        plus a ``shards`` breakdown); everything else reads the one job
        database directly.
        """
        crawler_snapshot = getattr(self.crawler, "io_snapshot", None)
        if crawler_snapshot is not None:
            return crawler_snapshot()
        return self.database.io_snapshot()

    def monitor(self) -> CrawlMonitor:
        """SQL monitoring over the job's database.

        Not safe while another thread is mid-:meth:`step`; the service
        exposes it only for paused/terminal jobs and serves live stats
        from :meth:`progress` / :meth:`io_snapshot` instead.
        """
        return CrawlMonitor(self.database)

    def result(self) -> CrawlResult:
        """The crawl's result bundle; available in any terminal state."""
        if self._result is None:
            raise RuntimeError(
                f"crawl is {self.status}; result() is available once it completes "
                "(or is cancelled)"
            )
        return self._result

    # -- internals -------------------------------------------------------------------
    def _finish(self, status: str) -> None:
        if self.manager is not None:
            # Persist the final state so the checkpoint directory holds
            # the finished (or cancelled-as-of-now) crawl, and a reopened
            # database needs no WAL replay to agree with the result.
            self.manager.save()
        self.status = status
        self._result = CrawlResult(
            trace=self.trace,
            database=self.database,
            crawler=self.crawler,
            web=self.web,
            taxonomy=self.system.taxonomy,
            seeds=list(self.seeds),
            good_topics=list(self.system.config.good_topics),
            checkpoint_path=self.spec.checkpoint_dir,
        )


class FocusSystem:
    """The resource-discovery system: web + taxonomy + classifier + crawls."""

    def __init__(
        self,
        web: WebGraph,
        taxonomy: TopicTaxonomy,
        config: Optional[FocusConfig] = None,
    ) -> None:
        self.web = web
        self.taxonomy = taxonomy
        self.config = config or FocusConfig()
        self.taxonomy.mark_good(list(self.config.good_topics))
        self.examples: Optional[ExampleStore] = None
        self.model: Optional[HierarchicalModel] = None

    # -- construction -------------------------------------------------------------------
    @classmethod
    def bootstrap(cls, config: Optional[FocusConfig] = None, seed: Optional[int] = None) -> "FocusSystem":
        """Build a synthetic web and a matching taxonomy, then wrap them in a system."""
        config = config or FocusConfig()
        builder = SyntheticWebBuilder(config.web, seed=seed)
        web = builder.build()
        taxonomy = TopicTaxonomy.from_topic_tree(web.topic_tree)
        return cls(web, taxonomy, config)

    @classmethod
    def from_web(
        cls,
        web: WebGraph,
        good_topics: Sequence[str],
        config: Optional[FocusConfig] = None,
    ) -> "FocusSystem":
        """Wrap an existing synthetic web."""
        config = (config or FocusConfig()).copy_with(good_topics=tuple(good_topics))
        taxonomy = TopicTaxonomy.from_topic_tree(web.topic_tree)
        return cls(web, taxonomy, config)

    # -- training ----------------------------------------------------------------------------
    def train(self, training_config: Optional[TrainingConfig] = None) -> HierarchicalModel:
        """Generate example documents and train the hierarchical classifier."""
        self.examples = generate_examples(
            self.taxonomy,
            self.web,
            per_leaf=self.config.examples_per_leaf,
            seed=self.config.seed,
        )
        trainer = ClassifierTrainer(self.taxonomy, self.examples, training_config)
        self.model = trainer.train()
        return self.model

    def install_model(self, database: Database) -> None:
        """Materialise the classifier statistics into a database (TAXONOMY/STAT/BLOB)."""
        if self.model is None:
            raise RuntimeError("call train() before install_model()")
        ModelInstaller(database).install(self.model)

    # -- good-topic administration ----------------------------------------------------------------
    def mark_good(self, paths: Sequence[str]) -> None:
        """Replace the good-topic set (requires retraining only if topics are new leaves)."""
        self.config = self.config.copy_with(good_topics=tuple(paths))
        self.taxonomy.mark_good(list(paths))

    def add_good_topic(self, path: str) -> None:
        """The §3.7 stagnation fix: additionally mark *path* good."""
        self.taxonomy.add_good(path)
        self.config = self.config.copy_with(
            good_topics=tuple(n.path for n in self.taxonomy.good_nodes())
        )

    # -- seeds --------------------------------------------------------------------------------
    def default_seeds(self, count: Optional[int] = None, exclude: Iterable[str] = ()) -> List[str]:
        """Simulated keyword-search + distillation seeds for the primary good topic."""
        count = count if count is not None else self.config.seed_count
        rng = np.random.default_rng(self.config.seed + 101)
        return self.web.keyword_seed_pages(
            self.config.good_topics[0], count=count, rng=rng, exclude=exclude
        )

    # -- crawling -------------------------------------------------------------------------------
    def start(
        self,
        spec: Optional[JobSpec] = None,
        *,
        database: Optional[Database] = None,
        private_servers: bool = False,
        transport_wrap=None,
        shard_schedule=None,
        **overrides,
    ) -> CrawlHandle:
        """Arm one crawl job and return its :class:`CrawlHandle` (not yet running).

        This is the single entry point every way of crawling goes
        through: the classic :meth:`crawl` facade builds a
        :class:`~repro.core.config.JobSpec` and calls ``start(...).run()``;
        the multi-tenant service submits specs and steps the handles.
        Keyword *overrides* are JobSpec field replacements for quick
        one-off jobs (``system.start(max_pages=200)``).

        *database* injects an existing database instead of creating one
        (kept out of the spec: a live handle is not serializable).
        *private_servers* gives the job its own clone of the web's
        server pool, so concurrent jobs do not interleave draws on the
        shared failure/latency stream — each stays bit-identical to a
        solo run.  *transport_wrap* (a ``transport -> transport``
        callable) lets the service splice its shared fetch pool around
        the job's transport stack.
        """
        spec = spec or JobSpec()
        if overrides:
            spec = spec.replace(**overrides)
        if spec.good_topics is not None and tuple(spec.good_topics) != tuple(
            self.config.good_topics
        ):
            raise ValueError(
                f"this system is trained for {tuple(self.config.good_topics)}, "
                f"not {tuple(spec.good_topics)}; build one per topic set with "
                "FocusSystem.from_web (the service's JobManager does this per job)"
            )
        if self.model is None:
            self.train()
        # Copy the system-level crawler config (including the engine's
        # batching knobs) so per-crawl overrides never mutate it; an
        # explicitly supplied config is used as-is (callers own it).
        config = spec.crawler if spec.crawler is not None else dataclasses.replace(
            self.config.crawler
        )
        if spec.max_pages is not None:
            config.max_pages = spec.max_pages
        if spec.storage is not None:
            config.storage = spec.storage
        if getattr(spec, "cassette_path", ""):
            config.cassette_path = spec.cassette_path
            config.cassette_mode = spec.cassette_mode
        if getattr(config, "engine", "auto") == "sharded":
            return self._start_sharded(
                spec,
                config,
                database=database,
                private_servers=private_servers,
                transport_wrap=transport_wrap,
                shard_schedule=shard_schedule,
            )
        if shard_schedule is not None:
            raise ValueError("shard_schedule only applies to engine='sharded' crawls")
        if database is None:
            database = create_focus_database(
                self.config.buffer_pool_pages,
                path=spec.checkpoint_dir,
                storage=config.resolve_storage(),
            )
        if spec.checkpoint_dir is not None and database.app_state() is not None:
            database.close()
            raise ValueError(
                f"{spec.checkpoint_dir!r} already holds a crawl checkpoint; "
                "continue it with resume(...) or point checkpoint_dir "
                "at a fresh directory"
            )
        if not database.has_table("TAXONOMY"):
            # The crawl database also carries the classifier tables, as in the
            # paper's single-DB architecture (and so monitoring SQL can join
            # CRAWL against TAXONOMY).
            self.install_model(database)
        web = self.web.with_private_servers() if private_servers else self.web
        # Make each crawl's transient-failure stream a deterministic function
        # of its own seed, not of how many fetches earlier crawls performed.
        web.servers.reseed(spec.fetch_failure_seed)
        fetcher = Fetcher(web, failure_seed=spec.fetch_failure_seed)
        crawler_cls = FocusedCrawler if spec.focused else UnfocusedCrawler
        crawler = crawler_cls(fetcher, self.model, self.taxonomy, database, config)
        if transport_wrap is not None:
            crawler.engine.transport = transport_wrap(crawler.engine.transport)
        seed_urls = [
            normalize_url(u)
            for u in (spec.seeds if spec.seeds is not None else self.default_seeds())
        ]
        crawler.add_seeds(seed_urls)
        manager = None
        if spec.checkpoint_dir is not None:
            # The transport (not the bare fetcher) is the checkpointed
            # fetch layer: it snapshots the whole I/O stack's RNG streams
            # (for the default simulated transport the two are identical).
            manager = CheckpointManager(
                database,
                crawler,
                crawler.engine.transport,
                web.servers,
                seeds=seed_urls,
                good_topics=list(self.config.good_topics),
                fetch_failure_seed=spec.fetch_failure_seed,
                focused=spec.focused,
            )
            manager.attach()
            # An immediate checkpoint makes the crawl resumable from page
            # zero — a kill before the first periodic save loses nothing.
            manager.save()
        return CrawlHandle(
            system=self,
            spec=spec,
            crawler=crawler,
            web=web,
            seeds=seed_urls,
            manager=manager,
        )

    def _start_sharded(
        self,
        spec: JobSpec,
        config: CrawlerConfig,
        *,
        database: Optional[Database],
        private_servers: bool,
        transport_wrap,
        shard_schedule,
    ) -> CrawlHandle:
        """The ``engine="sharded"`` arm of :meth:`start`.

        Builds the coordinator + N shard workers
        (:func:`repro.crawler.sharded.build_sharded_crawler`) in place of
        a single :class:`CrawlEngine`; durable jobs get one database per
        shard under the checkpoint directory plus the coordinator's
        manifest, managed by a :class:`ShardedCheckpointManager`.
        """
        from repro.crawler.sharded import build_sharded_crawler

        if database is not None:
            raise ValueError(
                "engine='sharded' builds one database per shard; an injected "
                "database cannot be partitioned — drop the database argument"
            )
        if spec.checkpoint_dir is not None and os.path.exists(
            os.path.join(spec.checkpoint_dir, MANIFEST_FILE)
        ):
            raise ValueError(
                f"{spec.checkpoint_dir!r} already holds a sharded crawl "
                "checkpoint; continue it with resume(...) or point "
                "checkpoint_dir at a fresh directory"
            )
        web = self.web.with_private_servers() if private_servers else self.web
        crawler = build_sharded_crawler(
            web,
            self.model,
            self.taxonomy,
            config,
            focused=spec.focused,
            fetch_failure_seed=spec.fetch_failure_seed,
            checkpoint_dir=spec.checkpoint_dir,
            buffer_pool_pages=self.config.buffer_pool_pages,
            transport_wrap=transport_wrap,
            schedule=shard_schedule,
        )
        seed_urls = [
            normalize_url(u)
            for u in (spec.seeds if spec.seeds is not None else self.default_seeds())
        ]
        crawler.add_seeds(seed_urls)
        manager = None
        if spec.checkpoint_dir is not None:
            manager = crawler.checkpoint_manager(
                spec.checkpoint_dir,
                seeds=seed_urls,
                good_topics=list(self.config.good_topics),
                fetch_failure_seed=spec.fetch_failure_seed,
                focused=spec.focused,
            )
            manager.attach()
            manager.save()
        return CrawlHandle(
            system=self,
            spec=spec,
            crawler=crawler,
            web=web,
            seeds=seed_urls,
            manager=manager,
        )

    def resume(
        self,
        path: str,
        max_pages: Optional[int] = None,
        *,
        private_servers: bool = False,
        transport_wrap=None,
        shard_schedule=None,
    ) -> CrawlHandle:
        """Re-arm a checkpointed crawl at *path* as a :class:`CrawlHandle`.

        The system must be built over the same web (same seeds/config) as
        the original run; everything else — tables, frontier, engine
        counters, RNG stream positions — comes from the checkpoint.  Only
        ``max_pages`` may be overridden (e.g. to extend a finished
        crawl's budget); the other knobs ride inside the checkpoint.
        """
        if os.path.exists(os.path.join(path, MANIFEST_FILE)):
            return self._resume_sharded(
                path,
                max_pages,
                private_servers=private_servers,
                transport_wrap=transport_wrap,
                shard_schedule=shard_schedule,
            )
        if shard_schedule is not None:
            raise ValueError("shard_schedule only applies to sharded checkpoints")
        database, checkpoint = CheckpointManager.load(
            path, buffer_pool_pages=self.config.buffer_pool_pages
        )
        if self.model is None:
            self.train()
        config = checkpoint.config
        if max_pages is not None:
            config.max_pages = max_pages
        # Honour the crawl's WAL group-commit and compaction policies after
        # the reopen (the checkpoint is read from the database, so open()
        # could not know them).  resolve_storage() folds the legacy
        # per-knob fields of pre-StorageConfig checkpoints.
        storage = config.resolve_storage()
        if storage.wal_fsync_batch:
            database.backend.wal.fsync_batch = storage.wal_fsync_batch
        compactor = database.backend.compactor
        compactor.compact_every = storage.compact_every
        compactor.min_garbage_ratio = storage.compact_min_garbage_ratio
        database.backend.configure_background_compaction(
            getattr(storage, "background_compaction", False),
            getattr(storage, "compact_wal_bytes", 0),
        )
        web = self.web.with_private_servers() if private_servers else self.web
        fetcher = Fetcher(web, failure_seed=checkpoint.fetch_failure_seed)
        web.servers.restore_rng(checkpoint.server_rng_state)
        crawler_cls = FocusedCrawler if checkpoint.focused else UnfocusedCrawler
        crawler = crawler_cls(fetcher, self.model, self.taxonomy, database, config)
        if transport_wrap is not None:
            crawler.engine.transport = transport_wrap(crawler.engine.transport)
        # The engine rebuilt the transport stack from the checkpointed
        # config; rewind its RNG streams (fetcher included) to the save.
        crawler.engine.transport.restore_state(checkpoint.fetcher_state)
        crawler.frontier.restore_state(checkpoint.frontier_state)
        crawler.engine.restore_state(checkpoint.engine_state)
        manager = CheckpointManager(
            database,
            crawler,
            crawler.engine.transport,
            web.servers,
            seeds=list(checkpoint.seeds),
            good_topics=list(checkpoint.good_topics),
            fetch_failure_seed=checkpoint.fetch_failure_seed,
            focused=checkpoint.focused,
        )
        manager.checkpoints_saved = checkpoint.checkpoints_saved
        manager.attach()
        spec = JobSpec(
            seeds=tuple(checkpoint.seeds),
            max_pages=config.max_pages,
            focused=checkpoint.focused,
            fetch_failure_seed=checkpoint.fetch_failure_seed,
            checkpoint_dir=path,
        )
        return CrawlHandle(
            system=self,
            spec=spec,
            crawler=crawler,
            web=web,
            seeds=list(checkpoint.seeds),
            manager=manager,
        )

    def _resume_sharded(
        self,
        path: str,
        max_pages: Optional[int] = None,
        *,
        private_servers: bool = False,
        transport_wrap=None,
        shard_schedule=None,
    ) -> CrawlHandle:
        """Re-arm a sharded crawl from its coordinator manifest.

        Every shard database reopens rewound to the manifest's round
        (``replay_upto_cut``), the coordinator adopts the manifest's
        engine state, and each worker restores its frontier / transport /
        server-RNG snapshot — so the resumed fleet continues exactly
        where an uninterrupted run would be.
        """
        from repro.crawler.sharded import build_sharded_crawler

        manifest = read_coordinator_manifest(path)
        if self.model is None:
            self.train()
        config = manifest.config
        if max_pages is not None:
            config.max_pages = max_pages
        web = self.web.with_private_servers() if private_servers else self.web
        crawler = build_sharded_crawler(
            web,
            self.model,
            self.taxonomy,
            config,
            focused=manifest.focused,
            fetch_failure_seed=manifest.fetch_failure_seed,
            checkpoint_dir=path,
            buffer_pool_pages=self.config.buffer_pool_pages,
            transport_wrap=transport_wrap,
            schedule=shard_schedule,
            manifest=manifest,
        )
        manager = crawler.checkpoint_manager(
            path,
            seeds=list(manifest.seeds),
            good_topics=list(manifest.good_topics),
            fetch_failure_seed=manifest.fetch_failure_seed,
            focused=manifest.focused,
            checkpoints_saved=manifest.checkpoints_saved,
        )
        manager.attach()
        spec = JobSpec(
            seeds=tuple(manifest.seeds),
            max_pages=config.max_pages,
            focused=manifest.focused,
            fetch_failure_seed=manifest.fetch_failure_seed,
            checkpoint_dir=path,
        )
        return CrawlHandle(
            system=self,
            spec=spec,
            crawler=crawler,
            web=web,
            seeds=list(manifest.seeds),
            manager=manager,
        )

    def crawl(
        self,
        max_pages: Optional[int] = None,
        seeds: Optional[Sequence[str]] = None,
        focused: bool = True,
        crawler_config: Optional[CrawlerConfig] = None,
        database: Optional[Database] = None,
        fetch_failure_seed: int = 0,
        checkpoint_dir: Optional[str] = None,
        resume_from: Optional[str] = None,
    ) -> CrawlResult:
        """Run one crawl (focused by default) and return its result bundle.

        A convenience facade over :meth:`start` / :meth:`resume` — it
        builds the equivalent :class:`~repro.core.config.JobSpec`, runs
        the handle to completion, and returns its result.  All historic
        keyword arguments keep working unchanged.

        Each crawl gets its own database unless one is supplied, so repeated
        runs (reference vs. test crawls, focused vs. unfocused) never share
        frontier state.

        *checkpoint_dir* makes the crawl durable and resumable: its state
        goes to a segment-file/WAL database at that directory and a
        checkpoint is saved at the start and then every
        ``CrawlerConfig.checkpoint_every`` successful fetches.  A killed
        crawl is continued with ``crawl(resume_from=checkpoint_dir)`` on a
        system built from the same seeds, and visits exactly the pages —
        with identical relevance floats — that the uninterrupted crawl
        would have visited.
        """
        if resume_from is not None:
            conflicting = {
                "seeds": seeds is not None,
                "crawler_config": crawler_config is not None,
                "database": database is not None,
                "checkpoint_dir": checkpoint_dir is not None,
                "focused": focused is not True,
                "fetch_failure_seed": fetch_failure_seed != 0,
            }
            rejected = sorted(name for name, given in conflicting.items() if given)
            if rejected:
                raise ValueError(
                    f"resume_from restores {rejected} from the checkpoint; "
                    "do not pass them explicitly (only max_pages may be overridden)"
                )
            return self.resume(resume_from, max_pages).run()
        spec = JobSpec(
            seeds=tuple(seeds) if seeds is not None else None,
            max_pages=max_pages,
            focused=focused,
            fetch_failure_seed=fetch_failure_seed,
            checkpoint_dir=checkpoint_dir,
            crawler=crawler_config,
        )
        return self.start(spec, database=database).run()
