"""JobManager: fair multiplexing of K crawl jobs over one fetch pipeline.

This is the crawl-as-a-service core.  Each submitted
:class:`~repro.core.config.JobSpec` becomes a
:class:`~repro.core.system.CrawlHandle` armed with

* its own minidb database (durable iff the spec names a checkpoint
  directory), checkpoint state, and monitor;
* a private clone of the web's server pool, so concurrent jobs never
  interleave draws on the shared failure/latency stream — every job's
  crawl is bit-identical to the same job run solo;
* a :class:`~repro.service.pool.PooledTransport` spliced around its
  transport stack, so all jobs share one global in-flight/politeness
  budget (:class:`~repro.crawler.policies.FetchPolicy`).

Scheduling is cooperative round-robin: each sweep of :meth:`step_once`
gives every runnable job one quantum of ``rounds_per_step`` engine
rounds (``CrawlEngine.run(budget, max_rounds=...)``), which keeps the
schedule fair by construction and — because round sizing always sees the
job's full page budget — bit-deterministic.  A background worker thread
(:meth:`start`) drives sweeps for the HTTP service; tests and benchmarks
call :meth:`run_until_idle` inline.

Jobs may name different good-topic sets: the manager keeps one trained
:class:`~repro.core.system.FocusSystem` per topic set over the shared
web, built lazily on first use.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import JobSpec
from repro.core.system import CrawlHandle, CrawlResult, FocusSystem, TERMINAL_STATUSES
from repro.crawler.monitor import CrawlMonitor
from repro.crawler.policies import FetchPolicy
from repro.minidb import QueryError
from repro.minidb.sql import ExplainStatement, SelectStatement, parse_sql

from .pool import SharedFetchPool


@dataclass
class JobRecord:
    """One submitted job: its spec, live handle, and lifecycle timestamps."""

    id: str
    spec: JobSpec
    handle: CrawlHandle
    submitted_s: float
    finished_s: Optional[float] = None
    #: JSON-safe result summary, cached at the terminal transition so the
    #: HTTP layer never touches crawl internals after the job ends.
    summary: Optional[dict] = None
    error: Optional[str] = None

    @property
    def latency_s(self) -> Optional[float]:
        """Submit-to-terminal wall-clock seconds (the bench's p50/p99 metric)."""
        if self.finished_s is None:
            return None
        return self.finished_s - self.submitted_s


class JobManager:
    """Multi-tenant crawl scheduler over one system/web and one fetch pool.

    All public methods are thread-safe: the HTTP layer calls them from
    request threads while the worker thread sweeps jobs.  One lock
    serializes scheduling and state transitions; observability reads
    (progress, harvest curves, I/O counters) take the same lock, so they
    see round-boundary-consistent state.
    """

    def __init__(
        self,
        system: FocusSystem,
        policy: Optional[FetchPolicy] = None,
        rounds_per_step: int = 1,
    ) -> None:
        if rounds_per_step < 1:
            raise ValueError("rounds_per_step must be >= 1")
        self.system = system
        self.pool = SharedFetchPool(policy)
        self.rounds_per_step = rounds_per_step
        self._jobs: Dict[str, JobRecord] = {}
        self._systems: Dict[Tuple[str, ...], FocusSystem] = {
            tuple(system.config.good_topics): system
        }
        self._lock = threading.RLock()
        self._next_id = 1
        self._worker: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- submission ---------------------------------------------------------
    def submit(self, spec: JobSpec) -> str:
        """Arm *spec* as a job and return its id (crawling starts on scheduling)."""
        with self._lock:
            system = self._system_for(spec.good_topics)
            handle = system.start(
                spec, private_servers=True, transport_wrap=self.pool.wrap
            )
            job_id = f"job-{self._next_id:04d}"
            self._next_id += 1
            self._jobs[job_id] = JobRecord(
                id=job_id, spec=spec, handle=handle, submitted_s=time.perf_counter()
            )
            return job_id

    def _system_for(self, good_topics: Optional[Tuple[str, ...]]) -> FocusSystem:
        """The trained system for a topic set, built lazily over the shared web."""
        key = tuple(good_topics) if good_topics is not None else tuple(
            self.system.config.good_topics
        )
        system = self._systems.get(key)
        if system is None:
            system = FocusSystem.from_web(
                self.system.web, good_topics=list(key), config=self.system.config
            )
            system.train()
            self._systems[key] = system
        return system

    # -- scheduling ---------------------------------------------------------
    def step_once(self) -> bool:
        """One fair sweep: every runnable job gets one quantum.  True if any ran."""
        with self._lock:
            ran = False
            for record in list(self._jobs.values()):
                handle = record.handle
                if handle.status not in ("pending", "running"):
                    continue
                ran = True
                try:
                    handle.step(self.rounds_per_step)
                except Exception as exc:  # handle.status is already "failed"
                    record.error = f"{type(exc).__name__}: {exc}"
                if handle.done:
                    self._finalize(record)
            return ran

    def run_until_idle(self) -> None:
        """Drive sweeps inline until no job is runnable (tests, benchmarks)."""
        while self.step_once():
            pass

    def start(self) -> None:
        """Launch the background worker thread that sweeps runnable jobs."""
        with self._lock:
            if self._worker is not None:
                return
            self._stop.clear()
            self._worker = threading.Thread(
                target=self._run_worker, name="crawl-jobs", daemon=True
            )
            self._worker.start()

    def stop(self) -> None:
        """Stop the worker thread (jobs keep their state; resumable later)."""
        worker = self._worker
        if worker is None:
            return
        self._stop.set()
        worker.join()
        self._worker = None

    def _run_worker(self) -> None:
        while not self._stop.is_set():
            if not self.step_once():
                # Idle: nothing runnable.  Wait briefly for a submit/resume.
                self._stop.wait(0.005)

    # -- job control --------------------------------------------------------
    def pause(self, job_id: str) -> None:
        with self._lock:
            self._record(job_id).handle.pause()

    def resume(self, job_id: str) -> None:
        with self._lock:
            self._record(job_id).handle.resume()

    def cancel(self, job_id: str) -> None:
        with self._lock:
            record = self._record(job_id)
            if not record.handle.done:
                record.handle.cancel()
                self._finalize(record)

    # -- observability ------------------------------------------------------
    def jobs(self) -> List[dict]:
        """One summary row per job, in submission order."""
        with self._lock:
            return [
                {
                    "id": record.id,
                    "name": record.spec.name,
                    "status": record.handle.status,
                    "pages_fetched": record.handle.pages_fetched,
                    "budget": record.handle.budget,
                    "latency_s": record.latency_s,
                }
                for record in self._jobs.values()
            ]

    def progress(self, job_id: str) -> dict:
        with self._lock:
            record = self._record(job_id)
            info = record.handle.progress()
            info["id"] = record.id
            info["latency_s"] = record.latency_s
            if record.error is not None:
                info["error"] = record.error
            return info

    def harvest(self, job_id: str, window: int = 100) -> List[Tuple[int, float]]:
        """The job's live harvest curve (tick, moving-average relevance)."""
        with self._lock:
            return self._record(job_id).handle.harvest_series(window)

    def stats(self, job_id: str) -> dict:
        """The job's I/O counters plus the shared pool's counters.

        The ``crawl`` section (frontier/visited/relevance census) is read
        from the job's database through the SQL query layer — the same
        planner-driven path :meth:`query` exposes — and is omitted for
        sharded jobs, which keep one database per shard.
        """
        with self._lock:
            handle = self._record(job_id).handle
            stats = {
                "io": handle.io_snapshot(),
                "stage_timings": dict(handle.crawler.engine.stage_timings),
                "pipeline": handle.pipeline_stats(),
                "pool": self.pool.snapshot(),
            }
            database = handle.database
            if not getattr(database, "sharded", False) and not database.closed:
                monitor = CrawlMonitor(database)
                stats["crawl"] = {
                    "frontier": monitor.frontier_size(),
                    "visited": monitor.visited_count(),
                    "average_relevance": monitor.average_relevance(),
                }
            return stats

    def harvest_sql(self, job_id: str, bucket: int = 100) -> List[dict]:
        """The harvest curve recomputed in the database (one GROUP BY query)."""
        if bucket < 1:
            raise ValueError("bucket must be >= 1")
        with self._lock:
            database = self._record(job_id).handle.database
            self._require_queryable(database)
            return CrawlMonitor(database).harvest_rate_by_bucket(bucket)

    def query(self, job_id: str, sql: str, limit: int = 200) -> List[dict]:
        """Run one read-only SELECT (or EXPLAIN SELECT) on the job's database.

        Mutation statements (INSERT/UPDATE/DELETE) and syntax errors
        raise :class:`ValueError`, which the HTTP layer maps to 400; the
        result is truncated to *limit* rows.
        """
        if limit < 1:
            raise ValueError("limit must be >= 1")
        with self._lock:
            database = self._record(job_id).handle.database
            self._require_queryable(database)
            try:
                statement = parse_sql(sql)
            except QueryError as exc:
                raise ValueError(str(exc)) from None
            if not isinstance(statement, (SelectStatement, ExplainStatement)):
                raise ValueError(
                    "read-only endpoint: only SELECT (or EXPLAIN SELECT) "
                    "statements are accepted"
                )
            try:
                rows = database.sql(sql)
            except QueryError as exc:
                raise ValueError(str(exc)) from None
            return rows[:limit]

    @staticmethod
    def _require_queryable(database) -> None:
        if getattr(database, "sharded", False):
            raise ValueError(
                "sharded jobs keep one database per shard; open the shard "
                "databases under the checkpoint directory instead"
            )
        if database.closed:
            raise ValueError("this job's database handle is closed")

    def result_summary(self, job_id: str) -> dict:
        """The cached JSON-safe result of a terminal job."""
        with self._lock:
            record = self._record(job_id)
            if record.summary is None:
                raise ValueError(
                    f"job {job_id} is {record.handle.status}; result is available "
                    "once it reaches a terminal state"
                )
            return record.summary

    def result(self, job_id: str) -> CrawlResult:
        """The in-process :class:`CrawlResult` of a terminal job."""
        with self._lock:
            return self._record(job_id).handle.result()

    def latencies(self) -> List[float]:
        """Submit-to-terminal latencies of finished jobs (bench metric)."""
        with self._lock:
            return [
                record.latency_s
                for record in self._jobs.values()
                if record.latency_s is not None
            ]

    # -- shutdown -----------------------------------------------------------
    def close(self) -> None:
        """Stop the worker and release every job's database handle.

        Durable jobs stay fully recoverable (their results reopen by
        checkpoint path; unfinished ones resume via
        :meth:`FocusSystem.resume`).
        """
        self.stop()
        with self._lock:
            for record in self._jobs.values():
                record.handle.close()

    # -- internals ----------------------------------------------------------
    def _record(self, job_id: str) -> JobRecord:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(f"unknown job {job_id!r}") from None

    def _finalize(self, record: JobRecord) -> None:
        if record.finished_s is not None:
            return
        record.finished_s = time.perf_counter()
        handle = record.handle
        trace = handle.trace
        progress = handle.progress()
        record.summary = {
            "id": record.id,
            "name": record.spec.name,
            "status": handle.status,
            "pages_fetched": trace.pages_fetched,
            "budget": handle.budget,
            "harvest_rate": progress["harvest_rate"],
            "distillations": trace.distillations,
            "failures": len(trace.failed_urls),
            "fetch_attempts": handle.fetch_attempts(),
            "stagnated": trace.stagnated,
            "latency_s": record.latency_s,
            "checkpoint_dir": record.spec.checkpoint_dir,
            # The full visit record, so clients can verify determinism
            # (pages visited + relevance floats) over the wire.
            "fetched_urls": list(trace.fetched_urls),
            "relevance": [visit.relevance for visit in trace.visits],
        }


def build_manager(
    system: FocusSystem,
    max_inflight: int = 8,
    per_server_inflight: int = 0,
    rounds_per_step: int = 1,
) -> JobManager:
    """Convenience constructor mirroring the service's CLI-ish defaults."""
    return JobManager(
        system,
        policy=FetchPolicy(
            max_inflight=max_inflight, per_server_inflight=per_server_inflight
        ),
        rounds_per_step=rounds_per_step,
    )


__all__ = ["JobManager", "JobRecord", "build_manager", "TERMINAL_STATUSES"]
