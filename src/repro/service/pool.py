"""The shared fetch pipeline: one politeness gate multiplexing every job.

The paper pitches the crawler as a long-running shared service; at
"millions of users" scale the scarce resource is the fetch pipeline —
total connections in flight and per-server politeness — not any single
crawl.  A :class:`SharedFetchPool` owns that global budget (expressed as
the crawler's own :class:`~repro.crawler.policies.FetchPolicy`) and
hands each job a :class:`PooledTransport`: a thin wrapper around the
job's private transport stack that acquires a pool slot around every
fetch.

Determinism is untouched by the pool.  The transport contract says all
random draws happen inside ``prepare()``, synchronously in checkout
order — so :class:`PooledTransport` gates only ``fetch``/``wait`` (the
latency/WAIT side), never ``prepare`` (the draw side).  Throttling a
job can therefore delay *when* a page arrives, never *what* it is, and
every job stays bit-identical to the same job run alone.

The gate is a plain counter under a ``threading.Lock`` rather than an
``asyncio`` primitive: each engine round runs in its own short-lived
event loop (``asyncio.run`` per round), and jobs may also fetch
synchronously, so the shared gate must work across loops and threads.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Dict, Optional

from repro.crawler.policies import FetchPolicy
from repro.webgraph.fetch import FetchResult
from repro.webgraph.transport import FetchTransport, PendingFetch
from repro.webgraph.urls import host_of, normalize_url

#: How long an acquirer sleeps between slot polls.  The pool spans event
#: loops and threads, so waiting is polling; the interval trades a little
#: latency for negligible idle CPU.
_POLL_INTERVAL_S = 0.0005


class SharedFetchPool:
    """A global in-flight/politeness budget shared by every crawl job.

    ``policy.max_inflight`` caps fetches outstanding across *all* jobs
    (0 = unlimited); ``policy.per_server_inflight`` caps them per host,
    which is the politeness guarantee multi-tenancy actually needs — K
    jobs crawling the same community would otherwise multiply the
    per-host pressure by K.
    """

    def __init__(self, policy: Optional[FetchPolicy] = None) -> None:
        self.policy = policy or FetchPolicy()
        self._lock = threading.Lock()
        self._inflight = 0
        self._per_server: Dict[str, int] = {}
        #: Lifetime counters for the service's stats endpoint.
        self.total_fetches = 0
        self.peak_inflight = 0
        self.waits = 0

    # -- slot management ----------------------------------------------------
    def _try_acquire(self, host: str) -> bool:
        with self._lock:
            cap = self.policy.max_inflight
            if cap and self._inflight >= cap:
                return False
            per_server = self.policy.per_server_inflight
            if per_server and self._per_server.get(host, 0) >= per_server:
                return False
            self._inflight += 1
            self._per_server[host] = self._per_server.get(host, 0) + 1
            if self._inflight > self.peak_inflight:
                self.peak_inflight = self._inflight
            return True

    def acquire(self, host: str) -> None:
        """Block until a slot for *host* is free (sync fetch path)."""
        while not self._try_acquire(host):
            with self._lock:
                self.waits += 1
            time.sleep(_POLL_INTERVAL_S)

    async def acquire_async(self, host: str) -> None:
        """Await a slot for *host* without blocking the event loop."""
        while not self._try_acquire(host):
            with self._lock:
                self.waits += 1
            await asyncio.sleep(_POLL_INTERVAL_S)

    def release(self, host: str) -> None:
        with self._lock:
            self._inflight -= 1
            remaining = self._per_server.get(host, 1) - 1
            if remaining:
                self._per_server[host] = remaining
            else:
                self._per_server.pop(host, None)
            self.total_fetches += 1

    # -- job plumbing -------------------------------------------------------
    def wrap(self, transport: FetchTransport) -> "PooledTransport":
        """The ``transport_wrap`` hook handed to :meth:`FocusSystem.start`."""
        return PooledTransport(self, transport)

    def snapshot(self) -> dict:
        """JSON-safe pool counters for the service's stats endpoint."""
        with self._lock:
            return {
                "max_inflight": self.policy.max_inflight,
                "per_server_inflight": self.policy.per_server_inflight,
                "inflight": self._inflight,
                "peak_inflight": self.peak_inflight,
                "total_fetches": self.total_fetches,
                "waits": self.waits,
            }


class PooledTransport:
    """A job's transport stack behind the shared pool's politeness gate.

    Implements the full :class:`~repro.webgraph.transport.FetchTransport`
    protocol by delegation; checkpoints pass straight through to the
    inner stack, so durable pause/resume of a pooled job is identical to
    a solo one.
    """

    def __init__(self, pool: SharedFetchPool, inner: FetchTransport) -> None:
        self.pool = pool
        self.inner = inner

    @property
    def order_sensitive(self) -> bool:
        return self.inner.order_sensitive

    def fetch(self, url: str) -> FetchResult:
        host = host_of(normalize_url(url))
        self.pool.acquire(host)
        try:
            return self.inner.fetch(url)
        finally:
            self.pool.release(host)

    def prepare(self, url: str) -> PendingFetch:
        # Never gated: draws must advance in checkout order regardless of
        # what other tenants have in flight.
        return self.inner.prepare(url)

    async def wait(self, pending: PendingFetch) -> FetchResult:
        host = host_of(normalize_url(pending.url))
        await self.pool.acquire_async(host)
        try:
            return await self.inner.wait(pending)
        finally:
            self.pool.release(host)

    def state_snapshot(self) -> dict:
        return self.inner.state_snapshot()

    def restore_state(self, state: dict) -> None:
        self.inner.restore_state(state)
