"""Crawl-as-a-service: multi-tenant job manager + HTTP API.

The paper's closing pitch is the crawler as a shared, long-running
service.  This package supplies that layer over the reproduction:

* :class:`~repro.service.pool.SharedFetchPool` — one global
  in-flight/politeness budget multiplexing every tenant's fetches;
* :class:`~repro.service.jobs.JobManager` — fair round-robin scheduling
  of K concurrent crawl jobs, each bit-identical to a solo run;
* :class:`~repro.service.http.CrawlService` — a stdlib-only JSON HTTP
  facade: submit :class:`~repro.core.config.JobSpec`s, poll progress,
  stream harvest curves and I/O stats, pause/resume/cancel.
"""

from .http import CrawlService, serve
from .jobs import JobManager, JobRecord, build_manager
from .pool import PooledTransport, SharedFetchPool

__all__ = [
    "CrawlService",
    "JobManager",
    "JobRecord",
    "PooledTransport",
    "SharedFetchPool",
    "build_manager",
    "serve",
]
