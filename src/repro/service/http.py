"""Crawl-as-a-service HTTP API: a thin JSON facade over :class:`JobManager`.

Stdlib only (``http.server``), matching the repo's no-new-dependency
rule.  The server is a :class:`~http.server.ThreadingHTTPServer`, so
request handling never blocks the manager's worker thread; every
endpoint is a locked, constant-ish-time read or state transition on the
manager — the crawl work itself always happens on the manager's sweep
thread.

Routes (all JSON)::

    GET  /health                      liveness + job counts + pool counters
    GET  /jobs                        all jobs, submission order
    POST /jobs                        submit a JobSpec (JSON body) -> {"id": ...}
    GET  /jobs/{id}                   live progress for one job
    POST /jobs/{id}/pause             checkpoint (if durable) and pause
    POST /jobs/{id}/resume            resume a paused job
    POST /jobs/{id}/cancel            cancel; terminal state "cancelled"
    GET  /jobs/{id}/harvest?window=N  harvest curve [[tick, rate], ...]
    GET  /jobs/{id}/harvest?bucket=N  the same curve recomputed in the
                                      database (the paper's GROUP BY
                                      monitoring query), rows of
                                      {bucket, avg_relevance, pages}
    GET  /jobs/{id}/stats             io_snapshot + stage timings + pool
                                      stats + a SQL-derived crawl census
    GET  /jobs/{id}/query?sql=...     read-only SQL over the job's crawl
                                      store (SELECT/EXPLAIN only;
                                      ``limit=N`` caps rows, default 200)
    GET  /jobs/{id}/result            terminal summary incl. fetched_urls
                                      and relevance floats (determinism
                                      is checkable over the wire)

Errors: unknown job -> 404, bad spec/illegal transition/mutation SQL ->
400, both as ``{"error": ...}`` bodies.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.core.config import JobSpec

from .jobs import JobManager


class _CrawlRequestHandler(BaseHTTPRequestHandler):
    """Dispatches requests to the owning :class:`CrawlService`'s manager."""

    # Set by CrawlService when it builds the server class.
    manager: JobManager = None  # type: ignore[assignment]
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep test/bench output clean

    def _send_json(self, payload, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self):
        length = int(self.headers.get("Content-Length", 0) or 0)
        if not length:
            return {}
        return json.loads(self.rfile.read(length).decode("utf-8"))

    def _route(self) -> Tuple[list, dict]:
        parsed = urlparse(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        query = {key: values[-1] for key, values in parse_qs(parsed.query).items()}
        return parts, query

    def _dispatch(self, handler) -> None:
        try:
            self._send_json(handler())
        except KeyError as exc:
            self._send_json({"error": str(exc.args[0] if exc.args else exc)}, 404)
        except (ValueError, RuntimeError) as exc:
            self._send_json({"error": str(exc)}, 400)

    # -- verbs --------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802
        parts, query = self._route()
        manager = self.manager
        if parts == ["health"]:
            jobs = manager.jobs()
            self._send_json(
                {
                    "status": "ok",
                    "jobs": len(jobs),
                    "active": sum(
                        1 for job in jobs if job["status"] in ("pending", "running")
                    ),
                    "pool": manager.pool.snapshot(),
                }
            )
        elif parts == ["jobs"]:
            self._send_json(manager.jobs())
        elif len(parts) == 2 and parts[0] == "jobs":
            self._dispatch(lambda: manager.progress(parts[1]))
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "harvest":
            if "bucket" in query:
                bucket = int(query["bucket"])
                self._dispatch(lambda: manager.harvest_sql(parts[1], bucket))
            else:
                window = int(query.get("window", 100))
                self._dispatch(
                    lambda: [list(point) for point in manager.harvest(parts[1], window)]
                )
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "query":

            def run_query():
                sql_text = query.get("sql")
                if not sql_text:
                    raise ValueError("missing required ?sql= parameter")
                return manager.query(
                    parts[1], sql_text, limit=int(query.get("limit", 200))
                )

            self._dispatch(run_query)
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "stats":
            self._dispatch(lambda: manager.stats(parts[1]))
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
            self._dispatch(lambda: manager.result_summary(parts[1]))
        else:
            self._send_json({"error": f"no such endpoint {self.path!r}"}, 404)

    def do_POST(self) -> None:  # noqa: N802
        parts, _ = self._route()
        manager = self.manager
        if parts == ["jobs"]:

            def submit():
                spec = JobSpec.from_dict(self._read_json())
                return {"id": manager.submit(spec)}

            self._dispatch(submit)
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] in (
            "pause",
            "resume",
            "cancel",
        ):
            job_id, action = parts[1], parts[2]

            def transition():
                getattr(manager, action)(job_id)
                return {"id": job_id, "status": manager.progress(job_id)["status"]}

            self._dispatch(transition)
        else:
            self._send_json({"error": f"no such endpoint {self.path!r}"}, 404)


class CrawlService:
    """The crawl service: a JobManager behind a threaded HTTP server.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`),
    which is what the tests use.  Use as a context manager::

        with CrawlService(JobManager(system)) as service:
            ...  # POST specs to http://127.0.0.1:{service.port}/jobs
    """

    def __init__(
        self, manager: JobManager, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.manager = manager
        handler = type(
            "BoundCrawlRequestHandler", (_CrawlRequestHandler,), {"manager": manager}
        )
        self.server = ThreadingHTTPServer((host, port), handler)
        self.host = host
        self.port = self.server.server_address[1]
        self._serving: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Start serving requests and sweeping jobs (both on daemon threads)."""
        if self._serving is not None:
            return
        self.manager.start()
        self._serving = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="crawl-http",
            daemon=True,
        )
        self._serving.start()

    def stop(self) -> None:
        """Stop the HTTP server, the job sweeper, and close job databases."""
        if self._serving is not None:
            self.server.shutdown()
            self._serving.join()
            self._serving = None
        self.server.server_close()
        self.manager.close()

    def __enter__(self) -> "CrawlService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve(
    manager: JobManager, host: str = "127.0.0.1", port: int = 8765
) -> CrawlService:
    """Start a :class:`CrawlService` and return it (caller owns ``stop()``)."""
    service = CrawlService(manager, host=host, port=port)
    service.start()
    return service


__all__ = ["CrawlService", "serve"]
