"""webgraph: the synthetic distributed hypertext substrate.

Substitutes for the live Web the paper crawled.  The generated graph
obeys the radius-1 and radius-2 topical-locality rules the Focus
architecture exploits, includes hub/bookmark pages, universally popular
off-topic sites, background pages, multiple servers per topic, dead
links, and transient server failures — everything the crawler, the
classifier, and the distiller need to be exercised end to end.

Typical use::

    from repro.webgraph import SyntheticWebBuilder, Fetcher

    web = SyntheticWebBuilder(seed=7).build()
    fetcher = Fetcher(web)
    seeds = web.keyword_seed_pages("recreation/cycling")
    result = fetcher.fetch(seeds[0])
"""

from .documents import Document, DocumentGenerator
from .fetch import Fetcher, FetchResult, FetchStats, FetchStatus
from .graph import SyntheticWebBuilder, WebConfig, WebGraph, WebPage
from .servers import ServerPool, ServerProfile
from .transport import (
    TRANSPORTS,
    FetchTransport,
    HttpTransport,
    LatencyTransport,
    PendingFetch,
    SimulatedTransport,
    TransportUnavailable,
    build_transport,
)
from .topics import (
    DEFAULT_TOPIC_SPEC,
    TopicNode,
    build_tree,
    default_topic_tree,
    leaf_paths,
    sibling_paths,
)
from .urls import SyntheticUrl, host_of, make_url, normalize_url, server_sid, url_oid
from .vocabulary import TermDistribution, Vocabulary, term_id, zipf_probabilities

__all__ = [
    "DEFAULT_TOPIC_SPEC",
    "Document",
    "DocumentGenerator",
    "Fetcher",
    "FetchResult",
    "FetchStats",
    "FetchStatus",
    "FetchTransport",
    "HttpTransport",
    "LatencyTransport",
    "PendingFetch",
    "ServerPool",
    "ServerProfile",
    "SimulatedTransport",
    "SyntheticUrl",
    "SyntheticWebBuilder",
    "TRANSPORTS",
    "TermDistribution",
    "TopicNode",
    "TransportUnavailable",
    "Vocabulary",
    "WebConfig",
    "WebGraph",
    "WebPage",
    "build_transport",
    "build_tree",
    "default_topic_tree",
    "host_of",
    "leaf_paths",
    "make_url",
    "normalize_url",
    "server_sid",
    "sibling_paths",
    "term_id",
    "url_oid",
    "zipf_probabilities",
]
