"""Web-server simulation: hosts, latency, and transient failures.

The paper's crawler tracks a per-URL ``numtries`` (fetch attempts) and a
per-server ``serverload`` (distinct URLs fetched from the same server) so
the frontier ordering can avoid hammering one site and can shelve dead
links.  To exercise those code paths the synthetic web models each server
with a deterministic-per-seed latency and failure profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from .urls import server_sid

#: Fallbacks used for hosts without a registered profile (e.g. by
#: :meth:`ServerPool.latency_profile` and the fetch transports).
DEFAULT_MEAN_LATENCY_MS = 120.0
DEFAULT_FAILURE_RATE = 0.02


@dataclass
class ServerProfile:
    """Behavioural parameters of one synthetic web server."""

    name: str
    #: Mean simulated latency per fetch, in milliseconds.
    mean_latency_ms: float = DEFAULT_MEAN_LATENCY_MS
    #: Probability that any given fetch fails transiently (timeout, 5xx).
    failure_rate: float = DEFAULT_FAILURE_RATE
    #: Maximum concurrent/total politeness budget; crawlers may consult this.
    max_fetches_per_window: int = 10_000

    @property
    def sid(self) -> int:
        return server_sid(self.name)


@dataclass
class ServerPool:
    """The set of servers making up the synthetic web."""

    profiles: Dict[str, ServerProfile] = field(default_factory=dict)
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def add(self, profile: ServerProfile) -> ServerProfile:
        self.profiles[profile.name] = profile
        return profile

    def ensure(self, name: str, **kwargs) -> ServerProfile:
        if name not in self.profiles:
            self.profiles[name] = ServerProfile(name=name, **kwargs)
        return self.profiles[name]

    def get(self, name: str) -> ServerProfile:
        try:
            return self.profiles[name]
        except KeyError:
            raise KeyError(f"unknown server {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.profiles

    def __len__(self) -> int:
        return len(self.profiles)

    def clone(self) -> "ServerPool":
        """A pool over the *same* server profiles with its own RNG stream.

        Concurrent crawls over one web cannot share this pool: the
        failure/latency generator is one sequential stream, so
        interleaved jobs would steal each other's draws.  Each job
        instead clones the pool (profiles shared — they are read-only
        during a crawl) and reseeds its private generator, which makes
        its draw sequence identical to the same job run solo.
        """
        return ServerPool(profiles=self.profiles, rng=np.random.default_rng(0))

    def reseed(self, seed: int) -> None:
        """Reset the failure/latency stream to a deterministic state.

        The pool's generator is shared by every crawl over the same web, so
        without reseeding, a crawl's failure pattern depends on how many
        fetches *previous* crawls performed.  Experiments that compare runs
        (serial vs. batched, focused vs. unfocused) reseed per crawl so the
        stream is a function of the crawl's own seed only.
        """
        self.rng = np.random.default_rng(seed)

    def rng_state(self) -> dict:
        """The generator's exact position (for crawl checkpoints)."""
        return self.rng.bit_generator.state

    def restore_rng(self, state: dict) -> None:
        """Resume the failure/latency stream mid-sequence (crawl resume)."""
        self.rng = np.random.default_rng(0)
        self.rng.bit_generator.state = state

    def latency_profile(self, name: str) -> tuple[float, float]:
        """``(mean_latency_ms, failure_rate)`` of *name*, with defaults for unknown hosts.

        Used by :class:`~repro.webgraph.transport.LatencyTransport` to
        derive per-host wall-clock latency from the simulated profiles
        without every caller re-implementing the fallback.
        """
        profile = self.profiles.get(name)
        if profile is None:
            return DEFAULT_MEAN_LATENCY_MS, DEFAULT_FAILURE_RATE
        return profile.mean_latency_ms, profile.failure_rate

    # -- simulation -------------------------------------------------------------
    def simulate_fetch(self, name: str) -> tuple[bool, float]:
        """Simulate one fetch from server *name*.

        Returns ``(success, latency_ms)``.  Latency is exponential around
        the server's mean; a failed fetch still costs (a fraction of) the
        latency, modelling timeouts.
        """
        profile = self.get(name)
        latency = float(self.rng.exponential(profile.mean_latency_ms))
        if self.rng.random() < profile.failure_rate:
            return False, latency * 2.5  # timeouts are slower than successes
        return True, latency

    def names(self) -> list[str]:
        return sorted(self.profiles)


def default_server_name(topic_slug: str, index: int) -> str:
    """Server naming scheme: several hosts per topic plus generic hosts."""
    return f"{topic_slug}{index}.example.org"
