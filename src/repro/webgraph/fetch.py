"""The simulated fetcher: how crawlers observe the synthetic web.

A crawler never touches :class:`~repro.webgraph.graph.WebGraph` ground
truth directly; it calls :meth:`Fetcher.fetch` with a URL and gets back a
:class:`FetchResult` carrying only what an HTTP fetch plus HTML parsing
would yield — status, tokens, out-links, and the serving host.  The
fetcher also simulates transient server failures and dead links (404s),
and accumulates simulated latency so experiments can report a crawl
"timeline" without real network time.

The crawl engine reaches this class through the transport layer
(:mod:`repro.webgraph.transport`): the default ``SimulatedTransport``
wraps it bit for bit, and ``LatencyTransport`` turns its simulated
latency model into real wall-clock delays for overlap experiments.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field

import numpy as np

from .graph import WebGraph
from .urls import host_of, normalize_url, server_sid, url_oid


class FetchStatus(enum.Enum):
    """Outcome of a single fetch attempt."""

    OK = "ok"
    NOT_FOUND = "not_found"      # dead link / page does not exist
    SERVER_ERROR = "server_error"  # transient failure, retry may succeed
    SKIPPED = "skipped"          # permanently refused: robots, redirect cap/loop, content gate


@dataclass
class FetchResult:
    """What the crawler learns from one fetch attempt."""

    url: str
    status: FetchStatus
    tokens: list[str] = field(default_factory=list)
    out_links: list[str] = field(default_factory=list)
    server: str = ""
    latency_ms: float = 0.0
    #: Machine-readable reason for non-OK outcomes (e.g. ``"robots"``,
    #: ``"redirect-loop"``, ``"content-type"``); empty for OK fetches.
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status is FetchStatus.OK

    @property
    def oid(self) -> int:
        return url_oid(self.url)

    @property
    def sid(self) -> int:
        return server_sid(self.server or host_of(self.url))


@dataclass
class FetchStats:
    """Aggregate fetcher counters."""

    attempts: int = 0
    successes: int = 0
    not_found: int = 0
    server_errors: int = 0
    total_latency_ms: float = 0.0
    skipped: int = 0

    def record(self, result: FetchResult) -> None:
        self.attempts += 1
        self.total_latency_ms += result.latency_ms
        if result.status is FetchStatus.OK:
            self.successes += 1
        elif result.status is FetchStatus.NOT_FOUND:
            self.not_found += 1
        elif result.status is FetchStatus.SKIPPED:
            self.skipped += 1
        else:
            self.server_errors += 1


class Fetcher:
    """Fetches pages from a :class:`WebGraph`, simulating network behaviour.

    ``failure_seed`` controls the transient-failure stream independently of
    the graph's own seed so crawl experiments are repeatable.
    """

    def __init__(self, web: WebGraph, failure_seed: int = 0, simulate_failures: bool = True) -> None:
        self.web = web
        self.simulate_failures = simulate_failures
        self.stats = FetchStats()
        self._rng = np.random.default_rng(failure_seed)
        # The simulated failure/latency stream and the stats counters are
        # shared mutable state; the batched engine fetches through a thread
        # pool, so draws are serialised (the simulation is CPU-only anyway).
        self._lock = threading.Lock()

    def fetch(self, url: str) -> FetchResult:
        """Attempt to fetch *url* once (thread-safe)."""
        with self._lock:
            return self._fetch_locked(url)

    # -- checkpointing ------------------------------------------------------
    def state_snapshot(self) -> dict:
        """The fetcher's resumable state: its RNG stream position and counters."""
        from dataclasses import asdict

        return {"rng": self._rng.bit_generator.state, "stats": asdict(self.stats)}

    def restore_state(self, state: dict) -> None:
        """Rewind to a snapshot, so the latency/failure draws continue exactly."""
        self._rng.bit_generator.state = state["rng"]
        self.stats = FetchStats(**state["stats"])

    def _fetch_locked(self, url: str) -> FetchResult:
        normalized = normalize_url(url)
        host = host_of(normalized)
        if not self.web.has_page(normalized):
            result = FetchResult(
                url=normalized,
                status=FetchStatus.NOT_FOUND,
                server=host,
                latency_ms=float(self._rng.exponential(80.0)),
            )
            self.stats.record(result)
            return result
        page = self.web.page(normalized)
        if self.simulate_failures and host in self.web.servers:
            success, latency = self.web.servers.simulate_fetch(host)
        else:
            success, latency = True, float(self._rng.exponential(100.0))
        if not success:
            result = FetchResult(
                url=normalized,
                status=FetchStatus.SERVER_ERROR,
                server=page.server,
                latency_ms=latency,
            )
            self.stats.record(result)
            return result
        result = FetchResult(
            url=normalized,
            status=FetchStatus.OK,
            tokens=list(page.tokens),
            out_links=[normalize_url(t) for t in page.out_links],
            server=page.server,
            latency_ms=latency,
        )
        self.stats.record(result)
        return result
