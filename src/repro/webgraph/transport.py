"""Fetch transports: the pluggable I/O layer between the crawl engine and a web.

The engine never talks to a :class:`~repro.webgraph.fetch.Fetcher` (or a
network) directly any more; it talks to a *transport*.  A transport
exposes the same fetch semantics three ways:

* ``fetch(url)`` — the synchronous one-shot used by the serial loop and
  the threaded fetch stage;
* ``prepare(url)`` / ``await wait(pending)`` — the two-phase form used
  by the asyncio fetch stage.  **Every random draw happens inside
  ``prepare``**, synchronously, in submission order; ``wait`` only waits
  out the (real or simulated) latency.  This is the determinism
  contract: the shared failure/latency RNG streams advance in checkout
  order, so the order in which concurrent fetches *complete* can never
  change the draw sequence — same seed, same failure stream, any
  interleaving.
* ``state_snapshot()`` / ``restore_state()`` — checkpoint/resume hooks,
  so a resumed crawl continues the exact RNG streams.

Three transports are provided:

* :class:`SimulatedTransport` — wraps the CPU-only simulated fetcher
  bit for bit (the default; existing crawls are unchanged).
* :class:`LatencyTransport` — injects configurable real wall-clock
  latency, jitter, timeouts, and retries around an inner transport, so
  fetch/compute overlap is measurable without touching a network.  All
  of its draws also happen at ``prepare`` time, so latency crawls are
  reproducible across serial, threaded, and async execution.
* :class:`HttpTransport` — an asyncio real-network transport (stub)
  behind an import guard on the optional ``aiohttp`` dependency.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import asdict, dataclass
from typing import Dict, Optional, Protocol, runtime_checkable

import numpy as np

from .fetch import Fetcher, FetchResult, FetchStats, FetchStatus
from .servers import ServerPool
from .urls import host_of, normalize_url

#: Transport names accepted by ``CrawlerConfig.transport``.
TRANSPORTS = ("simulated", "latency", "http")


class TransportUnavailable(RuntimeError):
    """A transport's optional dependency is missing in this environment."""


@dataclass
class PendingFetch:
    """A fetch in flight between :meth:`prepare` and :meth:`wait`.

    For the deterministic transports the outcome is already fully
    resolved (``result`` is set and ``delay_s`` is the wall-clock the
    transport still owes); for :class:`HttpTransport` the real I/O
    happens later, inside ``wait``.
    """

    url: str
    result: Optional[FetchResult] = None
    delay_s: float = 0.0
    attempts: int = 1


@runtime_checkable
class FetchTransport(Protocol):
    """What the crawl engine requires of a fetch transport."""

    @property
    def order_sensitive(self) -> bool:
        """True when fetch outcomes depend on a shared sequential draw stream.

        The threaded fetch stage refuses to fan out an order-sensitive
        transport (thread scheduling would scramble the stream); the
        async stage is always safe because draws happen in ``prepare``.
        """

    def fetch(self, url: str) -> FetchResult: ...

    def prepare(self, url: str) -> PendingFetch: ...

    async def wait(self, pending: PendingFetch) -> FetchResult: ...

    def state_snapshot(self) -> dict: ...

    def restore_state(self, state: dict) -> None: ...


class SimulatedTransport:
    """The default transport: the simulated :class:`Fetcher`, bit for bit.

    ``fetch`` delegates straight to :meth:`Fetcher.fetch`, and the
    snapshot/restore pair delegates to the fetcher's own RNG-stream
    checkpointing — a crawl that never asks for latency injection or a
    real network behaves exactly as it did before transports existed.
    """

    def __init__(self, fetcher: Fetcher) -> None:
        self.fetcher = fetcher

    @property
    def order_sensitive(self) -> bool:
        return bool(getattr(self.fetcher, "simulate_failures", False))

    @property
    def stats(self) -> FetchStats:
        return self.fetcher.stats

    def fetch(self, url: str) -> FetchResult:
        return self.fetcher.fetch(url)

    def prepare(self, url: str) -> PendingFetch:
        # The outcome is resolved NOW, synchronously: the shared
        # failure/latency streams advance in submission (checkout) order,
        # so async completion interleaving cannot change the draws.
        return PendingFetch(url=url, result=self.fetcher.fetch(url))

    async def wait(self, pending: PendingFetch) -> FetchResult:
        return pending.result

    def state_snapshot(self) -> dict:
        return self.fetcher.state_snapshot()

    def restore_state(self, state: dict) -> None:
        self.fetcher.restore_state(state)


class LatencyTransport:
    """Wraps a transport with real wall-clock latency, jitter, timeouts, retries.

    The point is to give the simulated web the *shape* of a network —
    high-latency fetches the engine can overlap with classification —
    without needing one.  Content still comes from the inner transport;
    this layer decides *when* it arrives and whether it times out first.

    Determinism: every draw (latency, jitter, timeout, retry count)
    comes from this transport's own seeded generator, consumed entirely
    inside :meth:`prepare` under a lock.  A crawl over a latency
    transport therefore produces identical results in serial, threaded
    (``fetch`` = resolve-then-sleep), and async execution, and its RNG
    stream checkpoints/restores exactly like the simulated fetcher's.

    ``per_server`` overrides the mean latency (milliseconds) for
    specific hosts; :meth:`from_server_pool` derives those overrides
    from a :class:`~repro.webgraph.servers.ServerPool`'s profiles.
    """

    def __init__(
        self,
        inner: FetchTransport,
        mean_latency_ms: float = 5.0,
        jitter: float = 0.3,
        timeout_ms: float = 50.0,
        timeout_rate: float = 0.0,
        max_retries: int = 1,
        seed: int = 0,
        time_scale: float = 1.0,
        per_server: Optional[Dict[str, float]] = None,
    ) -> None:
        if mean_latency_ms < 0 or timeout_ms < 0 or time_scale < 0:
            raise ValueError("latencies and time_scale must be non-negative")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if not 0.0 <= timeout_rate < 1.0:
            raise ValueError("timeout_rate must be in [0, 1)")
        self.inner = inner
        self.mean_latency_ms = mean_latency_ms
        self.jitter = jitter
        self.timeout_ms = timeout_ms
        self.timeout_rate = timeout_rate
        self.max_retries = max_retries
        self.time_scale = time_scale
        self.per_server = dict(per_server or {})
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        #: Total wall-clock seconds of injected latency (before scaling).
        self.injected_s = 0.0
        self.timeouts = 0

    @classmethod
    def from_server_pool(
        cls, inner: FetchTransport, pool: ServerPool, scale: float = 1.0, **kwargs
    ) -> "LatencyTransport":
        """Derive per-host mean latencies from a server pool's profiles."""
        per_server = {
            name: pool.latency_profile(name)[0] * scale for name in pool.names()
        }
        return cls(inner, per_server=per_server, **kwargs)

    @property
    def order_sensitive(self) -> bool:
        # This layer always draws from its own sequential RNG stream in
        # prepare(), so a thread pool would assign draws to URLs in
        # scheduling order and break the determinism contract.  The
        # threaded fetch stage therefore resolves latency fetches inline
        # (sleep included); concurrency comes from the async pipeline,
        # where prepare() runs in checkout order by construction.
        return True

    def fetch(self, url: str) -> FetchResult:
        pending = self.prepare(url)
        if pending.delay_s > 0:
            time.sleep(pending.delay_s)
        return pending.result

    def prepare(self, url: str) -> PendingFetch:
        with self._lock:
            result = self.inner.fetch(url)
            host = result.server or host_of(normalize_url(url))
            mean_ms = self.per_server.get(host, self.mean_latency_ms)
            # Timeout/retry loop: each timed-out attempt costs the full
            # timeout budget; one attempt beyond max_retries fails the fetch.
            attempts = 1
            delay_ms = 0.0
            timed_out = False
            while self._rng.random() < self.timeout_rate:
                delay_ms += self.timeout_ms
                self.timeouts += 1
                if attempts > self.max_retries:
                    timed_out = True
                    break
                attempts += 1
            if not timed_out:
                # Uniform jitter around the per-host mean.
                spread = 1.0 - self.jitter + 2.0 * self.jitter * self._rng.random()
                delay_ms += mean_ms * spread
            if timed_out:
                result = FetchResult(
                    url=result.url,
                    status=FetchStatus.SERVER_ERROR,
                    server=result.server,
                    latency_ms=delay_ms,
                )
            delay_s = delay_ms / 1000.0
            self.injected_s += delay_s
            return PendingFetch(
                url=url,
                result=result,
                delay_s=delay_s * self.time_scale,
                attempts=attempts,
            )

    async def wait(self, pending: PendingFetch) -> FetchResult:
        if pending.delay_s > 0:
            await asyncio.sleep(pending.delay_s)
        return pending.result

    def state_snapshot(self) -> dict:
        return {
            "inner": self.inner.state_snapshot(),
            "rng": self._rng.bit_generator.state,
            "injected_s": self.injected_s,
            "timeouts": self.timeouts,
        }

    def restore_state(self, state: dict) -> None:
        self.inner.restore_state(state["inner"])
        self._rng.bit_generator.state = state["rng"]
        self.injected_s = state["injected_s"]
        self.timeouts = state["timeouts"]


class HttpTransport:
    """Asyncio real-network transport (stub) for crawling actual HTTP servers.

    Import-guarded on the optional ``aiohttp`` dependency: constructing
    one without it raises :class:`TransportUnavailable` with an install
    hint instead of an import error at module load.  Real fetches are
    inherently non-deterministic, so checkpoints carry only counters —
    a resumed HTTP crawl re-fetches live content.
    """

    order_sensitive = False

    def __init__(
        self,
        timeout_s: float = 20.0,
        max_retries: int = 1,
        user_agent: str = "repro-focused-crawler/0.2 (+research reproduction)",
        max_links: int = 500,
    ) -> None:
        try:
            import aiohttp
        except ImportError as exc:  # pragma: no cover - exercised via the guard test
            raise TransportUnavailable(
                "HttpTransport needs the optional aiohttp dependency; "
                "install it with `pip install repro-focused-crawler[http]`"
            ) from exc
        self._aiohttp = aiohttp
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.user_agent = user_agent
        self.max_links = max_links
        self.stats = FetchStats()
        self._stats_lock = threading.Lock()

    def fetch(self, url: str) -> FetchResult:  # pragma: no cover - network
        return asyncio.run(self.wait(self.prepare(url)))

    def prepare(self, url: str) -> PendingFetch:
        # No draws, no I/O: the request is issued inside wait() so the
        # engine's max_inflight gate bounds real connection concurrency.
        return PendingFetch(url=url)

    async def wait(self, pending: PendingFetch) -> FetchResult:  # pragma: no cover - network
        aiohttp = self._aiohttp
        url = pending.url
        started = time.perf_counter()
        last_error: Optional[BaseException] = None
        for attempt in range(self.max_retries + 1):
            pending.attempts = attempt + 1
            try:
                timeout = aiohttp.ClientTimeout(total=self.timeout_s)
                headers = {"User-Agent": self.user_agent}
                async with aiohttp.ClientSession(timeout=timeout, headers=headers) as session:
                    async with session.get(url) as response:
                        if response.status == 404:
                            return self._record(
                                FetchResult(
                                    url=url,
                                    status=FetchStatus.NOT_FOUND,
                                    server=host_of(url),
                                    latency_ms=(time.perf_counter() - started) * 1000.0,
                                )
                            )
                        if response.status >= 400:
                            last_error = RuntimeError(f"HTTP {response.status}")
                            continue
                        text = await response.text()
                        tokens, links = parse_html(text, base_url=url, max_links=self.max_links)
                        return self._record(
                            FetchResult(
                                url=url,
                                status=FetchStatus.OK,
                                tokens=tokens,
                                out_links=links,
                                server=host_of(url),
                                latency_ms=(time.perf_counter() - started) * 1000.0,
                            )
                        )
            except (aiohttp.ClientError, asyncio.TimeoutError) as exc:
                last_error = exc
        del last_error  # transient detail; the status carries the outcome
        return self._record(
            FetchResult(
                url=url,
                status=FetchStatus.SERVER_ERROR,
                server=host_of(url),
                latency_ms=(time.perf_counter() - started) * 1000.0,
            )
        )

    def _record(self, result: FetchResult) -> FetchResult:  # pragma: no cover - network
        with self._stats_lock:
            self.stats.record(result)
        return result

    def state_snapshot(self) -> dict:
        return {"stats": asdict(self.stats)}

    def restore_state(self, state: dict) -> None:
        self.stats = FetchStats(**state["stats"])


def parse_html(text: str, base_url: str, max_links: int = 500) -> tuple[list[str], list[str]]:
    """Crude HTML → (tokens, absolute out-links) used by :class:`HttpTransport`."""
    import re
    from urllib.parse import urljoin

    links: list[str] = []
    for href in re.findall(r"""(?i)href\s*=\s*["']([^"'#]+)""", text):
        absolute = urljoin(base_url, href.strip())
        if absolute.startswith(("http://", "https://")):
            links.append(absolute)
        if len(links) >= max_links:
            break
    stripped = re.sub(r"(?s)<(script|style)[^>]*>.*?</\1>", " ", text)
    stripped = re.sub(r"<[^>]+>", " ", stripped)
    tokens = re.findall(r"[a-z][a-z0-9]+", stripped.lower())
    return tokens, links


def build_transport(
    name: str, fetcher: Fetcher, options: Optional[dict] = None
) -> FetchTransport:
    """Construct a transport by registry name (``CrawlerConfig.transport``).

    ``options`` is the plain-data ``CrawlerConfig.transport_options``
    mapping, so a transport choice rides along inside crawl checkpoints
    and a resumed crawl rebuilds the identical stack.
    """
    options = dict(options or {})
    if name == "simulated":
        if options:
            raise ValueError(
                f"the simulated transport takes no options, got {sorted(options)}"
            )
        return SimulatedTransport(fetcher)
    if name == "latency":
        from_pool = options.pop("per_server_from_pool", False)
        inner = SimulatedTransport(fetcher)
        if from_pool:
            scale = options.pop("per_server_scale", 1.0)
            return LatencyTransport.from_server_pool(
                inner, fetcher.web.servers, scale=scale, **options
            )
        return LatencyTransport(inner, **options)
    if name == "http":
        return HttpTransport(**options)
    raise ValueError(f"unknown transport {name!r}; expected one of {TRANSPORTS}")
