"""Fetch transports: the pluggable I/O layer between the crawl engine and a web.

The engine never talks to a :class:`~repro.webgraph.fetch.Fetcher` (or a
network) directly any more; it talks to a *transport*.  A transport
exposes the same fetch semantics three ways:

* ``fetch(url)`` — the synchronous one-shot used by the serial loop and
  the threaded fetch stage;
* ``prepare(url)`` / ``await wait(pending)`` — the two-phase form used
  by the asyncio fetch stage.  **Every random draw happens inside
  ``prepare``**, synchronously, in submission order; ``wait`` only waits
  out the (real or simulated) latency.  This is the determinism
  contract: the shared failure/latency RNG streams advance in checkout
  order, so the order in which concurrent fetches *complete* can never
  change the draw sequence — same seed, same failure stream, any
  interleaving.
* ``state_snapshot()`` / ``restore_state()`` — checkpoint/resume hooks,
  so a resumed crawl continues the exact RNG streams.

Three transports are provided:

* :class:`SimulatedTransport` — wraps the CPU-only simulated fetcher
  bit for bit (the default; existing crawls are unchanged).
* :class:`LatencyTransport` — injects configurable real wall-clock
  latency, jitter, timeouts, and retries around an inner transport, so
  fetch/compute overlap is measurable without touching a network.  All
  of its draws also happen at ``prepare`` time, so latency crawls are
  reproducible across serial, threaded, and async execution.
* :class:`HttpTransport` — the real-network fetcher: robots.txt
  honoring with a TTL cache, manual redirect following with hop cap and
  loop detection, content-type/size gating, retry/backoff whose jitter
  is drawn in ``prepare``, and one shared client session per transport.
  The session backend is pluggable: ``aiohttp`` when the optional
  dependency is installed, a stdlib ``urllib`` opener otherwise.

The cassette record/replay layer that makes real-network crawls
CI-deterministic lives in :mod:`repro.webgraph.cassette` and wraps any
of these transports.
"""

from __future__ import annotations

import asyncio
import threading
import time
import urllib.request
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Protocol, runtime_checkable

import numpy as np

from .fetch import Fetcher, FetchResult, FetchStats, FetchStatus
from .servers import ServerPool
from .urls import host_of, normalize_url

#: Transport names accepted by ``CrawlerConfig.transport``.
TRANSPORTS = ("simulated", "latency", "http")


class TransportUnavailable(RuntimeError):
    """A transport's optional dependency is missing in this environment."""


@dataclass
class PendingFetch:
    """A fetch in flight between :meth:`prepare` and :meth:`wait`.

    For the deterministic transports the outcome is already fully
    resolved (``result`` is set and ``delay_s`` is the wall-clock the
    transport still owes); for :class:`HttpTransport` the real I/O
    happens later, inside ``wait``.
    """

    url: str
    result: Optional[FetchResult] = None
    delay_s: float = 0.0
    attempts: int = 1
    #: Pre-drawn retry backoff delays (seconds), one per potential retry.
    #: Drawn inside ``prepare`` so the jitter stream advances in checkout
    #: order regardless of completion interleaving.
    backoffs: list[float] = field(default_factory=list)


@runtime_checkable
class FetchTransport(Protocol):
    """What the crawl engine requires of a fetch transport."""

    @property
    def order_sensitive(self) -> bool:
        """True when fetch outcomes depend on a shared sequential draw stream.

        The threaded fetch stage refuses to fan out an order-sensitive
        transport (thread scheduling would scramble the stream); the
        async stage is always safe because draws happen in ``prepare``.
        """

    def fetch(self, url: str) -> FetchResult: ...

    def prepare(self, url: str) -> PendingFetch: ...

    async def wait(self, pending: PendingFetch) -> FetchResult: ...

    def state_snapshot(self) -> dict: ...

    def restore_state(self, state: dict) -> None: ...


class SimulatedTransport:
    """The default transport: the simulated :class:`Fetcher`, bit for bit.

    ``fetch`` delegates straight to :meth:`Fetcher.fetch`, and the
    snapshot/restore pair delegates to the fetcher's own RNG-stream
    checkpointing — a crawl that never asks for latency injection or a
    real network behaves exactly as it did before transports existed.
    """

    def __init__(self, fetcher: Fetcher) -> None:
        self.fetcher = fetcher

    @property
    def order_sensitive(self) -> bool:
        return bool(getattr(self.fetcher, "simulate_failures", False))

    @property
    def stats(self) -> FetchStats:
        return self.fetcher.stats

    def fetch(self, url: str) -> FetchResult:
        return self.fetcher.fetch(url)

    def prepare(self, url: str) -> PendingFetch:
        # The outcome is resolved NOW, synchronously: the shared
        # failure/latency streams advance in submission (checkout) order,
        # so async completion interleaving cannot change the draws.
        return PendingFetch(url=url, result=self.fetcher.fetch(url))

    async def wait(self, pending: PendingFetch) -> FetchResult:
        return pending.result

    def state_snapshot(self) -> dict:
        return self.fetcher.state_snapshot()

    def restore_state(self, state: dict) -> None:
        self.fetcher.restore_state(state)


class LatencyTransport:
    """Wraps a transport with real wall-clock latency, jitter, timeouts, retries.

    The point is to give the simulated web the *shape* of a network —
    high-latency fetches the engine can overlap with classification —
    without needing one.  Content still comes from the inner transport;
    this layer decides *when* it arrives and whether it times out first.

    Determinism: every draw (latency, jitter, timeout, retry count)
    comes from this transport's own seeded generator, consumed entirely
    inside :meth:`prepare` under a lock.  A crawl over a latency
    transport therefore produces identical results in serial, threaded
    (``fetch`` = resolve-then-sleep), and async execution, and its RNG
    stream checkpoints/restores exactly like the simulated fetcher's.

    ``per_server`` overrides the mean latency (milliseconds) for
    specific hosts; :meth:`from_server_pool` derives those overrides
    from a :class:`~repro.webgraph.servers.ServerPool`'s profiles.
    """

    def __init__(
        self,
        inner: FetchTransport,
        mean_latency_ms: float = 5.0,
        jitter: float = 0.3,
        timeout_ms: float = 50.0,
        timeout_rate: float = 0.0,
        max_retries: int = 1,
        seed: int = 0,
        time_scale: float = 1.0,
        per_server: Optional[Dict[str, float]] = None,
    ) -> None:
        if mean_latency_ms < 0 or timeout_ms < 0 or time_scale < 0:
            raise ValueError("latencies and time_scale must be non-negative")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if not 0.0 <= timeout_rate < 1.0:
            raise ValueError("timeout_rate must be in [0, 1)")
        self.inner = inner
        self.mean_latency_ms = mean_latency_ms
        self.jitter = jitter
        self.timeout_ms = timeout_ms
        self.timeout_rate = timeout_rate
        self.max_retries = max_retries
        self.time_scale = time_scale
        self.per_server = dict(per_server or {})
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        #: Total wall-clock seconds of injected latency (before scaling).
        self.injected_s = 0.0
        self.timeouts = 0

    @classmethod
    def from_server_pool(
        cls, inner: FetchTransport, pool: ServerPool, scale: float = 1.0, **kwargs
    ) -> "LatencyTransport":
        """Derive per-host mean latencies from a server pool's profiles."""
        per_server = {
            name: pool.latency_profile(name)[0] * scale for name in pool.names()
        }
        return cls(inner, per_server=per_server, **kwargs)

    @property
    def order_sensitive(self) -> bool:
        # This layer always draws from its own sequential RNG stream in
        # prepare(), so a thread pool would assign draws to URLs in
        # scheduling order and break the determinism contract.  The
        # threaded fetch stage therefore resolves latency fetches inline
        # (sleep included); concurrency comes from the async pipeline,
        # where prepare() runs in checkout order by construction.
        return True

    def fetch(self, url: str) -> FetchResult:
        pending = self.prepare(url)
        if pending.delay_s > 0:
            time.sleep(pending.delay_s)
        return pending.result

    def prepare(self, url: str) -> PendingFetch:
        with self._lock:
            result = self.inner.fetch(url)
            host = result.server or host_of(normalize_url(url))
            mean_ms = self.per_server.get(host, self.mean_latency_ms)
            # Timeout/retry loop: each timed-out attempt costs the full
            # timeout budget; one attempt beyond max_retries fails the fetch.
            attempts = 1
            delay_ms = 0.0
            timed_out = False
            while self._rng.random() < self.timeout_rate:
                delay_ms += self.timeout_ms
                self.timeouts += 1
                if attempts > self.max_retries:
                    timed_out = True
                    break
                attempts += 1
            if not timed_out:
                # Uniform jitter around the per-host mean.
                spread = 1.0 - self.jitter + 2.0 * self.jitter * self._rng.random()
                delay_ms += mean_ms * spread
            if timed_out:
                result = FetchResult(
                    url=result.url,
                    status=FetchStatus.SERVER_ERROR,
                    server=result.server,
                    latency_ms=delay_ms,
                )
            delay_s = delay_ms / 1000.0
            self.injected_s += delay_s
            return PendingFetch(
                url=url,
                result=result,
                delay_s=delay_s * self.time_scale,
                attempts=attempts,
            )

    async def wait(self, pending: PendingFetch) -> FetchResult:
        if pending.delay_s > 0:
            await asyncio.sleep(pending.delay_s)
        return pending.result

    def state_snapshot(self) -> dict:
        return {
            "inner": self.inner.state_snapshot(),
            "rng": self._rng.bit_generator.state,
            "injected_s": self.injected_s,
            "timeouts": self.timeouts,
        }

    def restore_state(self, state: dict) -> None:
        self.inner.restore_state(state["inner"])
        self._rng.bit_generator.state = state["rng"]
        self.injected_s = state["injected_s"]
        self.timeouts = state["timeouts"]


@dataclass
class HttpResponse:
    """One raw HTTP exchange as the session backends report it.

    ``headers`` keys are lower-cased; ``body`` is capped at the byte
    budget the caller passed (one extra byte is read so oversize bodies
    are detectable without buffering them).
    """

    status: int
    headers: Dict[str, str]
    body: bytes
    url: str


class _StdlibNoRedirect(urllib.request.HTTPRedirectHandler):
    """Refuse automatic redirects: 3xx surfaces as an HTTPError response."""

    def redirect_request(self, req, fp, code, msg, headers, newurl):
        return None


class StdlibSessionBackend:
    """A dependency-free HTTP session over ``urllib`` in a thread executor.

    One redirect-disabled ``OpenerDirector`` plays the role of the shared
    client session: it is loop-independent, so a crawl that runs one
    asyncio loop per round (the engine's non-prefetch async mode) still
    reuses the same opener for its whole lifetime.  Local fixture-server
    tests and environments without ``aiohttp`` run on this backend.
    """

    name = "stdlib"

    def __init__(self) -> None:
        import urllib.error

        self._opener = urllib.request.build_opener(_StdlibNoRedirect())
        self.sessions_created = 1
        self.requests = 0
        self.error_types: tuple = (urllib.error.URLError, TimeoutError, OSError)

    async def get(
        self, url: str, headers: Dict[str, str], timeout_s: float, max_bytes: int
    ) -> HttpResponse:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, self._get_sync, url, headers, timeout_s, max_bytes
        )

    def _get_sync(
        self, url: str, headers: Dict[str, str], timeout_s: float, max_bytes: int
    ) -> HttpResponse:
        import urllib.error

        self.requests += 1
        request = urllib.request.Request(url, headers=headers)
        try:
            response = self._opener.open(request, timeout=timeout_s)
        except urllib.error.HTTPError as exc:
            # Non-2xx (including the redirects our handler refused): the
            # error object *is* the response.
            response = exc
        with response:
            body = response.read(max_bytes + 1)
            status = getattr(response, "status", None)
            if status is None:
                status = getattr(response, "code", 0)
            return HttpResponse(
                status=int(status),
                headers={k.lower(): v for k, v in response.headers.items()},
                body=body,
                url=url,
            )

    async def close(self) -> None:
        self._opener.close()


class AiohttpSessionBackend:
    """The ``aiohttp`` session backend: one shared ``ClientSession``.

    The session is created lazily on first use and reused for every
    subsequent request on the same event loop — the PR-10 bugfix for the
    stub's session-per-fetch.  aiohttp sessions are bound to the loop
    they were created on, and the engine's non-prefetch async mode runs
    one ``asyncio.run`` per round; when the running loop changes, the
    stale session is closed (best effort) and one new session is built
    for the new loop — per *round*, never per fetch.
    """

    name = "aiohttp"

    def __init__(self, aiohttp_module) -> None:
        self._aiohttp = aiohttp_module
        self._session = None
        self._loop = None
        self.sessions_created = 0
        self.requests = 0
        self.error_types = (aiohttp_module.ClientError, asyncio.TimeoutError, OSError)

    async def _session_for_loop(self):
        loop = asyncio.get_running_loop()
        session = self._session
        if session is not None and not session.closed and self._loop is loop:
            return session
        if session is not None and not session.closed:
            try:
                await session.close()
            except Exception:  # pragma: no cover - cross-loop teardown is best effort
                pass
        self._session = self._aiohttp.ClientSession()
        self._loop = loop
        self.sessions_created += 1
        return self._session

    async def get(
        self, url: str, headers: Dict[str, str], timeout_s: float, max_bytes: int
    ) -> HttpResponse:
        session = await self._session_for_loop()
        self.requests += 1
        timeout = self._aiohttp.ClientTimeout(total=timeout_s)
        async with session.get(
            url, headers=headers, timeout=timeout, allow_redirects=False
        ) as response:
            # StreamReader.read(n) returns as soon as ANY buffered bytes
            # exist (up to n), not when n bytes or EOF arrived — loop to
            # EOF or one byte past the cap (which flags oversize bodies
            # without buffering the rest), matching the stdlib backend's
            # blocking-read semantics.
            chunks = []
            remaining = max_bytes + 1
            while remaining > 0:
                chunk = await response.content.read(remaining)
                if not chunk:
                    break
                chunks.append(bytes(chunk))
                remaining -= len(chunk)
            return HttpResponse(
                status=response.status,
                headers={k.lower(): v for k, v in response.headers.items()},
                body=b"".join(chunks),
                url=str(response.url),
            )

    async def close(self) -> None:
        session, self._session = self._session, None
        if session is not None and not session.closed:
            await session.close()


@dataclass
class _RobotsEntry:
    """One host's cached robots.txt verdict machine, with its fetch time."""

    parser: object
    fetched_at: float


#: Default MIME types the fetcher will parse; everything else is gated.
DEFAULT_CONTENT_TYPES = ("text/html", "application/xhtml+xml")


class HttpTransport:
    """The real-network transport: a production HTTP fetcher.

    What the stub grew into (PR 10):

    * **one shared session** per transport (``backend="aiohttp"`` needs
      the optional dependency; ``backend="stdlib"`` works everywhere;
      ``"auto"`` prefers aiohttp when importable), with an explicit
      :meth:`close`;
    * **robots.txt**: fetched once per host through the same session,
      cached with a TTL, and honoured (disallowed URLs come back
      ``SKIPPED``/``robots`` without touching the page) — re-checked at
      every redirect hop against the *target* host's rules;
    * **redirect chains**: followed manually up to ``max_redirects``
      hops with loop detection — a cap overrun or revisit refuses the
      URL (``SKIPPED``/``redirect-cap`` or ``redirect-loop``) instead of
      spinning;
    * **content gating**: only ``allowed_content_types`` bodies up to
      ``max_content_bytes`` are parsed; others are ``SKIPPED``;
    * **timeout/retry/backoff**: transient errors and 5xx retry up to
      ``max_retries`` times with exponential backoff whose jitter factors
      are **drawn in** :meth:`prepare` from a seeded generator — in
      checkout order, the determinism contract the async pipeline (and
      the cassette layer) rests on;
    * **per-host politeness**: ``per_host_delay_s`` spaces requests to
      one host; in-flight caps stay with the engine's
      :class:`~repro.crawler.policies.FetchPolicy` seam (PR 4).

    ``order_sensitive`` is False: real fetches carry no shared simulated
    draw stream the thread pool could scramble (the backoff draws only
    shape wall-clock timing, never content).  Wrap the transport in a
    :class:`~repro.webgraph.cassette.RecordingTransport` to make a live
    crawl replayable; checkpoints carry counters plus the RNG position.
    """

    order_sensitive = False

    def __init__(
        self,
        timeout_s: float = 20.0,
        max_retries: int = 1,
        user_agent: str = "repro-focused-crawler/0.2 (+research reproduction)",
        max_links: int = 500,
        backend: str = "auto",
        max_redirects: int = 5,
        max_content_bytes: int = 2 * 1024 * 1024,
        allowed_content_types: tuple = DEFAULT_CONTENT_TYPES,
        honor_robots: bool = True,
        robots_ttl_s: float = 3600.0,
        retry_backoff_s: float = 0.25,
        retry_jitter: float = 0.5,
        per_host_delay_s: float = 0.0,
        seed: int = 0,
        clock=None,
    ) -> None:
        if backend not in ("auto", "aiohttp", "stdlib"):
            raise ValueError(f"unknown http backend {backend!r}; expected auto/aiohttp/stdlib")
        if max_redirects < 0 or max_retries < 0:
            raise ValueError("max_redirects and max_retries must be >= 0")
        if timeout_s <= 0 or max_content_bytes <= 0:
            raise ValueError("timeout_s and max_content_bytes must be positive")
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.user_agent = user_agent
        self.max_links = max_links
        self.max_redirects = max_redirects
        self.max_content_bytes = max_content_bytes
        self.allowed_content_types = tuple(ct.lower() for ct in allowed_content_types)
        self.honor_robots = honor_robots
        self.robots_ttl_s = robots_ttl_s
        self.retry_backoff_s = retry_backoff_s
        self.retry_jitter = retry_jitter
        self.per_host_delay_s = per_host_delay_s
        self._clock = clock or time.monotonic
        self._backend = self._build_backend(backend)
        self.stats = FetchStats()
        self._stats_lock = threading.Lock()
        self._rng = np.random.default_rng(seed)
        self._rng_lock = threading.Lock()
        self._robots_cache: Dict[str, _RobotsEntry] = {}
        self._robots_locks: Dict[str, asyncio.Lock] = {}
        self._robots_locks_loop: Optional[asyncio.AbstractEventLoop] = None
        self._next_request_at: Dict[str, float] = {}
        self._host_lock = threading.Lock()
        #: Observability hook: when set, robots / redirect / error events
        #: are reported as plain dicts (the cassette recorder hangs here).
        self.events = None
        self.robots_fetches = 0
        self.redirects_followed = 0
        #: Loop owned by the synchronous fetch() path, so serial crawls
        #: reuse one session too (created lazily, released by close()).
        #: The lock keeps the threaded fetch stage correct — concurrent
        #: sync fetches serialise on the one loop; use the async engine
        #: mode for real fetch concurrency.
        self._own_loop: Optional[asyncio.AbstractEventLoop] = None
        self._own_loop_lock = threading.Lock()

    @staticmethod
    def _build_backend(backend: str):
        aiohttp_module = None
        if backend in ("auto", "aiohttp"):
            try:
                import aiohttp as aiohttp_module
            except ImportError as exc:
                if backend == "aiohttp":
                    raise TransportUnavailable(
                        "HttpTransport(backend='aiohttp') needs the optional aiohttp "
                        "dependency; install it with `pip install "
                        "repro-focused-crawler[http]` or use backend='stdlib'"
                    ) from exc
        if aiohttp_module is not None:
            return AiohttpSessionBackend(aiohttp_module)
        return StdlibSessionBackend()

    @property
    def backend_name(self) -> str:
        return self._backend.name

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Release the shared session/connections (idempotent, sync-only)."""
        backend, self._backend = self._backend, None
        loop, self._own_loop = self._own_loop, None
        if backend is not None:
            runner = loop if loop is not None and not loop.is_closed() else None
            if runner is not None:
                runner.run_until_complete(backend.close())
            else:
                asyncio.run(backend.close())
        if loop is not None and not loop.is_closed():
            loop.close()

    async def aclose(self) -> None:
        backend, self._backend = self._backend, None
        if backend is not None:
            await backend.close()

    def _require_backend(self):
        if self._backend is None:
            raise RuntimeError("HttpTransport is closed")
        return self._backend

    # -- FetchTransport ----------------------------------------------------
    def fetch(self, url: str) -> FetchResult:
        # One private loop for the sync path: the shared session (aiohttp
        # binds sessions to a loop) survives across serial fetches.
        pending = self.prepare(url)
        with self._own_loop_lock:
            if self._own_loop is None or self._own_loop.is_closed():
                self._own_loop = asyncio.new_event_loop()
            return self._own_loop.run_until_complete(self.wait(pending))

    def prepare(self, url: str) -> PendingFetch:
        # The only draws of this transport happen HERE, synchronously, in
        # checkout order: the jitter factors of every potential retry
        # backoff.  wait() performs the actual I/O, so the engine's
        # max_inflight gate bounds real connection concurrency.
        pending = PendingFetch(url=url)
        with self._rng_lock:
            pending.backoffs = [
                self.retry_backoff_s
                * (2.0**index)
                * (1.0 + self.retry_jitter * float(self._rng.random()))
                for index in range(self.max_retries)
            ]
        return pending

    async def wait(self, pending: PendingFetch) -> FetchResult:
        url = normalize_url(pending.url)
        host = host_of(url)
        started = time.perf_counter()

        def done(status: FetchStatus, detail: str = "", tokens=None, links=None) -> FetchResult:
            return self._record(
                FetchResult(
                    url=pending.url,
                    status=status,
                    tokens=tokens or [],
                    out_links=links or [],
                    server=host,
                    latency_ms=(time.perf_counter() - started) * 1000.0,
                    detail=detail,
                )
            )

        if not url.startswith(("http://", "https://")):
            return done(FetchStatus.SKIPPED, detail="scheme")
        if self.honor_robots and not await self._robots_allows(url):
            return done(FetchStatus.SKIPPED, detail="robots")

        current = url
        seen = {current}
        hops = 0
        retries_used = 0
        while True:
            response, detail = await self._get_with_retries(current, pending, retries_used)
            retries_used = pending.attempts - 1
            if response is None:
                return done(FetchStatus.SERVER_ERROR, detail=detail)
            status = response.status
            if 300 <= status < 400:
                location = response.headers.get("location")
                if not location:
                    return done(FetchStatus.SKIPPED, detail="redirect-no-location")
                target = self._resolve_link(current, location)
                if target is None or not target.startswith(("http://", "https://")):
                    return done(FetchStatus.SKIPPED, detail="scheme")
                target = normalize_url(target)
                hops += 1
                if hops > self.max_redirects:
                    self._emit({"kind": "redirect", "url": current, "target": target, "refused": "cap"})
                    return done(FetchStatus.SKIPPED, detail="redirect-cap")
                if target in seen:
                    self._emit({"kind": "redirect", "url": current, "target": target, "refused": "loop"})
                    return done(FetchStatus.SKIPPED, detail="redirect-loop")
                seen.add(target)
                # Each hop — including a cross-host one — must honour the
                # *target* host's robots rules, not just the original URL's.
                if self.honor_robots and not await self._robots_allows(target):
                    self._emit({"kind": "redirect", "url": current, "target": target, "refused": "robots"})
                    return done(FetchStatus.SKIPPED, detail="robots")
                self.redirects_followed += 1
                self._emit({"kind": "redirect", "url": current, "target": target, "hop": hops})
                current = target
                continue
            if status in (404, 410):
                return done(FetchStatus.NOT_FOUND, detail=f"http-{status}")
            if 400 <= status < 500:
                return done(FetchStatus.SKIPPED, detail=f"http-{status}")
            if status >= 500:
                return done(FetchStatus.SERVER_ERROR, detail=f"http-{status}")
            content_type = response.headers.get("content-type", "").split(";")[0].strip().lower()
            if self.allowed_content_types and content_type not in self.allowed_content_types:
                return done(FetchStatus.SKIPPED, detail="content-type")
            if len(response.body) > self.max_content_bytes:
                return done(FetchStatus.SKIPPED, detail="too-large")
            text = self._decode(response)
            tokens, links = parse_html(text, base_url=current, max_links=self.max_links)
            return done(FetchStatus.OK, tokens=tokens, links=links)

    async def _get_with_retries(
        self, url: str, pending: PendingFetch, retries_used: int
    ) -> tuple[Optional[HttpResponse], str]:
        """One GET with transient-error/5xx retries; (None, detail) when exhausted.

        The retry budget (and its prepared backoff draws) is shared
        across a redirect chain's hops, so one URL can never consume more
        than ``max_retries`` extra requests in total.
        """
        backend = self._require_backend()
        headers = {"User-Agent": self.user_agent}
        await self._politeness_delay(host_of(url))
        detail = "network"
        for spent in range(retries_used, self.max_retries + 1):
            pending.attempts = spent + 1
            try:
                response = await backend.get(url, headers, self.timeout_s, self.max_content_bytes)
            except backend.error_types as exc:
                detail = "network"
                self._emit({"kind": "error", "url": url, "error": type(exc).__name__})
                response = None
            if response is not None and response.status < 500:
                return response, ""
            if response is not None:
                detail = f"http-{response.status}"
            if spent >= self.max_retries:
                return (response, detail) if response is not None else (None, detail)
            delay = pending.backoffs[spent] if spent < len(pending.backoffs) else self.retry_backoff_s
            if delay > 0:
                await asyncio.sleep(delay)
        return None, detail  # pragma: no cover - loop always returns

    async def _politeness_delay(self, host: str) -> None:
        """Space requests to one host at least ``per_host_delay_s`` apart."""
        if self.per_host_delay_s <= 0:
            return
        with self._host_lock:
            now = self._clock()
            next_ok = self._next_request_at.get(host, now)
            wait_s = max(0.0, next_ok - now)
            self._next_request_at[host] = max(now, next_ok) + self.per_host_delay_s
        if wait_s > 0:
            await asyncio.sleep(wait_s)

    # -- robots ------------------------------------------------------------
    async def _robots_allows(self, url: str) -> bool:
        parser = await self._robots_parser(url)
        if parser is None:
            return True
        return parser.can_fetch(self.user_agent, url)

    async def _robots_parser(self, url: str):
        from urllib.parse import urlsplit

        parts = urlsplit(url)
        base = f"{parts.scheme}://{parts.netloc}"
        now = self._clock()
        entry = self._robots_cache.get(base)
        if entry is not None and now - entry.fetched_at < self.robots_ttl_s:
            return entry.parser
        lock = self._robots_lock(base)
        async with lock:
            entry = self._robots_cache.get(base)
            now = self._clock()
            if entry is not None and now - entry.fetched_at < self.robots_ttl_s:
                return entry.parser
            parser = await self._fetch_robots(base)
            self._robots_cache[base] = _RobotsEntry(parser=parser, fetched_at=now)
            return parser

    def _robots_lock(self, base: str) -> asyncio.Lock:
        # asyncio.Lock binds to the loop that first acquires it, and the
        # engine's non-prefetch async mode runs one event loop per round
        # — a lock cached on round A's loop would raise "bound to a
        # different event loop" when a robots TTL expiry re-acquires it
        # on round B's.  Scope the cache to the running loop (the same
        # trick as the aiohttp backend's _session_for_loop).
        loop = asyncio.get_running_loop()
        if self._robots_locks_loop is not loop:
            self._robots_locks = {}
            self._robots_locks_loop = loop
        return self._robots_locks.setdefault(base, asyncio.Lock())

    async def _fetch_robots(self, base: str):
        """Fetch and parse ``robots.txt``; None (allow everything) on any failure.

        A 2xx body is parsed; anything else — 4xx, 5xx, redirects,
        connection errors — is treated as "no robots restrictions", the
        conventional crawler behaviour for absent/unreachable files.
        """
        from urllib.robotparser import RobotFileParser

        backend = self._require_backend()
        robots_url = f"{base}/robots.txt"
        self.robots_fetches += 1
        try:
            response = await backend.get(
                robots_url, {"User-Agent": self.user_agent}, self.timeout_s, 512 * 1024
            )
        except backend.error_types:
            self._emit({"kind": "robots", "url": robots_url, "status": "error"})
            return None
        self._emit({"kind": "robots", "url": robots_url, "status": response.status})
        if not 200 <= response.status < 300:
            return None
        parser = RobotFileParser()
        parser.parse(response.body.decode("utf-8", errors="replace").splitlines())
        return parser

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def _resolve_link(base: str, target: str) -> Optional[str]:
        from urllib.parse import urljoin

        try:
            return urljoin(base, target.strip())
        except ValueError:
            return None

    @staticmethod
    def _decode(response: HttpResponse) -> str:
        content_type = response.headers.get("content-type", "")
        charset = "utf-8"
        for part in content_type.split(";")[1:]:
            key, _, value = part.partition("=")
            if key.strip().lower() == "charset" and value.strip():
                charset = value.strip().strip('"').strip("'")
        try:
            return response.body.decode(charset, errors="replace")
        except LookupError:
            return response.body.decode("utf-8", errors="replace")

    def _emit(self, event: dict) -> None:
        if self.events is not None:
            self.events(event)

    def _record(self, result: FetchResult) -> FetchResult:
        with self._stats_lock:
            self.stats.record(result)
        return result

    # -- checkpointing -----------------------------------------------------
    def state_snapshot(self) -> dict:
        # The robots cache is soft state (re-fetchable, TTL-bounded); the
        # resumable hard state is the counters plus the backoff RNG
        # position, so a resumed crawl draws the identical jitter stream.
        with self._rng_lock:
            rng = self._rng.bit_generator.state
        return {
            "stats": asdict(self.stats),
            "rng": rng,
            "robots_fetches": self.robots_fetches,
            "redirects_followed": self.redirects_followed,
        }

    def restore_state(self, state: dict) -> None:
        self.stats = FetchStats(**state["stats"])
        if "rng" in state:
            with self._rng_lock:
                self._rng.bit_generator.state = state["rng"]
        self.robots_fetches = state.get("robots_fetches", 0)
        self.redirects_followed = state.get("redirects_followed", 0)


def parse_html(text: str, base_url: str, max_links: int = 500) -> tuple[list[str], list[str]]:
    """Crude HTML → (tokens, absolute out-links) used by :class:`HttpTransport`.

    Hardened for real-web input: malformed/truncated markup never raises;
    hrefs that fail to resolve are dropped; only absolute ``http(s)``
    links survive; fragments and query strings are stripped (the frontier
    keys pages by canonical URL, and ``#``/``?`` variants would explode
    it with aliases).
    """
    import re
    from urllib.parse import urljoin, urlsplit, urlunsplit

    links: list[str] = []
    for href in re.findall(r"""(?i)href\s*=\s*["']([^"'#]+)""", text):
        if len(links) >= max_links:
            break
        try:
            absolute = urljoin(base_url, href.strip())
            if not absolute.startswith(("http://", "https://")):
                continue
            parts = urlsplit(absolute)
        except ValueError:
            continue
        if not parts.netloc:
            continue
        links.append(urlunsplit((parts.scheme, parts.netloc, parts.path or "/", "", "")))
    stripped = re.sub(r"(?s)<(script|style)[^>]*>.*?</\1>", " ", text)
    stripped = re.sub(r"<[^>]+>", " ", stripped)
    tokens = re.findall(r"[a-z][a-z0-9]+", stripped.lower())
    return tokens, links


def build_transport(
    name: str, fetcher: Fetcher, options: Optional[dict] = None
) -> FetchTransport:
    """Construct a transport by registry name (``CrawlerConfig.transport``).

    ``options`` is the plain-data ``CrawlerConfig.transport_options``
    mapping, so a transport choice rides along inside crawl checkpoints
    and a resumed crawl rebuilds the identical stack.
    """
    options = dict(options or {})
    if name == "simulated":
        if options:
            raise ValueError(
                f"the simulated transport takes no options, got {sorted(options)}"
            )
        return SimulatedTransport(fetcher)
    if name == "latency":
        from_pool = options.pop("per_server_from_pool", False)
        inner = SimulatedTransport(fetcher)
        if from_pool:
            scale = options.pop("per_server_scale", 1.0)
            return LatencyTransport.from_server_pool(
                inner, fetcher.web.servers, scale=scale, **options
            )
        return LatencyTransport(inner, **options)
    if name == "http":
        return HttpTransport(**options)
    raise ValueError(f"unknown transport {name!r}; expected one of {TRANSPORTS}")
