"""Cassette record/replay: deterministic re-runs of real-network crawls.

The transport seam makes fetching pluggable; this module makes it
*loggable*.  A :class:`RecordingTransport` wraps any transport and
serialises every fetch outcome — plus robots / redirect / error
observability events when the inner transport reports them — into a
versioned JSONL cassette keyed by ``(url, attempt)``.  A
:class:`ReplayTransport` then plays the cassette back **without any
inner transport at all**: replay needs no network stack (no aiohttp, no
sockets), so a crawl recorded once against the live web (or a fixture
server) re-runs bit-identically in CI forever.

Why ``(url, attempt)`` and not sequence order: the engine may fetch one
URL several times (SERVER_ERROR pages are retried in later rounds), and
the batched/async modes interleave completions.  Keying by URL plus its
per-URL attempt ordinal makes replay independent of completion order, so
one cassette serves the serial, batched, and async engines and they all
produce identical pages and relevance floats.

Both wrappers participate in ``state_snapshot()`` / ``restore_state()``:
the recorder snapshots its byte offset (restore truncates speculative or
post-checkpoint events — this is what makes kill/resume and the
prefetcher's confirm-or-replay rewind work mid-cassette), and the
replayer snapshots its served counters.

File format (one JSON object per line)::

    {"format": "repro-fetch-cassette", "version": 1, "meta": {...}}
    {"kind": "fetch", "url": "...", "attempt": 1, "result": {...}}
    {"kind": "robots", ...}      # observability only; replay ignores
    {"kind": "redirect", ...}
    {"kind": "error", ...}

JSON floats round-trip exactly (``repr`` shortest round-trip), so
recorded latency and every token list replay bit-identically.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import asdict
from typing import Callable, Dict, Optional, Tuple

from .fetch import FetchResult, FetchStats, FetchStatus
from .transport import FetchTransport, PendingFetch

#: Magic string in the cassette header line.
CASSETTE_FORMAT = "repro-fetch-cassette"
#: Current schema version; bump on incompatible event changes.
CASSETTE_VERSION = 1

#: Event kinds replay understands (others are rejected by the linter).
EVENT_KINDS = ("fetch", "robots", "redirect", "error")


class CassetteError(RuntimeError):
    """The cassette file is malformed, wrong-version, or inconsistent."""


class CassetteMismatch(CassetteError):
    """Strict replay was asked for a request the cassette does not hold."""


def result_to_dict(result: FetchResult) -> dict:
    data = asdict(result)
    data["status"] = result.status.value
    return data


def result_from_dict(data: dict) -> FetchResult:
    fields = dict(data)
    fields["status"] = FetchStatus(fields["status"])
    return FetchResult(**fields)


def read_header(path: str) -> dict:
    """Read and validate a cassette's header line."""
    with open(path, "r", encoding="utf-8") as handle:
        first = handle.readline()
    if not first.strip():
        raise CassetteError(f"cassette {path} is empty (missing header)")
    try:
        header = json.loads(first)
    except json.JSONDecodeError as exc:
        raise CassetteError(f"cassette {path} header is not JSON: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != CASSETTE_FORMAT:
        raise CassetteError(
            f"cassette {path} is not a {CASSETTE_FORMAT} file (header {first.strip()[:80]!r})"
        )
    if header.get("version") != CASSETTE_VERSION:
        raise CassetteError(
            f"cassette {path} has schema version {header.get('version')!r}; "
            f"this build reads version {CASSETTE_VERSION}"
        )
    return header


class RecordingTransport:
    """Wrap any transport and log every fetch outcome to a JSONL cassette.

    ``order_sensitive`` is True: the recorder is itself a shared
    sequential stream (the file), so the threaded fetch stage runs it
    inline and events land in deterministic checkout order.  When the
    inner transport resolves outcomes at ``prepare`` time (the
    deterministic transports), the event is written there too, keeping
    byte offsets aligned with the engine's draw-state snapshots even
    under cross-round prefetch.  For a real HTTP inner the event is
    written at ``wait`` completion (record+prefetch+http is refused by
    :func:`transport_for_config` for exactly this reason).
    """

    order_sensitive = True

    def __init__(self, inner: FetchTransport, path: str, meta: Optional[dict] = None) -> None:
        self.inner = inner
        self.path = path
        self._lock = threading.Lock()
        self._attempts: Dict[str, int] = {}
        existing = os.path.exists(path) and os.path.getsize(path) > 0
        if existing:
            read_header(path)  # refuse to append to a foreign/old file
            self._rebuild_attempts(path)
        self._file = open(path, "ab")
        if not existing:
            header = {"format": CASSETTE_FORMAT, "version": CASSETTE_VERSION, "meta": meta or {}}
            self._write_line(header)
        self._install_event_sink()

    def _rebuild_attempts(self, path: str) -> None:
        # Re-opening a recorded cassette in record mode must continue
        # each URL's attempt numbering where the file left off — a fresh
        # counter would append duplicate (url, attempt) keys that replay
        # and lint_cassette reject.  (A checkpoint resume then overwrites
        # both counters and offset via restore_state.)
        with open(path, "r", encoding="utf-8") as handle:
            next(handle)  # header, validated by read_header above
            for lineno, line in enumerate(handle, start=2):
                if not line.strip():
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise CassetteError(f"{path}:{lineno}: bad JSON: {exc}") from exc
                if event.get("kind") != "fetch":
                    continue
                try:
                    url = event["url"]
                    attempt = int(event["attempt"])
                except (KeyError, TypeError, ValueError) as exc:
                    raise CassetteError(f"{path}:{lineno}: malformed fetch event") from exc
                if attempt > self._attempts.get(url, 0):
                    self._attempts[url] = attempt

    def _install_event_sink(self) -> None:
        # Walk the wrapper chain looking for a transport with an
        # observability hook (HttpTransport.events) and point it here so
        # robots/redirect/error events ride along in the cassette.
        obj = self.inner
        seen = set()
        while obj is not None and id(obj) not in seen:
            seen.add(id(obj))
            if hasattr(obj, "events"):
                obj.events = self._on_event
                return
            obj = getattr(obj, "inner", None)

    def _on_event(self, event: dict) -> None:
        kind = event.get("kind")
        if kind in ("robots", "redirect", "error"):
            with self._lock:
                self._write_line(event)

    def _write_line(self, obj: dict) -> None:
        self._file.write((json.dumps(obj, sort_keys=True) + "\n").encode("utf-8"))
        self._file.flush()

    def _record(self, url: str, result: FetchResult) -> None:
        with self._lock:
            attempt = self._attempts.get(url, 0) + 1
            self._attempts[url] = attempt
            self._write_line(
                {"kind": "fetch", "url": url, "attempt": attempt, "result": result_to_dict(result)}
            )

    # -- FetchTransport ----------------------------------------------------
    @property
    def stats(self) -> FetchStats:
        return self.inner.stats

    def fetch(self, url: str) -> FetchResult:
        result = self.inner.fetch(url)
        self._record(url, result)
        return result

    def prepare(self, url: str) -> PendingFetch:
        pending = self.inner.prepare(url)
        if pending.result is not None:
            # Deterministic inner: the outcome exists now, so the event is
            # written now — in checkout order, before any snapshot that
            # could rewind past it.
            self._record(url, pending.result)
            pending.recorded = True
        return pending

    async def wait(self, pending: PendingFetch) -> FetchResult:
        result = await self.inner.wait(pending)
        if not getattr(pending, "recorded", False):
            self._record(pending.url, result)
        return result

    # -- checkpointing -----------------------------------------------------
    def state_snapshot(self) -> dict:
        with self._lock:
            self._file.flush()
            return {
                "inner": self.inner.state_snapshot(),
                "attempts": dict(self._attempts),
                "offset": self._file.tell(),
            }

    def restore_state(self, state: dict) -> None:
        with self._lock:
            self._attempts = dict(state["attempts"])
            # Drop events written after the snapshot (speculative prefetch
            # rewind, or post-checkpoint work lost to a crash): the
            # cassette rewinds in lockstep with every other draw stream.
            self._file.flush()
            self._file.truncate(state["offset"])
            self._file.seek(0, os.SEEK_END)
        self.inner.restore_state(state["inner"])

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()
        inner_close = getattr(self.inner, "close", None)
        if callable(inner_close):
            inner_close()


class ReplayTransport:
    """Serve fetches from a cassette — no inner transport, no network.

    ``strict=True`` (the default) raises :class:`CassetteMismatch` the
    moment a request has no recorded ``(url, attempt)`` event;
    ``strict=False`` degrades a miss to a NOT_FOUND result with detail
    ``"cassette-miss"``.  Leftover (recorded but never requested) events
    are reported by :meth:`leftover`, and :meth:`assert_exhausted` makes
    them loud.
    """

    order_sensitive = True

    def __init__(self, path: str, strict: bool = True) -> None:
        self.path = path
        self.strict = strict
        self.stats = FetchStats()
        self._lock = threading.Lock()
        self._served: Dict[str, int] = {}
        self.meta: dict = {}
        self._events: Dict[Tuple[str, int], dict] = {}
        self._load(path)

    def _load(self, path: str) -> None:
        self.meta = read_header(path).get("meta", {})
        with open(path, "r", encoding="utf-8") as handle:
            next(handle)  # header, already validated
            for lineno, line in enumerate(handle, start=2):
                if not line.strip():
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise CassetteError(f"{path}:{lineno}: bad JSON: {exc}") from exc
                if event.get("kind") != "fetch":
                    continue  # observability events are record-side only
                try:
                    key = (event["url"], int(event["attempt"]))
                    record = event["result"]
                except (KeyError, TypeError, ValueError) as exc:
                    raise CassetteError(f"{path}:{lineno}: malformed fetch event") from exc
                if key in self._events:
                    raise CassetteError(f"{path}:{lineno}: duplicate fetch key {key}")
                self._events[key] = record

    # -- FetchTransport ----------------------------------------------------
    def fetch(self, url: str) -> FetchResult:
        with self._lock:
            attempt = self._served.get(url, 0) + 1
            record = self._events.get((url, attempt))
            if record is None:
                if self.strict:
                    raise CassetteMismatch(
                        f"cassette {self.path} has no event for ({url!r}, attempt {attempt}); "
                        f"the replayed crawl diverged from the recording"
                    )
                self._served[url] = attempt
                result = FetchResult(
                    url=url, status=FetchStatus.NOT_FOUND, detail="cassette-miss"
                )
                self.stats.record(result)
                return result
            self._served[url] = attempt
            result = result_from_dict(record)
            self.stats.record(result)
            return result

    def prepare(self, url: str) -> PendingFetch:
        # Resolved immediately, SimulatedTransport-style: the served
        # counters advance in checkout order, never at completion.
        result = self.fetch(url)
        return PendingFetch(url=url, result=result, delay_s=0.0)

    async def wait(self, pending: PendingFetch) -> FetchResult:
        assert pending.result is not None
        return pending.result

    # -- exhaustion --------------------------------------------------------
    def leftover(self) -> list:
        """Recorded ``(url, attempt)`` keys the replayed crawl never asked for."""
        with self._lock:
            return sorted(
                key for key in self._events if self._served.get(key[0], 0) < key[1]
            )

    def assert_exhausted(self) -> None:
        remaining = self.leftover()
        if remaining:
            sample = ", ".join(f"{u}#{a}" for u, a in remaining[:5])
            raise CassetteMismatch(
                f"cassette {self.path} has {len(remaining)} unconsumed fetch events "
                f"(first: {sample}); the replayed crawl diverged from the recording"
            )

    # -- checkpointing -----------------------------------------------------
    def state_snapshot(self) -> dict:
        with self._lock:
            return {"served": dict(self._served), "stats": asdict(self.stats)}

    def restore_state(self, state: dict) -> None:
        with self._lock:
            self._served = dict(state["served"])
            self.stats = FetchStats(**state["stats"])


def lint_cassette(path: str) -> dict:
    """Validate a cassette file end to end; returns a summary dict.

    Checks the header magic + schema version, per-line JSON
    well-formedness, known event kinds, fetch-event schema (result
    round-trips through :class:`FetchResult`, status is a known value),
    and duplicate ``(url, attempt)`` keys.  Raises :class:`CassetteError`
    on the first violation.  Used by the CI cassette lint step.
    """
    header = read_header(path)
    counts: Dict[str, int] = {kind: 0 for kind in EVENT_KINDS}
    seen: set = set()
    with open(path, "r", encoding="utf-8") as handle:
        next(handle)
        for lineno, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise CassetteError(f"{path}:{lineno}: bad JSON: {exc}") from exc
            kind = event.get("kind")
            if kind not in EVENT_KINDS:
                raise CassetteError(f"{path}:{lineno}: unknown event kind {kind!r}")
            counts[kind] += 1
            if kind != "fetch":
                continue
            try:
                key = (event["url"], int(event["attempt"]))
                result_from_dict(event["result"])
            except CassetteError:
                raise
            except Exception as exc:
                raise CassetteError(f"{path}:{lineno}: malformed fetch event: {exc}") from exc
            if key in seen:
                raise CassetteError(f"{path}:{lineno}: duplicate fetch key {key}")
            seen.add(key)
    return {"version": header["version"], "meta": header.get("meta", {}), "events": counts}


def transport_for_config(
    config, fetcher, build: Optional[Callable] = None
) -> FetchTransport:
    """Build the engine's transport from a ``CrawlerConfig``, cassette-aware.

    Without a ``cassette_path`` this is exactly ``build_transport``.
    With one, ``cassette_mode`` selects the wrapper: ``"record"`` wraps
    the configured transport in a :class:`RecordingTransport`,
    ``"replay"`` ignores the configured transport entirely and serves
    from the cassette, and ``"auto"`` resolves to replay when the file
    already exists, record otherwise.  The resolved mode is written back
    into ``config.cassette_mode`` so it rides inside checkpoints: a
    crawl killed while *recording* resumes recording (the half-written
    file exists, but "auto" must not flip it to replay).
    """
    from .transport import build_transport

    if build is None:
        build = build_transport
    path = getattr(config, "cassette_path", "") or ""
    if not path:
        return build(config.transport, fetcher, config.transport_options)
    mode = getattr(config, "cassette_mode", "auto") or "auto"
    if mode == "auto":
        mode = "replay" if os.path.exists(path) and os.path.getsize(path) > 0 else "record"
        try:
            config.cassette_mode = mode
        except AttributeError:  # pragma: no cover - frozen config
            pass
    if mode == "replay":
        return ReplayTransport(path, strict=getattr(config, "cassette_strict", True))
    if mode != "record":
        raise ValueError(
            f"unknown cassette_mode {mode!r}; expected 'auto', 'record', or 'replay'"
        )
    if (
        config.transport == "http"
        and getattr(config, "prefetch", False)
    ):
        raise ValueError(
            "cassette recording of an http crawl is incompatible with prefetch=True: "
            "speculative fetches would land in the cassette out of checkout order; "
            "record with prefetch=False (replay supports every mode)"
        )
    inner = build(config.transport, fetcher, config.transport_options)
    return RecordingTransport(inner, path)
