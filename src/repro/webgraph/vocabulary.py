"""Term universe and per-topic term distributions for the synthetic web.

The paper's generative model (§2.1.1) writes a document by repeatedly
rolling a die whose faces are terms and whose face probabilities are the
class-conditional parameters θ(c, t).  To *simulate the Web* we need the
inverse: a ground-truth θ for every topic so that page text can be
generated, and so that the trained classifier has a learnable signal.

Each leaf topic gets a block of characteristic terms layered on top of a
shared Zipfian background vocabulary (stopword-like terms every page
uses).  Internal topics mix their children's distributions, matching the
paper's hierarchical model where a document of a leaf class also belongs
to every ancestor.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, Mapping, Optional, Sequence

import numpy as np


@lru_cache(maxsize=1 << 17)
def term_id(term: str) -> int:
    """Stable 32-bit term id (the paper uses 32-bit hash codes for terms).

    Memoised: the synthetic vocabulary is small and every fetched page
    re-hashes the same tokens, so the encode+CRC runs once per distinct
    term instead of once per token occurrence.
    """
    return zlib.crc32(term.encode("utf-8")) & 0xFFFFFFFF


@dataclass
class TermDistribution:
    """A multinomial over terms: parallel arrays of term strings and probabilities."""

    terms: np.ndarray  # dtype=object (str)
    probabilities: np.ndarray  # dtype=float, sums to 1

    def __post_init__(self) -> None:
        total = float(self.probabilities.sum())
        if total <= 0:
            raise ValueError("term distribution must have positive mass")
        self.probabilities = self.probabilities / total

    def sample(self, rng: np.random.Generator, n_terms: int) -> list[str]:
        """Draw *n_terms* terms i.i.d. from the distribution."""
        indices = rng.choice(len(self.terms), size=n_terms, p=self.probabilities)
        return [self.terms[i] for i in indices]

    def probability_of(self, term: str) -> float:
        matches = np.where(self.terms == term)[0]
        if len(matches) == 0:
            return 0.0
        return float(self.probabilities[matches[0]])

    def top_terms(self, k: int) -> list[str]:
        order = np.argsort(-self.probabilities)[:k]
        return [self.terms[i] for i in order]

    @staticmethod
    def mixture(
        components: Sequence["TermDistribution"], weights: Optional[Sequence[float]] = None
    ) -> "TermDistribution":
        """Combine distributions with the given weights (uniform by default)."""
        if not components:
            raise ValueError("mixture needs at least one component")
        if weights is None:
            weights = [1.0 / len(components)] * len(components)
        if len(weights) != len(components):
            raise ValueError("weights must match components")
        mass: Dict[str, float] = {}
        for dist, weight in zip(components, weights):
            for term, prob in zip(dist.terms, dist.probabilities):
                mass[term] = mass.get(term, 0.0) + weight * float(prob)
        terms = np.array(list(mass.keys()), dtype=object)
        probabilities = np.array([mass[t] for t in terms], dtype=float)
        return TermDistribution(terms, probabilities)


def zipf_probabilities(n: int, exponent: float = 1.05) -> np.ndarray:
    """Zipf-like rank probabilities for *n* items."""
    ranks = np.arange(1, n + 1, dtype=float)
    weights = 1.0 / np.power(ranks, exponent)
    return weights / weights.sum()


@dataclass
class Vocabulary:
    """The full synthetic term universe.

    ``background_terms`` appear in every document (function words).
    ``topic_terms`` maps a topic path (e.g. ``"recreation/cycling"``) to
    that topic's characteristic terms.
    """

    background_terms: list[str]
    topic_terms: dict[str, list[str]] = field(default_factory=dict)

    #: Probability mass a leaf topic's documents devote to topical terms
    #: (the rest goes to the shared background vocabulary).
    topical_mass: float = 0.55

    def __post_init__(self) -> None:
        self._background_dist = TermDistribution(
            np.array(self.background_terms, dtype=object),
            zipf_probabilities(len(self.background_terms)),
        )
        self._leaf_dists: dict[str, TermDistribution] = {}

    # -- construction ------------------------------------------------------
    @classmethod
    def build(
        cls,
        topic_paths: Iterable[str],
        background_size: int = 400,
        terms_per_topic: int = 60,
        topical_mass: float = 0.55,
    ) -> "Vocabulary":
        """Create a vocabulary with a fresh term block for every topic path."""
        background = [f"common{i:04d}" for i in range(background_size)]
        topic_terms = {}
        for path in topic_paths:
            slug = path.replace("/", "_")
            topic_terms[path] = [f"{slug}_t{i:03d}" for i in range(terms_per_topic)]
        return cls(background, topic_terms, topical_mass)

    # -- distributions -----------------------------------------------------------
    @property
    def background(self) -> TermDistribution:
        return self._background_dist

    def leaf_distribution(self, topic_path: str) -> TermDistribution:
        """The ground-truth θ(c, ·) for a leaf topic: topical block + background."""
        if topic_path not in self.topic_terms:
            raise KeyError(f"no topical terms for {topic_path!r}")
        if topic_path not in self._leaf_dists:
            topical = TermDistribution(
                np.array(self.topic_terms[topic_path], dtype=object),
                zipf_probabilities(len(self.topic_terms[topic_path]), exponent=0.8),
            )
            self._leaf_dists[topic_path] = TermDistribution.mixture(
                [topical, self._background_dist],
                [self.topical_mass, 1.0 - self.topical_mass],
            )
        return self._leaf_dists[topic_path]

    def blended_distribution(
        self, topic_weights: Mapping[str, float], background_weight: float = 0.0
    ) -> TermDistribution:
        """Mixture of several leaf topics (used for hub pages and noisy pages)."""
        components = [self.leaf_distribution(path) for path in topic_weights]
        weights = [float(w) for w in topic_weights.values()]
        if background_weight > 0:
            components.append(self._background_dist)
            weights.append(background_weight)
        return TermDistribution.mixture(components, weights)

    def all_terms(self) -> list[str]:
        out = list(self.background_terms)
        for terms in self.topic_terms.values():
            out.extend(terms)
        return out

    def topic_paths(self) -> list[str]:
        return sorted(self.topic_terms)
