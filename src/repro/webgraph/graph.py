"""The synthetic distributed hypertext graph.

This module plays the role of the Web in the reproduction.  The paper
crawled the live 1999 Web; without network access we generate a web
whose *statistical structure* matches the two properties the paper's
architecture exploits (§2):

* **Radius-1 rule** — "Compared to an irrelevant page, a relevant page is
  more likely to cite another relevant page."  Topic pages here link to
  same-topic pages with probability ``p_same_topic`` (default ≈ 0.55),
  while background pages link to any given topic with only
  ``background_p_topic`` (default 0.03).
* **Radius-2 rule** — "if we are told that u does point to one page v of a
  given topic, this significantly inflates the probability that u has a
  link to another page of the same topic."  The paper measures ≈45 % for
  Yahoo! first-level topics.  We reproduce it two ways: link generation
  proceeds in *runs* (after emitting a same-topic link the next slot
  repeats the topic with probability ``radius2_continuation``), and a
  fraction of topic pages are *hubs* — bookmark-list pages with large,
  topically coherent out-link lists.

The generator also adds the nuisance structure the paper calls out:
universally popular off-topic sites that everyone links to (the
"Netscape and Free Speech Online" effect, which motivates relevance-
weighted distillation), plain background pages, dead links, and multiple
servers per topic (so the nepotism filter ``sid_src <> sid_dst`` and the
``serverload`` throttle have something to do).  A configurable co-topic
association (cycling → first aid) supports the §1 "citation sociology"
example.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from .documents import DocumentGenerator
from .servers import ServerPool, default_server_name
from .topics import TopicNode, default_topic_tree, sibling_paths
from .urls import make_url, normalize_url, server_sid, url_oid
from .vocabulary import Vocabulary


@dataclass
class WebPage:
    """One synthetic page: identity, ground truth, text, and out-links."""

    url: str
    server: str
    topic_path: str  # "" for background / popular pages
    tokens: list[str]
    out_links: list[str] = field(default_factory=list)
    is_hub: bool = False
    is_popular: bool = False
    #: Position of the page within its topic community (0-based); drives the
    #: link-locality structure that gives topic communities a large diameter.
    topic_index: int = 0

    @property
    def oid(self) -> int:
        return url_oid(self.url)

    @property
    def sid(self) -> int:
        return server_sid(self.server)


@dataclass
class WebConfig:
    """Parameters of the synthetic web generator.

    The defaults produce a web of roughly 2.5k–3k pages — large enough
    that an unfocused crawler drowns (Figure 5a) yet small enough that
    the full experiment suite runs in seconds.
    """

    seed: int = 7
    #: Number of content pages generated per leaf topic.
    pages_per_topic: int = 120
    #: Per-topic overrides of ``pages_per_topic`` (lets the good topic's
    #: community dwarf the crawl budget, as on the real web).
    topic_page_overrides: dict[str, int] = field(default_factory=dict)
    #: Number of off-topic background pages.
    background_pages: int = 700
    #: Fraction of each topic's pages that are hubs (bookmark lists).
    hub_fraction: float = 0.08
    #: Number of universally popular off-topic sites.
    popular_sites: int = 12
    #: Servers hosting each topic's pages (a minimum; see ``pages_per_server``).
    servers_per_topic: int = 4
    #: Servers hosting background pages (a minimum; see ``pages_per_server``).
    background_servers: int = 24
    #: Roughly how many pages live on one server.  Real web communities are
    #: spread over many sites, so the number of servers scales with the
    #: community size; this keeps the ``serverload`` crawl-ordering column
    #: a politeness tie-break rather than a dominant signal.
    pages_per_server: int = 12
    #: Mean out-degree of ordinary pages / hub pages / popular sites.
    out_degree_mean: float = 9.0
    hub_out_degree_mean: float = 28.0
    popular_out_degree_mean: float = 40.0
    #: Radius-1 locality: probability an ordinary topic page's link targets
    #: its own topic, a related (sibling) topic, a popular site, or the
    #: background web (the four must sum to <= 1; the remainder is background).
    p_same_topic: float = 0.52
    p_related_topic: float = 0.12
    p_popular: float = 0.12
    #: Probability that a *background* page links to any topic page at all.
    background_p_topic: float = 0.03
    #: Radius-2 run continuation probability (the paper's ≈45 %).
    radius2_continuation: float = 0.45
    #: Hub link mix: hubs devote most of their links to their own topic.
    hub_p_same_topic: float = 0.78
    hub_p_related: float = 0.08
    #: Same-topic link targets are drawn from a window of this many topic
    #: indices around the citing page (None = anywhere in the community).
    #: Localised linking gives each community a large diameter, which is
    #: what makes the paper's Figure 7 (authorities found many links from
    #: the seed set) reproducible at laptop scale.
    link_locality_window: Optional[int] = None
    #: Hubs use a window this many times larger than ordinary pages.
    hub_locality_multiplier: int = 4
    #: Keyword-search seeds are drawn from this leading fraction of the
    #: topic community (keyword engines surface the prominent, well-linked
    #: head of a community, not a uniform sample of it).
    seed_region_fraction: float = 1.0
    #: Fraction of generated links pointing at URLs that do not exist (404s).
    dead_link_fraction: float = 0.03
    #: Mean token count per page.
    mean_doc_length: int = 120
    #: Size of the shared background vocabulary and of each topic's block of
    #: characteristic terms.  Larger values make the classifier's statistics
    #: tables bigger, which is what the Figure 8 buffer-pool experiments need.
    vocabulary_background_size: int = 400
    vocabulary_terms_per_topic: int = 60
    #: Co-topic associations: pages of the key topic also link to the value
    #: topic with probability ``cotopic_prob`` (the citation-sociology signal).
    cotopic_links: dict[str, str] = field(
        default_factory=lambda: {"recreation/cycling": "health/first_aid"}
    )
    cotopic_prob: float = 0.18
    #: Per-server transient failure rate.
    server_failure_rate: float = 0.02


class WebGraph:
    """The generated hypertext: pages, servers, ground-truth topics, link structure."""

    def __init__(
        self,
        pages: Dict[str, WebPage],
        servers: ServerPool,
        topic_tree: TopicNode,
        vocabulary: Vocabulary,
        config: WebConfig,
    ) -> None:
        self.pages = pages
        self.servers = servers
        self.topic_tree = topic_tree
        self.vocabulary = vocabulary
        self.config = config
        self._by_topic: Dict[str, list[str]] = {}
        for url, page in pages.items():
            self._by_topic.setdefault(page.topic_path, []).append(url)
        self._in_links: Optional[Dict[str, list[str]]] = None

    def with_private_servers(self) -> "WebGraph":
        """A read-sharing view of this web with its own :class:`ServerPool` RNG.

        Pages, topic tree, and vocabulary are shared (crawls only read
        them); the server pool is cloned so this view's failure/latency
        stream is private.  The multi-tenant job manager gives each
        concurrent crawl such a view, keeping every job's draw sequence
        bit-identical to the same job run solo over the shared web.
        """
        import copy

        view = copy.copy(self)
        view.servers = self.servers.clone()
        return view

    # -- lookups ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.pages)

    def __contains__(self, url: str) -> bool:
        return normalize_url(url) in self.pages

    def page(self, url: str) -> WebPage:
        return self.pages[normalize_url(url)]

    def has_page(self, url: str) -> bool:
        return normalize_url(url) in self.pages

    def urls(self) -> list[str]:
        return list(self.pages)

    def out_links(self, url: str) -> list[str]:
        return list(self.page(url).out_links)

    def in_links(self, url: str) -> list[str]:
        if self._in_links is None:
            self._in_links = {}
            for source, page in self.pages.items():
                for target in page.out_links:
                    self._in_links.setdefault(normalize_url(target), []).append(source)
        return list(self._in_links.get(normalize_url(url), ()))

    def topic_of(self, url: str) -> str:
        return self.page(url).topic_path

    # -- ground truth ------------------------------------------------------------
    def pages_of_topic(self, topic_path: str, include_descendants: bool = True) -> list[str]:
        """URLs whose ground-truth topic is *topic_path* (or below it)."""
        if not include_descendants:
            return list(self._by_topic.get(topic_path, ()))
        out: list[str] = []
        prefix = topic_path + "/" if topic_path else ""
        for path, urls in self._by_topic.items():
            if path == topic_path or (prefix and path.startswith(prefix)):
                out.extend(urls)
        return out

    def relevant_pages(self, good_topics: Sequence[str]) -> set[str]:
        """Ground-truth relevant URLs w.r.t. a set of good topics (with subsumed topics)."""
        out: set[str] = set()
        for topic in good_topics:
            out.update(self.pages_of_topic(topic, include_descendants=True))
        return out

    def topic_census(self) -> dict[str, int]:
        return {path: len(urls) for path, urls in sorted(self._by_topic.items())}

    def hub_pages(self, topic_path: Optional[str] = None) -> list[str]:
        urls = (
            self.pages_of_topic(topic_path) if topic_path is not None else list(self.pages)
        )
        return [u for u in urls if self.pages[u].is_hub]

    # -- graph algorithms ----------------------------------------------------------
    def shortest_distances(self, start_urls: Iterable[str]) -> dict[str, int]:
        """BFS link distance from a start set to every reachable page (Figure 7)."""
        distances: dict[str, int] = {}
        queue: deque[str] = deque()
        for url in start_urls:
            normalized = normalize_url(url)
            if normalized in self.pages and normalized not in distances:
                distances[normalized] = 0
                queue.append(normalized)
        while queue:
            current = queue.popleft()
            for target in self.pages[current].out_links:
                normalized = normalize_url(target)
                if normalized in self.pages and normalized not in distances:
                    distances[normalized] = distances[current] + 1
                    queue.append(normalized)
        return distances

    # -- seed selection --------------------------------------------------------------
    def keyword_seed_pages(
        self,
        topic_path: str,
        count: int = 24,
        rng: Optional[np.random.Generator] = None,
        exclude: Iterable[str] = (),
    ) -> list[str]:
        """Simulate "result of topic distillation with keyword search" seeds (§3.4).

        The paper seeds its crawls with the output of keyword search plus
        topic distillation — i.e. a few dozen highly relevant pages,
        biased toward well-linked hubs.  We model that by sampling from
        the topic's pages with probability proportional to in-degree
        (hubs and popular authorities come first), which is what a
        keyword engine plus HITS would surface.
        """
        rng = rng if rng is not None else np.random.default_rng(self.config.seed + 1)
        excluded = {normalize_url(u) for u in exclude}
        candidates = [u for u in self.pages_of_topic(topic_path) if u not in excluded]
        if not candidates:
            return []
        fraction = self.config.seed_region_fraction
        if fraction < 1.0:
            # Keyword engines surface the prominent head of a community;
            # restricting seeds to it leaves most of the community several
            # links away (the Figure 7 setting).
            cutoff = max(
                count * 2,
                int(round(len(self.pages_of_topic(topic_path)) * fraction)),
            )
            regional = [u for u in candidates if self.pages[u].topic_index < cutoff]
            if len(regional) >= count:
                candidates = regional
        weights = np.array(
            [1.0 + len(self.in_links(u)) + (5.0 if self.pages[u].is_hub else 0.0) for u in candidates]
        )
        weights = weights / weights.sum()
        count = min(count, len(candidates))
        chosen = rng.choice(len(candidates), size=count, replace=False, p=weights)
        return [candidates[i] for i in chosen]

    def disjoint_seed_sets(
        self, topic_path: str, size: int = 20, rng: Optional[np.random.Generator] = None
    ) -> tuple[list[str], list[str]]:
        """Two disjoint seed sets S1, S2 for the coverage experiment (§3.5)."""
        rng = rng if rng is not None else np.random.default_rng(self.config.seed + 2)
        first = self.keyword_seed_pages(topic_path, size, rng)
        second = self.keyword_seed_pages(topic_path, size, rng, exclude=first)
        return first, second


class SyntheticWebBuilder:
    """Builds a :class:`WebGraph` from a :class:`WebConfig`."""

    def __init__(self, config: Optional[WebConfig] = None, seed: Optional[int] = None) -> None:
        if config is None:
            config = WebConfig(seed=seed if seed is not None else 7)
        elif seed is not None:
            config.seed = seed
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.topic_tree = default_topic_tree()

    # -- public API -------------------------------------------------------------
    def build(self, topic_tree: Optional[TopicNode] = None) -> WebGraph:
        """Generate the full synthetic web."""
        config = self.config
        if topic_tree is not None:
            self.topic_tree = topic_tree
        leaves = [leaf.path for leaf in self.topic_tree.leaves()]
        vocabulary = Vocabulary.build(
            leaves,
            background_size=config.vocabulary_background_size,
            terms_per_topic=config.vocabulary_terms_per_topic,
        )
        documents = DocumentGenerator(
            vocabulary, mean_length=config.mean_doc_length, rng=self.rng
        )
        servers = ServerPool(rng=self.rng)

        pages: Dict[str, WebPage] = {}
        topic_urls: Dict[str, list[str]] = {leaf: [] for leaf in leaves}
        background_urls: list[str] = []
        popular_urls: list[str] = []

        self._create_topic_pages(leaves, servers, documents, pages, topic_urls)
        self._create_background_pages(servers, documents, pages, background_urls)
        self._create_popular_pages(servers, documents, pages, popular_urls)
        self._wire_links(leaves, pages, topic_urls, background_urls, popular_urls)

        return WebGraph(pages, servers, self.topic_tree, vocabulary, config)

    # -- page creation --------------------------------------------------------------
    def _create_topic_pages(
        self,
        leaves: Sequence[str],
        servers: ServerPool,
        documents: DocumentGenerator,
        pages: Dict[str, WebPage],
        topic_urls: Dict[str, list[str]],
    ) -> None:
        config = self.config
        for leaf in leaves:
            slug = leaf.replace("/", "-")
            page_count = config.topic_page_overrides.get(leaf, config.pages_per_topic)
            server_count = max(
                config.servers_per_topic, page_count // config.pages_per_server
            )
            topic_servers = [
                servers.ensure(
                    default_server_name(slug, i), failure_rate=config.server_failure_rate
                ).name
                for i in range(server_count)
            ]
            n_hubs = max(1, int(round(page_count * config.hub_fraction)))
            # Hubs are spread through the community (every community region
            # has its bookmark pages), not clustered at the front.
            hub_stride = max(1, page_count // n_hubs)
            for index in range(page_count):
                server = topic_servers[int(self.rng.integers(len(topic_servers)))]
                url = str(make_url(server, index, slug))
                is_hub = index % hub_stride == 0 and index // hub_stride < n_hubs
                if is_hub:
                    doc = documents.generate_mixture(
                        {leaf: 1.0}, primary_topic=leaf, background_weight=1.2
                    )
                else:
                    doc = documents.generate(leaf)
                pages[normalize_url(url)] = WebPage(
                    url=normalize_url(url),
                    server=server,
                    topic_path=leaf,
                    tokens=doc.tokens,
                    is_hub=is_hub,
                    topic_index=index,
                )
                topic_urls[leaf].append(normalize_url(url))

    def _create_background_pages(
        self,
        servers: ServerPool,
        documents: DocumentGenerator,
        pages: Dict[str, WebPage],
        background_urls: list[str],
    ) -> None:
        config = self.config
        server_count = max(
            config.background_servers, config.background_pages // config.pages_per_server
        )
        hosts = [
            servers.ensure(
                default_server_name("web", i), failure_rate=config.server_failure_rate
            ).name
            for i in range(server_count)
        ]
        for index in range(config.background_pages):
            server = hosts[int(self.rng.integers(len(hosts)))]
            url = normalize_url(str(make_url(server, index, "misc")))
            doc = documents.generate_background()
            pages[url] = WebPage(url=url, server=server, topic_path="", tokens=doc.tokens)
            background_urls.append(url)

    def _create_popular_pages(
        self,
        servers: ServerPool,
        documents: DocumentGenerator,
        pages: Dict[str, WebPage],
        popular_urls: list[str],
    ) -> None:
        config = self.config
        for index in range(config.popular_sites):
            server = servers.ensure(
                f"popular{index}.example.com", failure_rate=config.server_failure_rate
            ).name
            url = normalize_url(str(make_url(server, 0, "home")))
            doc = documents.generate_background()
            pages[url] = WebPage(
                url=url, server=server, topic_path="", tokens=doc.tokens, is_popular=True
            )
            popular_urls.append(url)

    # -- link wiring ------------------------------------------------------------------
    def _wire_links(
        self,
        leaves: Sequence[str],
        pages: Dict[str, WebPage],
        topic_urls: Dict[str, list[str]],
        background_urls: list[str],
        popular_urls: list[str],
    ) -> None:
        config = self.config
        all_urls = list(pages)
        for url, page in pages.items():
            if page.topic_path:
                self._wire_topic_page(
                    page, leaves, topic_urls, background_urls, popular_urls
                )
            else:
                self._wire_background_page(
                    page, topic_urls, background_urls, popular_urls
                )
            self._maybe_break_links(page)
        # Guarantee distillation signal: every hub also receives a few
        # in-links from nearby pages of its own topic (bookmark pages are
        # well known *within their neighbourhood*; sampling the sources
        # globally would create shortcuts across the community and destroy
        # the long crawl distances of Figure 7).
        window = config.link_locality_window
        for leaf in leaves:
            community = topic_urls[leaf]
            hubs = [u for u in community if pages[u].is_hub]
            for hub in hubs:
                hub_index = pages[hub].topic_index
                if window is None:
                    neighbourhood = [u for u in community if not pages[u].is_hub]
                else:
                    neighbourhood = [
                        u
                        for u in community
                        if not pages[u].is_hub
                        and abs(pages[u].topic_index - hub_index) <= 2 * window
                    ]
                sources = self._sample(neighbourhood, min(6, len(neighbourhood)))
                for source in sources:
                    if hub not in pages[source].out_links and source != hub:
                        pages[source].out_links.append(hub)

    def _wire_topic_page(
        self,
        page: WebPage,
        leaves: Sequence[str],
        topic_urls: Dict[str, list[str]],
        background_urls: list[str],
        popular_urls: list[str],
    ) -> None:
        config = self.config
        leaf = page.topic_path
        related = sibling_paths(self.topic_tree, leaf)
        cotopic = config.cotopic_links.get(leaf)
        if page.is_hub:
            degree = max(6, int(self.rng.poisson(config.hub_out_degree_mean)))
            p_same, p_related = config.hub_p_same_topic, config.hub_p_related
        else:
            degree = max(2, int(self.rng.poisson(config.out_degree_mean)))
            p_same, p_related = config.p_same_topic, config.p_related_topic
        window = config.link_locality_window
        if window is not None and page.is_hub:
            window = window * config.hub_locality_multiplier
        links: list[str] = []
        previous_was_same = False
        for _ in range(degree):
            # Radius-2 rule: continue a same-topic run with extra probability.
            if previous_was_same and self.rng.random() < config.radius2_continuation:
                choice = "same"
            else:
                roll = self.rng.random()
                if roll < p_same:
                    choice = "same"
                elif roll < p_same + p_related:
                    choice = "related"
                elif roll < p_same + p_related + config.p_popular:
                    choice = "popular"
                else:
                    choice = "background"
            if choice == "same":
                target = self._sample_same_topic(page, topic_urls[leaf], window)
            else:
                target = self._pick_target(
                    choice, leaf, related, topic_urls, background_urls, popular_urls
                )
            previous_was_same = choice == "same"
            if target and target != page.url and target not in links:
                links.append(target)
        if cotopic and self.rng.random() < config.cotopic_prob:
            target = self._sample_prominent(topic_urls.get(cotopic, []))
            if target and target not in links:
                links.append(target)
        page.out_links = links

    def _wire_background_page(
        self,
        page: WebPage,
        topic_urls: Dict[str, list[str]],
        background_urls: list[str],
        popular_urls: list[str],
    ) -> None:
        config = self.config
        mean_degree = (
            config.popular_out_degree_mean if page.is_popular else config.out_degree_mean
        )
        degree = max(1, int(self.rng.poisson(mean_degree)))
        links: list[str] = []
        leaves = list(topic_urls)
        for _ in range(degree):
            roll = self.rng.random()
            if roll < config.background_p_topic and leaves:
                leaf = leaves[int(self.rng.integers(len(leaves)))]
                target = self._sample_prominent(topic_urls[leaf])
            elif roll < config.background_p_topic + config.p_popular:
                target = self._sample_one(popular_urls)
            else:
                target = self._sample_one(background_urls)
            if target and target != page.url and target not in links:
                links.append(target)
        page.out_links = links

    def _sample_same_topic(
        self, page: WebPage, community: Sequence[str], window: Optional[int]
    ) -> Optional[str]:
        """Pick a same-topic link target, optionally restricted to a locality window."""
        if not community:
            return None
        if window is None or window >= len(community):
            return self._sample_one(community)
        low = max(0, page.topic_index - window)
        high = min(len(community), page.topic_index + window + 1)
        return community[int(self.rng.integers(low, high))]

    def _pick_target(
        self,
        choice: str,
        leaf: str,
        related: Sequence[str],
        topic_urls: Dict[str, list[str]],
        background_urls: list[str],
        popular_urls: list[str],
    ) -> Optional[str]:
        if choice == "same":
            return self._sample_one(topic_urls[leaf])
        if choice == "related" and related:
            other = related[int(self.rng.integers(len(related)))]
            return self._sample_prominent(topic_urls.get(other, []))
        if choice == "popular":
            return self._sample_one(popular_urls)
        return self._sample_one(background_urls)

    def _sample_prominent(self, community: Sequence[str]) -> Optional[str]:
        """Pick a topic page biased toward the prominent head of its community.

        Cross-topic and background links on the real web overwhelmingly
        point at a community's well-known pages, not uniformly into its
        long tail; preserving that keeps deep community pages reachable
        only through the community itself (the Figure 7 effect).
        """
        if not community:
            return None
        index = int(len(community) * self.rng.beta(1.0, 8.0))
        return community[min(index, len(community) - 1)]

    def _maybe_break_links(self, page: WebPage) -> None:
        """Replace a fraction of links with dead URLs (404 targets).

        The dead path is derived from the stable 64-bit URL hash — the
        builtin ``hash`` is randomised per process (PYTHONHASHSEED), which
        would break the promise that webs are deterministic functions of
        the seed.
        """
        config = self.config
        for i, target in enumerate(page.out_links):
            if self.rng.random() < config.dead_link_fraction:
                page.out_links[i] = normalize_url(
                    f"http://{page.server}/dead/{url_oid(target) % 10_000}.html"
                )

    # -- sampling helpers ----------------------------------------------------------------
    def _sample_one(self, pool: Sequence[str]) -> Optional[str]:
        if not pool:
            return None
        return pool[int(self.rng.integers(len(pool)))]

    def _sample(self, pool: Sequence[str], k: int) -> list[str]:
        if not pool or k <= 0:
            return []
        k = min(k, len(pool))
        indices = self.rng.choice(len(pool), size=k, replace=False)
        return [pool[i] for i in indices]
