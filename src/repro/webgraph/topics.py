"""Topic trees for the synthetic web (the role Yahoo! plays in the paper).

A :class:`TopicNode` tree describes the ground-truth topics that pages of
the synthetic web are generated from.  The same tree is exported to the
Focus system's :mod:`repro.taxonomy` (with 16-bit class ids, as in the
paper) — but the Focus system never sees a page's ground-truth topic,
only its generated text, exactly as a real crawler only sees HTML.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

ROOT_NAME = "root"


@dataclass
class TopicNode:
    """A node in the ground-truth topic tree."""

    name: str
    children: list["TopicNode"] = field(default_factory=list)
    parent: Optional["TopicNode"] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        for child in self.children:
            child.parent = self

    # -- structure -----------------------------------------------------------
    def add_child(self, name: str) -> "TopicNode":
        child = TopicNode(name, parent=self)
        self.children.append(child)
        return child

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def path(self) -> str:
        """Slash-joined path excluding the root (the root's path is '')."""
        parts = []
        node: Optional[TopicNode] = self
        while node is not None and node.parent is not None:
            parts.append(node.name)
            node = node.parent
        return "/".join(reversed(parts))

    def walk(self) -> Iterator["TopicNode"]:
        """Pre-order traversal including self."""
        yield self
        for child in self.children:
            yield from child.walk()

    def leaves(self) -> list["TopicNode"]:
        return [node for node in self.walk() if node.is_leaf]

    def find(self, path: str) -> "TopicNode":
        """Resolve a slash path relative to this node; '' returns self."""
        if not path:
            return self
        node = self
        for part in path.split("/"):
            for child in node.children:
                if child.name == part:
                    node = child
                    break
            else:
                raise KeyError(f"no topic {path!r} under {self.path or ROOT_NAME!r}")
        return node

    def ancestors(self) -> list["TopicNode"]:
        """Ancestors from parent up to (and including) the root."""
        out = []
        node = self.parent
        while node is not None:
            out.append(node)
            node = node.parent
        return out

    def depth(self) -> int:
        return len(self.ancestors())

    def __iter__(self) -> Iterator["TopicNode"]:
        return iter(self.children)


def build_tree(spec: dict) -> TopicNode:
    """Build a tree from a nested dict spec: ``{"recreation": {"cycling": {}}}``."""
    root = TopicNode(ROOT_NAME)

    def attach(parent: TopicNode, mapping: dict) -> None:
        for name, sub in mapping.items():
            child = parent.add_child(name)
            if sub:
                attach(child, sub)

    attach(root, spec)
    return root


#: The default Yahoo!-like master category list used throughout the
#: reproduction.  Leaves mirror the paper's experimental topics
#: (cycling, mutual funds, HIV/AIDS, gardening) plus enough sibling and
#: distractor topics that classification is non-trivial, and a
#: ``first_aid`` topic whose pages co-occur near cycling pages (the
#: "citation sociology" example in §1).
DEFAULT_TOPIC_SPEC: dict = {
    "arts": {"music": {}, "photography": {}},
    "business": {
        "investment": {"mutual_funds": {}, "stocks": {}},
        "companies": {},
    },
    "computers": {"software": {}, "internet": {}},
    "health": {"hiv_aids": {}, "first_aid": {}, "nutrition": {}},
    "recreation": {
        "cycling": {},
        "running": {},
        "motorcycles": {},
        "gardening": {},
    },
    "science": {"biology": {}, "physics": {}},
    "sports": {"soccer": {}, "basketball": {}},
}


def default_topic_tree() -> TopicNode:
    """The default ground-truth topic tree."""
    return build_tree(DEFAULT_TOPIC_SPEC)


def leaf_paths(root: TopicNode) -> list[str]:
    return [leaf.path for leaf in root.leaves()]


def sibling_paths(root: TopicNode, path: str) -> list[str]:
    """Leaf paths that share a parent with *path* (excluding it)."""
    node = root.find(path)
    if node.parent is None:
        return []
    return [c.path for c in node.parent.children if c is not node and c.is_leaf]
