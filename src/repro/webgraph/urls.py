"""URL synthesis, normalisation, and hashing for the synthetic web.

The paper's schema keys pages by a 64-bit hashed ``oid`` and servers by a
``sid`` (derived from the serving IP address).  We reproduce both: every
synthetic page gets a URL of the form ``http://<host>/<path>``; ``oid``
is a 64-bit hash of the normalised URL and ``sid`` a hash of the host.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache
from urllib.parse import urlsplit, urlunsplit

#: Cache capacity for the pure URL functions below.  A crawl touches the
#: same URLs dozens of times (frontier membership, link rows, hashing);
#: the caches turn those repeats into dict hits while staying bounded.
_URL_CACHE_SIZE = 1 << 17


def _hash64(text: str) -> int:
    """Stable 64-bit hash (first 8 bytes of blake2b)."""
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


@lru_cache(maxsize=_URL_CACHE_SIZE)
def normalize_url(url: str) -> str:
    """Canonicalise a URL: lowercase scheme/host, strip fragments, default paths.

    Normalisation matters because the crawl frontier must not treat
    ``http://example.com`` and ``http://example.com/`` as two pages.
    Already-canonical URLs (every synthetic URL, and any previous output
    of this function) are recognised with a few string checks and
    returned unchanged, skipping the urlsplit/urlunsplit round-trip;
    tests assert the fast path agrees with the full parse.
    """
    if url.startswith("http://") and url == url.lower():
        rest = url[7:]
        slash = rest.find("/")
        if (
            slash > 0
            and "?" not in rest
            and "#" not in rest
            and "//" not in rest[slash:]
            and not rest[:slash].endswith(":80")
            and not url[-1].isspace()
            # urlsplit removes tab/CR/LF anywhere in the URL, so their
            # presence must force the full parse.
            and "\t" not in url
            and "\n" not in url
            and "\r" not in url
        ):
            return url
    parts = urlsplit(url.strip())
    scheme = (parts.scheme or "http").lower()
    netloc = parts.netloc.lower()
    if netloc.endswith(":80") and scheme == "http":
        netloc = netloc[: -len(":80")]
    path = parts.path or "/"
    # Collapse duplicate slashes but preserve a trailing path.
    while "//" in path:
        path = path.replace("//", "/")
    return urlunsplit((scheme, netloc, path, parts.query, ""))


@lru_cache(maxsize=_URL_CACHE_SIZE)
def url_oid(url: str) -> int:
    """64-bit object id of a page URL (the paper's ``oid``)."""
    return _hash64(normalize_url(url))


@lru_cache(maxsize=_URL_CACHE_SIZE)
def host_of(url: str) -> str:
    normalized = normalize_url(url)
    if normalized.startswith("http://"):
        # Normalised form: netloc runs to the first slash after the scheme.
        return normalized[7:].split("/", 1)[0]
    return urlsplit(normalized).netloc


@lru_cache(maxsize=_URL_CACHE_SIZE)
def server_sid(url_or_host: str) -> int:
    """64-bit server id (the paper's ``sid``), derived from the host name.

    The paper notes DNS aberrations (load balancing, multi-homing) make
    IP-based sids imperfect but tolerable; host-name hashing has the same
    role here.
    """
    host = url_or_host if "/" not in url_or_host else host_of(url_or_host)
    return _hash64(host.lower())


@dataclass(frozen=True)
class SyntheticUrl:
    """A structured synthetic URL: ``http://{host}/{path}``."""

    host: str
    path: str

    def __str__(self) -> str:
        return f"http://{self.host}/{self.path}"

    @property
    def url(self) -> str:
        return str(self)

    @property
    def oid(self) -> int:
        return url_oid(self.url)

    @property
    def sid(self) -> int:
        return server_sid(self.host)


def make_url(server_name: str, page_index: int, topic_slug: str = "page") -> SyntheticUrl:
    """Generate a synthetic URL for the *page_index*-th page on *server_name*."""
    return SyntheticUrl(host=server_name, path=f"{topic_slug}/{page_index}.html")
