"""Document generation following the paper's multinomial ("Bernoulli") model.

§2.1.1: "Having picked the length n(d), we write out the document term
after term.  Each term is picked by flipping a die with as many sides as
there are terms in the universe."  Synthetic pages are generated exactly
this way from the ground-truth topic distributions in
:mod:`repro.webgraph.vocabulary`, so the trained classifier faces data
that matches its own modelling assumptions up to estimation noise — the
right setting for reproducing the architecture-level results.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from .vocabulary import Vocabulary


@dataclass
class Document:
    """A generated page body: a bag of terms with ground-truth topic."""

    tokens: list[str]
    topic_path: str

    @property
    def length(self) -> int:
        return len(self.tokens)

    def term_frequencies(self) -> dict[str, int]:
        """The paper's ``freq(d, t)`` map."""
        return dict(Counter(self.tokens))


@dataclass
class DocumentGenerator:
    """Draws documents from topic distributions.

    ``mean_length``/``min_length`` control n(d) (drawn from a Poisson,
    clipped from below); the paper notes typical web pages carry 200–500
    terms, but the default here is smaller so laptop-scale crawls of
    thousands of pages stay fast — the classifier behaviour depends on
    the per-term statistics, not the absolute page length.
    """

    vocabulary: Vocabulary
    mean_length: int = 120
    min_length: int = 30
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def _draw_length(self) -> int:
        return max(self.min_length, int(self.rng.poisson(self.mean_length)))

    def generate(self, topic_path: str, length: Optional[int] = None) -> Document:
        """Generate a document of leaf topic *topic_path*."""
        dist = self.vocabulary.leaf_distribution(topic_path)
        n_terms = length if length is not None else self._draw_length()
        return Document(tokens=dist.sample(self.rng, n_terms), topic_path=topic_path)

    def generate_mixture(
        self,
        topic_weights: Mapping[str, float],
        primary_topic: str,
        background_weight: float = 0.0,
        length: Optional[int] = None,
    ) -> Document:
        """Generate a document mixing several topics (hub/bookmark pages).

        ``primary_topic`` is recorded as the ground-truth label (hubs about
        cycling are still cycling pages even if they mention other topics).
        """
        dist = self.vocabulary.blended_distribution(topic_weights, background_weight)
        n_terms = length if length is not None else self._draw_length()
        return Document(tokens=dist.sample(self.rng, n_terms), topic_path=primary_topic)

    def generate_background(self, length: Optional[int] = None) -> Document:
        """Generate an off-topic page drawn purely from the background vocabulary."""
        n_terms = length if length is not None else self._draw_length()
        return Document(
            tokens=self.vocabulary.background.sample(self.rng, n_terms),
            topic_path="",
        )

    def generate_examples(
        self, topic_path: str, count: int, length: Optional[int] = None
    ) -> list[Document]:
        """Generate *count* training examples for a topic (the paper's D(c)).

        These are generated independently of the web graph's pages, so the
        classifier is never trained on pages it will later judge — the
        evaluation-methodology point §3.4 is careful about.
        """
        return [self.generate(topic_path, length) for _ in range(count)]
