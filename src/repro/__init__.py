"""repro: reproduction of "Distributed Hypertext Resource Discovery Through Examples".

Chakrabarti, van den Berg, Dom — VLDB 1999 (the "Focus" project).

The package is organised bottom-up:

* :mod:`repro.minidb` — a small relational engine (the paper's DB2 role).
* :mod:`repro.webgraph` — a synthetic distributed hypertext (the paper's Web role).
* :mod:`repro.taxonomy` — the topic tree and example documents.
* :mod:`repro.classifier` — hierarchical naive Bayes, SingleProbe and BulkProbe.
* :mod:`repro.distiller` — relevance-weighted HITS, in-memory and join-based.
* :mod:`repro.crawler` — focused and unfocused crawlers, frontier policies, monitoring.
* :mod:`repro.core` — the FocusSystem facade, schemata, metrics, configuration.
* :mod:`repro.service` — the multi-tenant crawl service (job manager + HTTP API).
* :mod:`repro.experiments` — regeneration of every figure in the paper's evaluation.

This top-level module is the supported public surface: everything an
application (or the bundled ``examples/``) needs imports from ``repro``
directly.

Quickstart::

    from repro import FocusSystem, FocusConfig

    system = FocusSystem.bootstrap(FocusConfig(good_topics=["recreation/cycling"]))
    system.train()
    result = system.crawl(max_pages=500)
    print(result.harvest_rate())

Crawl as a service::

    from repro import CrawlService, JobManager, JobSpec

    with CrawlService(JobManager(system)) as service:
        ...  # POST JobSpec.to_dict() to http://127.0.0.1:{service.port}/jobs

Record a real-web crawl once, replay it deterministically forever::

    # First run records every fetch into the cassette; later runs
    # (cassette_mode="auto") replay it with no network stack at all.
    result = system.start(JobSpec(cassette_path="crawl.jsonl")).run()
"""

from .core.checkpoint import CheckpointManager, CoordinatorManifest, CrawlCheckpoint
from .core.config import FocusConfig, JobSpec
from .core.schema import create_focus_database
from .core.system import CrawlHandle, CrawlResult, FocusSystem
from .crawler.engine import CrawlTrace
from .crawler.focused import CrawlerConfig
from .crawler.monitor import CrawlMonitor
from .crawler.policies import CrawlOrdering, FetchPolicy
from .crawler.sharded import ShardedCrawler, build_sharded_crawler
from .experiments.workloads import build_crawl_workload
from .minidb import Database, ExplainResult, Plan, Query, StorageConfig
from .service import CrawlService, JobManager, SharedFetchPool, serve
from .webgraph.cassette import (
    CassetteError,
    CassetteMismatch,
    RecordingTransport,
    ReplayTransport,
    lint_cassette,
)
from .webgraph.graph import WebConfig
from .webgraph.transport import HttpTransport, TransportUnavailable

__version__ = "0.1.0"

__all__ = [
    "CassetteError",
    "CassetteMismatch",
    "CheckpointManager",
    "CoordinatorManifest",
    "CrawlCheckpoint",
    "CrawlHandle",
    "CrawlMonitor",
    "CrawlOrdering",
    "CrawlResult",
    "CrawlService",
    "CrawlTrace",
    "CrawlerConfig",
    "Database",
    "ExplainResult",
    "FetchPolicy",
    "FocusConfig",
    "FocusSystem",
    "HttpTransport",
    "JobManager",
    "JobSpec",
    "Plan",
    "Query",
    "RecordingTransport",
    "ReplayTransport",
    "ShardedCrawler",
    "SharedFetchPool",
    "StorageConfig",
    "TransportUnavailable",
    "WebConfig",
    "build_crawl_workload",
    "build_sharded_crawler",
    "create_focus_database",
    "lint_cassette",
    "serve",
    "__version__",
]
