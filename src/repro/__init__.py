"""repro: reproduction of "Distributed Hypertext Resource Discovery Through Examples".

Chakrabarti, van den Berg, Dom — VLDB 1999 (the "Focus" project).

The package is organised bottom-up:

* :mod:`repro.minidb` — a small relational engine (the paper's DB2 role).
* :mod:`repro.webgraph` — a synthetic distributed hypertext (the paper's Web role).
* :mod:`repro.taxonomy` — the topic tree and example documents.
* :mod:`repro.classifier` — hierarchical naive Bayes, SingleProbe and BulkProbe.
* :mod:`repro.distiller` — relevance-weighted HITS, in-memory and join-based.
* :mod:`repro.crawler` — focused and unfocused crawlers, frontier policies, monitoring.
* :mod:`repro.core` — the FocusSystem facade, schemata, metrics, configuration.
* :mod:`repro.experiments` — regeneration of every figure in the paper's evaluation.

Quickstart::

    from repro import FocusSystem, FocusConfig

    system = FocusSystem.bootstrap(FocusConfig(good_topics=["recreation/cycling"]))
    system.train()
    result = system.crawl(max_pages=500)
    print(result.harvest_rate())
"""

from .core.config import FocusConfig
from .core.system import CrawlResult, FocusSystem

__version__ = "0.1.0"

__all__ = ["CrawlResult", "FocusConfig", "FocusSystem", "__version__"]
