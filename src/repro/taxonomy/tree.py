"""The user-facing topic taxonomy (the paper's class tree C).

The paper's problem formulation (§1.1): a tree-shaped topic directory C
(like Yahoo!), a set of example pages D(c) per node, and a user-chosen
subset of *good* topics C*.  Topics in the subtree of a good topic are
*subsumed*; ancestors of good topics are *path* topics; everything else
is *null* (uninteresting for this crawl, but re-markable for another).

Class ids are 16-bit integers, as in the paper; the root always has
cid 1 and, by definition, Pr[root | d] = 1 for every document.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Sequence

from repro.webgraph.topics import TopicNode

ROOT_CID = 1


class NodeMark(enum.Enum):
    """The paper's node markings (Figure 1: ``type`` column of TAXONOMY)."""

    NULL = "null"
    GOOD = "good"
    PATH = "path"
    SUBSUMED = "subsumed"


@dataclass
class TaxonomyNode:
    """One class node: 16-bit cid, name, tree links, and its mark."""

    cid: int
    name: str
    path: str
    parent: Optional["TaxonomyNode"] = field(default=None, repr=False)
    children: list["TaxonomyNode"] = field(default_factory=list)
    mark: NodeMark = NodeMark.NULL

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def ancestors(self) -> list["TaxonomyNode"]:
        out = []
        node = self.parent
        while node is not None:
            out.append(node)
            node = node.parent
        return out

    def subtree(self) -> Iterator["TaxonomyNode"]:
        yield self
        for child in self.children:
            yield from child.subtree()

    def depth(self) -> int:
        return len(self.ancestors())


class TopicTaxonomy:
    """The class tree with cid assignment, marking, and lookups."""

    def __init__(self, root: TaxonomyNode) -> None:
        self.root = root
        self._by_cid: Dict[int, TaxonomyNode] = {}
        self._by_path: Dict[str, TaxonomyNode] = {}
        for node in root.subtree():
            self._by_cid[node.cid] = node
            self._by_path[node.path] = node

    # -- construction ------------------------------------------------------------
    @classmethod
    def from_topic_tree(cls, topic_root: TopicNode) -> "TopicTaxonomy":
        """Mirror a ground-truth :class:`~repro.webgraph.topics.TopicNode` tree.

        The taxonomy copies only the tree *structure* and names — never any
        page's ground-truth label.  cids are assigned in BFS order starting
        at :data:`ROOT_CID` so parent cids are always smaller than child
        cids (a property the bulk classifier's topological evaluation uses).
        """
        root = TaxonomyNode(cid=ROOT_CID, name="root", path="")
        next_cid = ROOT_CID + 1
        queue: list[tuple[TopicNode, TaxonomyNode]] = [(topic_root, root)]
        while queue:
            source, target = queue.pop(0)
            for child in source.children:
                node = TaxonomyNode(
                    cid=next_cid,
                    name=child.name,
                    path=child.path,
                    parent=target,
                )
                next_cid += 1
                if next_cid >= 1 << 16:
                    raise ValueError("taxonomy exceeds 16-bit class id space")
                target.children.append(node)
                queue.append((child, node))
        return cls(root)

    @classmethod
    def from_spec(cls, spec: dict) -> "TopicTaxonomy":
        """Build directly from a nested dict spec (see :func:`repro.webgraph.topics.build_tree`)."""
        from repro.webgraph.topics import build_tree

        return cls.from_topic_tree(build_tree(spec))

    # -- lookups ------------------------------------------------------------------
    def node(self, cid: int) -> TaxonomyNode:
        try:
            return self._by_cid[cid]
        except KeyError:
            raise KeyError(f"no class with cid {cid}") from None

    def by_path(self, path: str) -> TaxonomyNode:
        try:
            return self._by_path[path]
        except KeyError:
            raise KeyError(f"no class with path {path!r}") from None

    def __contains__(self, path: str) -> bool:
        return path in self._by_path

    def __len__(self) -> int:
        return len(self._by_cid)

    def nodes(self) -> list[TaxonomyNode]:
        return list(self.root.subtree())

    def leaves(self) -> list[TaxonomyNode]:
        return [n for n in self.nodes() if n.is_leaf]

    def internal_nodes(self) -> list[TaxonomyNode]:
        return [n for n in self.nodes() if not n.is_leaf]

    # -- marking -------------------------------------------------------------------
    def mark_good(self, paths: Sequence[str]) -> None:
        """Mark *paths* good; ancestors become path topics, descendants subsumed.

        Matches the formulation's constraint that no good topic is an
        ancestor of another good topic; violating inputs raise ValueError.
        """
        nodes = [self.by_path(p) for p in paths]
        for i, a in enumerate(nodes):
            for b in nodes[i + 1 :]:
                if a in b.ancestors() or b in a.ancestors():
                    raise ValueError(
                        f"good topics may not be nested: {a.path!r} / {b.path!r}"
                    )
        for node in self.nodes():
            node.mark = NodeMark.NULL
        for node in nodes:
            node.mark = NodeMark.GOOD
            for ancestor in node.ancestors():
                ancestor.mark = NodeMark.PATH
            for descendant in node.subtree():
                if descendant is not node:
                    descendant.mark = NodeMark.SUBSUMED

    def add_good(self, path: str) -> None:
        """Mark one more topic good without clearing existing marks.

        This is the §3.7 stagnation fix: "One update statement marking the
        ancestor good fixed this stagnation problem."  When the new good
        topic is an ancestor of an existing good topic, the old good topic
        becomes subsumed.
        """
        node = self.by_path(path)
        node.mark = NodeMark.GOOD
        for descendant in node.subtree():
            if descendant is not node and descendant.mark in (NodeMark.GOOD, NodeMark.NULL, NodeMark.PATH):
                descendant.mark = NodeMark.SUBSUMED
        for ancestor in node.ancestors():
            if ancestor.mark is NodeMark.NULL:
                ancestor.mark = NodeMark.PATH

    def good_nodes(self) -> list[TaxonomyNode]:
        return [n for n in self.nodes() if n.mark is NodeMark.GOOD]

    def path_nodes(self) -> list[TaxonomyNode]:
        return [n for n in self.nodes() if n.mark is NodeMark.PATH or n.is_root]

    def good_paths(self) -> list[str]:
        return [n.path for n in self.good_nodes()]

    def is_good_or_subsumed(self, cid: int) -> bool:
        node = self.node(cid)
        return node.mark in (NodeMark.GOOD, NodeMark.SUBSUMED)

    def good_ancestor_of(self, cid: int) -> Optional[TaxonomyNode]:
        """The good node on or above *cid*, if any (used by the hard focus rule)."""
        node = self.node(cid)
        if node.mark is NodeMark.GOOD:
            return node
        for ancestor in node.ancestors():
            if ancestor.mark is NodeMark.GOOD:
                return ancestor
        return None

    # -- evaluation order -------------------------------------------------------------
    def evaluation_frontier(self) -> list[TaxonomyNode]:
        """Internal nodes that must be evaluated to score the good nodes.

        These are the root plus every path node — the paper evaluates
        BulkProbe "at all path nodes in topological order" (Figure 3
        caption).  Returned in topological (parent before child) order.
        """
        wanted = {n.cid for n in self.path_nodes()}
        wanted.add(ROOT_CID)
        ordered = [n for n in self.nodes() if n.cid in wanted and not n.is_leaf]
        return sorted(ordered, key=lambda n: n.depth())
