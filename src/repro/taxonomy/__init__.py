"""taxonomy: the class tree C, node marking, and example documents D(c)."""

from .examples import (
    ExampleDocument,
    ExampleStore,
    examples_from_documents,
    generate_examples,
)
from .tree import ROOT_CID, NodeMark, TaxonomyNode, TopicTaxonomy

__all__ = [
    "ExampleDocument",
    "ExampleStore",
    "NodeMark",
    "ROOT_CID",
    "TaxonomyNode",
    "TopicTaxonomy",
    "examples_from_documents",
    "generate_examples",
]
