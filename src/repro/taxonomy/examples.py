"""Example documents per taxonomy node (the paper's D(c)).

In the paper the user provides example pages for each topic by hand
(e.g. pages catalogued under a Yahoo! node).  Here examples are drawn
from the synthetic web's ground-truth topic distributions — importantly,
*not* from the pages of the web graph itself, so the classifier is never
trained on pages it will later judge (the methodological point §3.4 is
careful about).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.webgraph.documents import DocumentGenerator
from repro.webgraph.graph import WebGraph

from .tree import TopicTaxonomy


@dataclass
class ExampleDocument:
    """One training example: a bag of terms labelled with a leaf class cid."""

    cid: int
    tokens: List[str]

    def term_frequencies(self) -> Dict[str, int]:
        return dict(Counter(self.tokens))


@dataclass
class ExampleStore:
    """Training examples grouped by leaf class."""

    by_cid: Dict[int, List[ExampleDocument]] = field(default_factory=dict)

    def add(self, document: ExampleDocument) -> None:
        self.by_cid.setdefault(document.cid, []).append(document)

    def for_class(self, cid: int) -> List[ExampleDocument]:
        return list(self.by_cid.get(cid, ()))

    def for_subtree(self, taxonomy: TopicTaxonomy, cid: int) -> List[ExampleDocument]:
        """All examples under the subtree rooted at *cid* (hierarchical D(c))."""
        out: List[ExampleDocument] = []
        for node in taxonomy.node(cid).subtree():
            out.extend(self.by_cid.get(node.cid, ()))
        return out

    def total(self) -> int:
        return sum(len(docs) for docs in self.by_cid.values())

    def classes(self) -> List[int]:
        return sorted(self.by_cid)


def generate_examples(
    taxonomy: TopicTaxonomy,
    web: WebGraph,
    per_leaf: int = 30,
    seed: int = 13,
    leaf_paths: Optional[Sequence[str]] = None,
) -> ExampleStore:
    """Generate *per_leaf* example documents for each leaf topic of the taxonomy.

    Examples come from the ground-truth topic term distributions of *web*
    (its :class:`~repro.webgraph.vocabulary.Vocabulary`), using an
    independent random stream so they never coincide with crawled pages.
    ``leaf_paths`` restricts generation to a subset of leaves (e.g. only
    topics relevant to the current crawl, to keep training fast).
    """
    rng = np.random.default_rng(seed)
    generator = DocumentGenerator(
        web.vocabulary, mean_length=web.config.mean_doc_length, rng=rng
    )
    store = ExampleStore()
    wanted = set(leaf_paths) if leaf_paths is not None else None
    for leaf in taxonomy.leaves():
        if wanted is not None and leaf.path not in wanted:
            continue
        if leaf.path not in web.vocabulary.topic_terms:
            continue
        for document in generator.generate_examples(leaf.path, per_leaf):
            store.add(ExampleDocument(cid=leaf.cid, tokens=document.tokens))
    return store


def examples_from_documents(
    taxonomy: TopicTaxonomy, labelled: Iterable[tuple[str, Sequence[str]]]
) -> ExampleStore:
    """Build an ExampleStore from explicit ``(topic_path, tokens)`` pairs.

    This is the path a real deployment would use: the user hands the
    system example pages for each topic of interest.
    """
    store = ExampleStore()
    for path, tokens in labelled:
        node = taxonomy.by_path(path)
        store.add(ExampleDocument(cid=node.cid, tokens=list(tokens)))
    return store
