"""Run every experiment and print the paper-style report.

Usage (after ``pip install -e .``)::

    python -m repro.experiments.runner            # everything
    python -m repro.experiments.runner fig5 fig8  # a subset

The same entry points are used by the pytest benchmarks in
``benchmarks/``; this module just strings them together and prints the
rows each figure reports.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Iterable, List

from . import fig5_harvest, fig6_coverage, fig7_distance, fig8_io
from .workloads import build_crawl_workload

ALL_EXPERIMENTS = ("fig5", "fig6", "fig7", "fig8", "stagnation")


def run_experiments(
    names: Iterable[str] = ALL_EXPERIMENTS,
    seed: int = 7,
    scale: float = 1.0,
) -> List[str]:
    """Run the named experiments and return the combined report lines."""
    names = list(names)
    lines: List[str] = []
    shared_workload = None
    if any(name in names for name in ("fig5", "fig6", "fig7")):
        shared_workload = build_crawl_workload(seed=seed, scale=scale)

    if "fig5" in names:
        start = time.perf_counter()
        result = fig5_harvest.run_harvest_experiment(workload=shared_workload)
        lines.extend(fig5_harvest.print_report(result))
        lines.append(f"(fig5 ran in {time.perf_counter() - start:.1f}s)")
        lines.append("")
    if "stagnation" in names:
        start = time.perf_counter()
        result = fig5_harvest.run_stagnation_experiment(seed=seed, scale=min(scale, 0.6))
        lines.append("# §3.7 stagnation scenario (mutual funds)")
        lines.append(
            f"before fix: harvest {result.before_harvest:.3f}, dominated by {result.before_dominant_topic!r}"
        )
        lines.append(f"after marking the parent topic good: harvest {result.after_harvest:.3f}")
        lines.append(f"(stagnation ran in {time.perf_counter() - start:.1f}s)")
        lines.append("")
    if "fig6" in names:
        start = time.perf_counter()
        result = fig6_coverage.run_coverage_experiment(workload=shared_workload)
        lines.extend(fig6_coverage.print_report(result))
        lines.append(f"(fig6 ran in {time.perf_counter() - start:.1f}s)")
        lines.append("")
    if "fig7" in names:
        start = time.perf_counter()
        result = fig7_distance.run_distance_experiment(workload=shared_workload)
        lines.extend(fig7_distance.print_report(result))
        lines.append(f"(fig7 ran in {time.perf_counter() - start:.1f}s)")
        lines.append("")
    if "fig8" in names:
        start = time.perf_counter()
        comparison = fig8_io.run_classifier_comparison(seed=seed)
        memory_points = fig8_io.run_memory_scaling(seed=seed)
        output_points = fig8_io.run_output_scaling(seed=seed)
        distillation = fig8_io.run_distillation_comparison(seed=seed)
        lines.extend(fig8_io.print_report(comparison, memory_points, output_points, distillation))
        lines.append(f"(fig8 ran in {time.perf_counter() - start:.1f}s)")
        lines.append("")
    return lines


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        default=list(ALL_EXPERIMENTS),
        choices=list(ALL_EXPERIMENTS),
        help="which experiments to run (default: all)",
    )
    parser.add_argument("--seed", type=int, default=7, help="workload random seed")
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="scale factor for the synthetic web (smaller = faster, less faithful)",
    )
    args = parser.parse_args(argv)
    for line in run_experiments(args.experiments or ALL_EXPERIMENTS, args.seed, args.scale):
        print(line)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    sys.exit(main())
