"""Figure 6 — coverage/robustness: does the crawler find the same resources
when started from a completely different seed set?

Paper protocol (§3.5): build a *reference crawl* from seed set S1; pick a
disjoint seed set S2 and run a *test crawl*, plotting along the way the
fraction of the reference crawl's relevant URLs (Figure 6a) and servers
(Figure 6b) that the test crawl has visited.  The paper reports the test
crawl reaching ≈83 % of the relevant URLs and ≈90 % of the servers within
an hour of crawling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core import metrics
from repro.core.metrics import CoveragePoint
from repro.core.system import CrawlResult

from .workloads import CrawlWorkload, build_crawl_workload


@dataclass
class CoverageExperimentResult:
    """Outputs backing both panels of Figure 6."""

    points: List[CoveragePoint]
    final_url_coverage: float
    final_server_coverage: float
    reference_relevant_urls: int
    reference_result: CrawlResult = field(repr=False)
    test_result: CrawlResult = field(repr=False)


def run_coverage_experiment(
    workload: Optional[CrawlWorkload] = None,
    reference_pages: int = 900,
    test_pages: int = 900,
    seed_size: int = 20,
    relevance_threshold: float = float(np.exp(-1.0)),
    seed: int = 7,
    scale: float = 1.0,
) -> CoverageExperimentResult:
    """Run the reference/test crawl pair and compute the coverage curves.

    ``relevance_threshold`` mirrors the paper's log R(u) > −1 cut for
    counting a reference URL as relevant.
    """
    workload = workload or build_crawl_workload(seed=seed, scale=scale)
    system = workload.system
    web = workload.web

    seeds_reference, seeds_test = web.disjoint_seed_sets(workload.good_topic, size=seed_size)
    reference = system.crawl(max_pages=reference_pages, seeds=seeds_reference)
    test = system.crawl(max_pages=test_pages, seeds=seeds_test, fetch_failure_seed=1)

    # The relevant set comes from the reference crawl's CRAWL table (one
    # SQL query over the store) rather than a trace walk; the trace-based
    # helper remains as its pinned-equal twin.
    reference_urls = metrics.relevant_reference_set_db(
        reference.database, relevance_threshold
    )
    points = metrics.coverage_series(
        reference.trace, test.trace, relevance_threshold, reference_urls=reference_urls
    )
    if not points:
        raise RuntimeError("reference crawl found no relevant URLs; cannot measure coverage")
    return CoverageExperimentResult(
        points=points,
        final_url_coverage=points[-1].url_coverage,
        final_server_coverage=points[-1].server_coverage,
        reference_relevant_urls=len(reference_urls),
        reference_result=reference,
        test_result=test,
    )


def print_report(result: CoverageExperimentResult, every: int = 100) -> List[str]:
    """Figure 6 as printable rows (``#URLs  url-coverage  server-coverage``)."""
    lines = ["# Figure 6: coverage of a reference crawl by a disjointly-seeded test crawl"]
    lines.append(f"{'#URLs':>8}  {'URL cov.':>9}  {'server cov.':>11}")
    for i in range(every - 1, len(result.points), every):
        point = result.points[i]
        lines.append(
            f"{point.pages_crawled:>8}  {point.url_coverage:>9.3f}  {point.server_coverage:>11.3f}"
        )
    lines.append(
        f"final: {result.final_url_coverage:.0%} of {result.reference_relevant_urls} relevant URLs, "
        f"{result.final_server_coverage:.0%} of their servers"
    )
    return lines
