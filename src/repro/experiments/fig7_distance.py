"""Figure 7 — evidence of large-radius exploration.

Paper protocol (§3.6): after a fixed crawl budget, take the top hubs and
authorities found by distillation and plot a histogram of their shortest
*crawl-found* link distance from the seed set.  If the best resources sat
next to the seeds, goal-directed exploration would add little; the paper
instead finds excellent resources from a couple of links up to 12–15
links away, and lists the top cycling hubs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.system import CrawlResult

from .workloads import CrawlWorkload, build_crawl_workload


@dataclass
class DistanceExperimentResult:
    """Outputs backing Figure 7."""

    histogram: Dict[int, int]
    top_hubs: List[tuple[str, float]]
    top_authorities: List[tuple[str, float]]
    max_distance: int
    mass_beyond_two: float
    crawl_result: CrawlResult = field(repr=False)


def run_distance_experiment(
    workload: Optional[CrawlWorkload] = None,
    max_pages: int = 1500,
    top_authorities: int = 100,
    top_hubs: int = 16,
    seed: int = 7,
    scale: float = 1.0,
) -> DistanceExperimentResult:
    """Crawl, distill, and histogram the seed-to-authority distances."""
    workload = workload or build_crawl_workload(seed=seed, scale=scale, max_pages=max_pages)
    result = workload.system.crawl(max_pages=max_pages)
    histogram = result.authority_distance_histogram(top_authorities)
    reachable = {d: n for d, n in histogram.items() if d >= 0}
    total = sum(reachable.values()) or 1
    beyond_two = sum(n for d, n in reachable.items() if d > 2) / total
    return DistanceExperimentResult(
        histogram=histogram,
        top_hubs=result.top_hubs(top_hubs),
        top_authorities=result.top_authorities(top_authorities)[:top_hubs],
        max_distance=max(reachable) if reachable else -1,
        mass_beyond_two=beyond_two,
        crawl_result=result,
    )


def print_report(result: DistanceExperimentResult) -> List[str]:
    """Figure 7 as printable rows: the distance histogram plus the hub list."""
    lines = ["# Figure 7: shortest crawl-found distance from the seed set to the top authorities"]
    lines.append(f"{'distance':>9}  {'frequency':>9}")
    for distance, count in sorted(result.histogram.items()):
        label = "unreached" if distance < 0 else str(distance)
        lines.append(f"{label:>9}  {count:>9}")
    lines.append(
        f"max distance {result.max_distance}; "
        f"{result.mass_beyond_two:.0%} of authorities more than 2 links from the seeds"
    )
    lines.append("")
    lines.append("# Top hubs found after the crawl (paper Figure 7, right panel)")
    for url, score in result.top_hubs:
        lines.append(f"  {score:.4f}  {url}")
    return lines
