"""experiments: regeneration of every figure in the paper's evaluation (§3).

* :mod:`repro.experiments.fig5_harvest` — harvest rate, focused vs unfocused, plus the §3.7 stagnation scenario.
* :mod:`repro.experiments.fig6_coverage` — URL and server coverage from disjoint seed sets.
* :mod:`repro.experiments.fig7_distance` — distance histogram of the top authorities and the hub list.
* :mod:`repro.experiments.fig8_io` — classifier and distiller I/O performance (all four panels).
* :mod:`repro.experiments.runner` — CLI that prints every figure's rows.
"""

from .workloads import (
    CYCLING,
    FIRST_AID,
    INVESTMENT,
    MUTUAL_FUNDS,
    CrawlWorkload,
    build_crawl_web,
    build_crawl_workload,
    crawl_focus_config,
    crawl_web_config,
    io_web_config,
)

__all__ = [
    "CYCLING",
    "CrawlWorkload",
    "FIRST_AID",
    "INVESTMENT",
    "MUTUAL_FUNDS",
    "build_crawl_web",
    "build_crawl_workload",
    "crawl_focus_config",
    "crawl_web_config",
    "io_web_config",
]
