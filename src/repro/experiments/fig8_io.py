"""Figure 8 — I/O performance of the database-resident classifier and distiller.

Four panels are reproduced:

* **8(a)** classification running time: ``SingleProbe`` over the per-node
  STAT tables ("SQL"), ``SingleProbe`` over the packed BLOB table
  ("BLOB"), and ``BulkProbe`` ("CLI"), with the per-variant cost broken
  down into document scanning, statistics probing / joining, and CPU.
* **8(b)** memory scaling: how each variant's cost responds to the
  buffer-pool size.
* **8(c)** output-size scaling: BulkProbe cost against |children|·|docs|.
* **8(d)** distillation running time: per-edge index-lookup distillation
  vs. the set-oriented join plan of Figure 4.

Absolute 1999 milliseconds are meaningless here; the comparable quantity
is the *simulated I/O cost* maintained by the minidb buffer pool
(physical reads/writes plus a small charge per logical page access),
reported as "relative time" exactly as the paper does.  Wall-clock time
is also recorded for reference.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.classifier.bulk_probe import BulkProbeClassifier
from repro.classifier.single_probe import SingleProbeClassifier
from repro.classifier.tokenizer import TermFrequencies, term_frequencies
from repro.classifier.training import ClassifierTrainer, ModelInstaller
from repro.core.schema import create_crawl_tables
from repro.distiller.db_distiller import IndexLookupDistiller, JoinDistiller
from repro.distiller.hits import weighted_hits
from repro.distiller.weights import Link
from repro.minidb import Database
from repro.taxonomy.examples import generate_examples
from repro.taxonomy.tree import TopicTaxonomy
from repro.webgraph.graph import SyntheticWebBuilder, WebGraph

from .workloads import CYCLING, distillation_web_config, io_web_config


# ---------------------------------------------------------------------------
# Shared fixtures
# ---------------------------------------------------------------------------


@dataclass
class ClassifierFixture:
    """A trained classifier installed in a database, plus a test batch."""

    database: Database
    taxonomy: TopicTaxonomy
    web: WebGraph
    documents: Dict[int, TermFrequencies]

    def reset_measurement(self) -> None:
        """Cold-start the cache and zero the I/O counters before a run."""
        self.database.clear_cache()
        self.database.reset_stats()


def build_classifier_fixture(
    n_documents: int = 150,
    buffer_pool_pages: int = 64,
    seed: int = 7,
    examples_per_leaf: int = 40,
    max_features: int = 4000,
) -> ClassifierFixture:
    """Build the Figure 8(a–c) fixture: model tables plus a loaded DOCUMENT table.

    ``max_features`` is raised well beyond the crawling default so the
    per-node statistics tables are large relative to the buffer pool, as
    the paper's Yahoo!-scale models were.
    """
    from repro.classifier.features import FeatureSelectionConfig
    from repro.classifier.training import TrainingConfig

    web = SyntheticWebBuilder(io_web_config(seed)).build()
    taxonomy = TopicTaxonomy.from_topic_tree(web.topic_tree)
    taxonomy.mark_good([CYCLING])
    examples = generate_examples(taxonomy, web, per_leaf=examples_per_leaf, seed=seed + 1)
    training = TrainingConfig(features=FeatureSelectionConfig(max_features=max_features))
    model = ClassifierTrainer(taxonomy, examples, training).train()

    database = Database(buffer_pool_pages=buffer_pool_pages)
    ModelInstaller(database).install(model)

    rng = np.random.default_rng(seed + 2)
    urls = web.urls()
    chosen = rng.choice(len(urls), size=min(n_documents, len(urls)), replace=False)
    documents = {
        did: term_frequencies(web.page(urls[i]).tokens) for did, i in enumerate(chosen)
    }
    # The DOCUMENT table is populated once — the paper counts it as part of
    # ordinary keyword indexing, shared by every variant.
    BulkProbeClassifier(database, taxonomy).load_documents(documents)
    return ClassifierFixture(database=database, taxonomy=taxonomy, web=web, documents=documents)


# ---------------------------------------------------------------------------
# Figure 8(a): classification running time by variant
# ---------------------------------------------------------------------------


@dataclass
class VariantMeasurement:
    """One bar of Figure 8(a)."""

    variant: str
    documents: int
    wall_seconds: float
    doc_scan_cost: float
    probe_cost: float
    total_io_cost: float
    relevance_by_did: Dict[int, float] = field(repr=False, default_factory=dict)

    @property
    def cost_per_document(self) -> float:
        return self.total_io_cost / max(self.documents, 1)


def measure_classifier_variant(fixture: ClassifierFixture, variant: str) -> VariantMeasurement:
    """Measure one classification variant over the fixture's batch.

    ``variant`` is ``"sql"`` (SingleProbe over STAT), ``"blob"``
    (SingleProbe over BLOB), or ``"bulk"`` (BulkProbe, the paper's CLI bar).
    """
    fixture.reset_measurement()
    dids = sorted(fixture.documents)
    start = time.perf_counter()
    if variant in ("sql", "blob"):
        classifier = SingleProbeClassifier(
            fixture.database, fixture.taxonomy, mode="stat" if variant == "sql" else "blob"
        )
        results = classifier.classify_batch(dids)
        doc_scan = classifier.cost.doc_scan_cost
        probe = classifier.cost.probe_cost
    elif variant == "bulk":
        classifier = BulkProbeClassifier(fixture.database, fixture.taxonomy)
        results = classifier.classify_batch(dids)
        doc_scan = classifier.cost.doc_scan_cost
        probe = classifier.cost.join_cost
    else:
        raise ValueError(f"unknown classifier variant {variant!r}")
    wall = time.perf_counter() - start
    total = fixture.database.stats.simulated_cost()
    return VariantMeasurement(
        variant=variant,
        documents=len(dids),
        wall_seconds=wall,
        doc_scan_cost=doc_scan,
        probe_cost=probe,
        total_io_cost=total,
        relevance_by_did={did: result.relevance for did, result in results.items()},
    )


@dataclass
class ClassifierComparisonResult:
    """Figure 8(a): all three bars plus agreement checks."""

    measurements: Dict[str, VariantMeasurement]

    def speedup(self, slow: str = "sql", fast: str = "bulk") -> float:
        return self.measurements[slow].total_io_cost / max(
            self.measurements[fast].total_io_cost, 1e-12
        )

    def max_relevance_disagreement(self) -> float:
        variants = list(self.measurements.values())
        worst = 0.0
        baseline = variants[0].relevance_by_did
        for other in variants[1:]:
            for did, value in baseline.items():
                worst = max(worst, abs(value - other.relevance_by_did[did]))
        return worst


def run_classifier_comparison(
    fixture: Optional[ClassifierFixture] = None,
    n_documents: int = 150,
    buffer_pool_pages: int = 64,
    seed: int = 7,
) -> ClassifierComparisonResult:
    fixture = fixture or build_classifier_fixture(n_documents, buffer_pool_pages, seed)
    measurements = {
        variant: measure_classifier_variant(fixture, variant)
        for variant in ("sql", "blob", "bulk")
    }
    return ClassifierComparisonResult(measurements=measurements)


# ---------------------------------------------------------------------------
# Figure 8(b): memory (buffer-pool) scaling
# ---------------------------------------------------------------------------


@dataclass
class MemoryScalingPoint:
    buffer_pool_pages: int
    single_probe_cost: float
    bulk_probe_cost: float


def run_memory_scaling(
    pool_sizes: Sequence[int] = (16, 32, 64, 128, 256, 512),
    n_documents: int = 120,
    seed: int = 7,
) -> List[MemoryScalingPoint]:
    """Sweep the buffer-pool size and measure SingleProbe (BLOB) vs BulkProbe."""
    fixture = build_classifier_fixture(n_documents, max(pool_sizes), seed)
    points: List[MemoryScalingPoint] = []
    for pool in pool_sizes:
        fixture.database.resize_buffer_pool(pool)
        single = measure_classifier_variant(fixture, "blob")
        bulk = measure_classifier_variant(fixture, "bulk")
        points.append(
            MemoryScalingPoint(
                buffer_pool_pages=pool,
                single_probe_cost=single.total_io_cost,
                bulk_probe_cost=bulk.total_io_cost,
            )
        )
    fixture.database.resize_buffer_pool(max(pool_sizes))
    return points


# ---------------------------------------------------------------------------
# Figure 8(c): output-size scaling of BulkProbe
# ---------------------------------------------------------------------------


@dataclass
class OutputScalingPoint:
    documents: int
    children: int
    output_size: int
    bulk_cost: float


def run_output_scaling(
    document_counts: Sequence[int] = (25, 50, 100, 200),
    buffer_pool_pages: int = 256,
    seed: int = 7,
) -> List[OutputScalingPoint]:
    """Measure BulkProbe cost against |children| × |documents| (Figure 8c)."""
    points: List[OutputScalingPoint] = []
    fixture = build_classifier_fixture(max(document_counts), buffer_pool_pages, seed)
    all_dids = sorted(fixture.documents)
    bulk = BulkProbeClassifier(fixture.database, fixture.taxonomy)
    frontier = fixture.taxonomy.evaluation_frontier()
    for count in document_counts:
        subset = {did: fixture.documents[did] for did in all_dids[:count]}
        bulk.load_documents(subset)
        for node in frontier:
            children = len(fixture.taxonomy.node(node.cid).children)
            fixture.reset_measurement()
            start_cost = fixture.database.stats.simulated_cost()
            bulk.bulk_conditional_log_likelihoods(node.cid)
            cost = fixture.database.stats.simulated_cost() - start_cost
            points.append(
                OutputScalingPoint(
                    documents=count,
                    children=children,
                    output_size=count * children,
                    bulk_cost=cost,
                )
            )
    # Restore the full batch for any later use of the fixture.
    bulk.load_documents(fixture.documents)
    return points


def output_scaling_correlation(points: Iterable[OutputScalingPoint]) -> float:
    """Pearson correlation between output size and BulkProbe cost (≈ linear ⇒ close to 1)."""
    points = list(points)
    sizes = np.array([p.output_size for p in points], dtype=float)
    costs = np.array([p.bulk_cost for p in points], dtype=float)
    if len(points) < 2 or sizes.std() == 0 or costs.std() == 0:
        return 0.0
    return float(np.corrcoef(sizes, costs)[0, 1])


# ---------------------------------------------------------------------------
# Figure 8(d): distillation, index lookups vs. joins
# ---------------------------------------------------------------------------


@dataclass
class DistillationFixture:
    """Two identical crawl-graph databases, one per distiller variant."""

    join_db: Database
    lookup_db: Database
    links: List[Link]
    relevance: Dict[int, float]


def build_distillation_fixture(
    seed: int = 7,
    buffer_pool_pages: int = 64,
    relevant_relevance: float = 0.9,
    background_relevance: float = 0.05,
) -> DistillationFixture:
    """Materialise a crawl graph (CRAWL + weighted LINK) into two databases."""
    web = SyntheticWebBuilder(distillation_web_config(seed)).build()
    relevant = web.relevant_pages([CYCLING])

    def relevance_of(url: str) -> float:
        return relevant_relevance if url in relevant else background_relevance

    links: List[Link] = []
    relevance: Dict[int, float] = {}
    crawl_rows = []
    for url in web.urls():
        page = web.page(url)
        relevance[page.oid] = relevance_of(url)
        crawl_rows.append(
            {
                "oid": page.oid,
                "url": url,
                "sid": page.sid,
                "relevance": relevance_of(url),
                "numtries": 1,
                "serverload": 0,
                "lastvisited": 1,
                "kcid": None,
                "status": "visited",
            }
        )
        for target in page.out_links:
            if not web.has_page(target):
                continue
            destination = web.page(target)
            links.append(
                Link(
                    oid_src=page.oid,
                    sid_src=page.sid,
                    oid_dst=destination.oid,
                    sid_dst=destination.sid,
                    wgt_fwd=relevance_of(target),
                    wgt_rev=relevance_of(url),
                )
            )

    def build_db() -> Database:
        database = Database(buffer_pool_pages=buffer_pool_pages)
        create_crawl_tables(database)
        database.table("CRAWL").insert_many(crawl_rows)
        database.table("LINK").insert_many(
            {
                "oid_src": link.oid_src,
                "sid_src": link.sid_src,
                "oid_dst": link.oid_dst,
                "sid_dst": link.sid_dst,
                "wgt_fwd": link.wgt_fwd,
                "wgt_rev": link.wgt_rev,
            }
            for link in links
        )
        return database

    return DistillationFixture(
        join_db=build_db(), lookup_db=build_db(), links=links, relevance=relevance
    )


@dataclass
class DistillationMeasurement:
    variant: str
    iterations: int
    wall_seconds: float
    scan_cost: float
    lookup_cost: float
    update_cost: float
    join_cost: float
    total_io_cost: float
    top_hub_oids: List[int]


@dataclass
class DistillationComparisonResult:
    join: DistillationMeasurement
    lookup: DistillationMeasurement

    def speedup(self) -> float:
        return self.lookup.total_io_cost / max(self.join.total_io_cost, 1e-12)

    def rankings_agree(self, k: int = 10) -> bool:
        return set(self.join.top_hub_oids[:k]) == set(self.lookup.top_hub_oids[:k])


def run_distillation_comparison(
    fixture: Optional[DistillationFixture] = None,
    iterations: int = 3,
    rho: float = 0.1,
    seed: int = 7,
) -> DistillationComparisonResult:
    """Figure 8(d): run both distiller variants over identical crawl graphs."""
    fixture = fixture or build_distillation_fixture(seed=seed)
    measurements = {}
    for variant, database in (("join", fixture.join_db), ("lookup", fixture.lookup_db)):
        database.clear_cache()
        database.reset_stats()
        distiller_cls = JoinDistiller if variant == "join" else IndexLookupDistiller
        distiller = distiller_cls(database, rho=rho)
        start = time.perf_counter()
        result = distiller.run(iterations=iterations)
        wall = time.perf_counter() - start
        measurements[variant] = DistillationMeasurement(
            variant=variant,
            iterations=iterations,
            wall_seconds=wall,
            scan_cost=distiller.cost.scan_cost,
            lookup_cost=distiller.cost.lookup_cost,
            update_cost=distiller.cost.update_cost,
            join_cost=distiller.cost.join_cost,
            total_io_cost=database.stats.simulated_cost(),
            top_hub_oids=[oid for oid, _ in result.top_hubs(20)],
        )
    return DistillationComparisonResult(join=measurements["join"], lookup=measurements["lookup"])


def reference_distillation(fixture: DistillationFixture, iterations: int = 3, rho: float = 0.1):
    """The in-memory reference scores for the fixture (used by agreement tests)."""
    return weighted_hits(fixture.links, fixture.relevance, rho=rho, max_iterations=iterations)


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------


def print_report(
    comparison: ClassifierComparisonResult,
    memory_points: Sequence[MemoryScalingPoint],
    output_points: Sequence[OutputScalingPoint],
    distillation: DistillationComparisonResult,
) -> List[str]:
    """All four Figure 8 panels as printable rows."""
    lines = ["# Figure 8(a): classification relative time (simulated I/O cost)"]
    lines.append(f"{'variant':>8}  {'doc scan':>9}  {'probe/join':>10}  {'total':>10}  {'wall s':>8}")
    for name, label in (("sql", "SQL"), ("blob", "BLOB"), ("bulk", "CLI")):
        m = comparison.measurements[name]
        lines.append(
            f"{label:>8}  {m.doc_scan_cost:>9.1f}  {m.probe_cost:>10.1f}"
            f"  {m.total_io_cost:>10.1f}  {m.wall_seconds:>8.3f}"
        )
    lines.append(f"bulk vs SQL speedup: {comparison.speedup('sql', 'bulk'):.1f}x")

    lines.append("")
    lines.append("# Figure 8(b): memory scaling (cost vs buffer pool pages)")
    lines.append(f"{'pages':>7}  {'SingleProbe':>12}  {'BulkProbe':>10}")
    for point in memory_points:
        lines.append(
            f"{point.buffer_pool_pages:>7}  {point.single_probe_cost:>12.1f}  {point.bulk_probe_cost:>10.1f}"
        )

    lines.append("")
    lines.append("# Figure 8(c): BulkProbe cost vs output size |children|x|docs|")
    lines.append(f"{'output':>8}  {'cost':>10}")
    for point in sorted(output_points, key=lambda p: p.output_size):
        lines.append(f"{point.output_size:>8}  {point.bulk_cost:>10.2f}")
    lines.append(f"correlation(output size, cost) = {output_scaling_correlation(output_points):.3f}")

    lines.append("")
    lines.append("# Figure 8(d): distillation relative time")
    lines.append(f"{'variant':>8}  {'scan':>8}  {'lookup':>8}  {'update':>8}  {'join':>8}  {'total':>9}  {'wall s':>8}")
    for m in (distillation.lookup, distillation.join):
        lines.append(
            f"{m.variant:>8}  {m.scan_cost:>8.1f}  {m.lookup_cost:>8.1f}  {m.update_cost:>8.1f}"
            f"  {m.join_cost:>8.1f}  {m.total_io_cost:>9.1f}  {m.wall_seconds:>8.3f}"
        )
    lines.append(f"join vs lookup speedup: {distillation.speedup():.1f}x")
    return lines
