"""Canonical synthetic-web workloads shared by every experiment and benchmark.

The paper's crawls ran against the 1999 Web with topics such as cycling
and mutual funds; these helpers build the laptop-scale stand-ins used to
regenerate each figure.  All parameters are deterministic functions of
the seed, so experiments are repeatable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import FocusConfig
from repro.core.system import FocusSystem
from repro.crawler.focused import CrawlerConfig
from repro.webgraph.graph import SyntheticWebBuilder, WebConfig, WebGraph

#: The good topic used by the headline experiments ("cycling" in the paper).
CYCLING = "recreation/cycling"
#: The stagnation-scenario topic ("mutual funds" in §3.7).
MUTUAL_FUNDS = "business/investment/mutual_funds"
#: Its parent, whose marking fixes the stagnation ("investment in general").
INVESTMENT = "business/investment"
#: The co-topic of the §1 citation-sociology example ("first aid").
FIRST_AID = "health/first_aid"


def crawl_web_config(seed: int = 7, scale: float = 1.0) -> WebConfig:
    """The web used for the crawling experiments (Figures 5, 6, 7).

    The good-topic community is made much larger than the crawl budget
    (as on the real web) and linked with a locality window so that it has
    a large diameter; every other topic stays small, and a sizeable
    background web surrounds everything.
    """
    return WebConfig(
        seed=seed,
        pages_per_topic=max(40, int(130 * scale)),
        topic_page_overrides={
            CYCLING: max(200, int(1000 * scale)),
            MUTUAL_FUNDS: max(80, int(260 * scale)),
        },
        mean_doc_length=80,
        background_pages=max(500, int(7000 * scale)),
        servers_per_topic=8,
        background_servers=48,
        pages_per_server=10,
        popular_sites=15,
        p_same_topic=0.50,
        p_related_topic=0.12,
        p_popular=0.15,
        link_locality_window=20,
        hub_locality_multiplier=3,
        seed_region_fraction=0.12,
        cotopic_links={CYCLING: FIRST_AID},
    )


def io_web_config(seed: int = 7) -> WebConfig:
    """The web behind the classifier I/O experiments (Figure 8a–c).

    What matters here is the *size of the classifier's statistics tables*
    relative to the buffer pool, so the vocabulary is made much larger
    than in the crawling workload (the paper's Yahoo!-scale models were
    ~350 MB and did not fit in memory).
    """
    return WebConfig(
        seed=seed,
        pages_per_topic=60,
        background_pages=300,
        mean_doc_length=150,
        vocabulary_background_size=2500,
        vocabulary_terms_per_topic=220,
    )


def distillation_web_config(seed: int = 7) -> WebConfig:
    """The web behind the distillation I/O experiment (Figure 8d).

    The crawl graph must be large enough that the CRAWL and LINK tables
    dwarf the buffer pool, so per-edge index lookups actually pay random
    I/O.  Page text is irrelevant, so documents are kept very short.
    """
    return WebConfig(
        seed=seed,
        pages_per_topic=250,
        background_pages=2500,
        mean_doc_length=30,
        out_degree_mean=10.0,
    )


def build_crawl_web(seed: int = 7, scale: float = 1.0) -> WebGraph:
    return SyntheticWebBuilder(crawl_web_config(seed, scale)).build()


def crawl_focus_config(
    good_topic: str = CYCLING,
    max_pages: int = 1200,
    examples_per_leaf: int = 30,
) -> FocusConfig:
    """FocusConfig matching the crawling experiments."""
    return FocusConfig(
        good_topics=(good_topic,),
        examples_per_leaf=examples_per_leaf,
        seed_count=24,
        crawler=CrawlerConfig(max_pages=max_pages, distill_every=200),
    )


@dataclass
class CrawlWorkload:
    """A ready-to-crawl system: web built, taxonomy marked, classifier trained."""

    system: FocusSystem
    web: WebGraph
    good_topic: str


def build_crawl_workload(
    seed: int = 7,
    scale: float = 1.0,
    good_topic: str = CYCLING,
    max_pages: int = 1200,
    web: Optional[WebGraph] = None,
) -> CrawlWorkload:
    """Build (or reuse) the crawl web and return a trained FocusSystem over it."""
    web = web if web is not None else build_crawl_web(seed, scale)
    config = crawl_focus_config(good_topic=good_topic, max_pages=max_pages)
    system = FocusSystem.from_web(web, [good_topic], config)
    system.train()
    return CrawlWorkload(system=system, web=web, good_topic=good_topic)
