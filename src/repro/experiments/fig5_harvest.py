"""Figure 5 — harvest rate of the unfocused baseline vs. the focused crawler.

Paper result: starting from the same keyword-search seeds, a standard
(unfocused) crawler is "completely lost within the next hundred page
fetches: the relevance goes quickly toward zero", while the soft-focus
crawler "keeps up a healthy pace of acquiring relevant pages — on an
average, every second page is relevant".

This module runs both crawlers on the canonical synthetic web and
returns the moving-average relevance series for each, plus the §3.7
stagnation scenario (mutual funds) and its fix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core import metrics
from repro.core.system import CrawlResult

from .workloads import INVESTMENT, MUTUAL_FUNDS, CrawlWorkload, build_crawl_workload


@dataclass
class HarvestExperimentResult:
    """Outputs backing both panels of Figure 5."""

    focused_series: List[tuple[int, float]]
    unfocused_series: List[tuple[int, float]]
    focused_series_wide: List[tuple[int, float]]
    focused_average: float
    unfocused_average: float
    focused_tail_average: float
    unfocused_tail_average: float
    focused_result: CrawlResult = field(repr=False)
    unfocused_result: CrawlResult = field(repr=False)

    def advantage(self) -> float:
        """How many times more relevant the focused crawl is, on average."""
        if self.unfocused_average <= 0:
            return float("inf")
        return self.focused_average / self.unfocused_average

    def tail_advantage(self) -> float:
        """Same ratio over the tail of the crawl, where the baseline has drifted."""
        if self.unfocused_tail_average <= 0:
            return float("inf")
        return self.focused_tail_average / self.unfocused_tail_average


def run_harvest_experiment(
    workload: Optional[CrawlWorkload] = None,
    max_pages: int = 1200,
    window: int = 100,
    seed: int = 7,
    scale: float = 1.0,
) -> HarvestExperimentResult:
    """Run the Figure 5 comparison and return both harvest-rate series."""
    workload = workload or build_crawl_workload(seed=seed, scale=scale, max_pages=max_pages)
    system = workload.system
    seeds = system.default_seeds()

    focused = system.crawl(max_pages=max_pages, seeds=seeds)
    unfocused = system.crawl(max_pages=max_pages, seeds=seeds, focused=False)

    tail_start = max_pages // 2
    return HarvestExperimentResult(
        focused_series=metrics.harvest_series(focused.trace, window),
        unfocused_series=metrics.harvest_series(unfocused.trace, window),
        focused_series_wide=metrics.harvest_series(focused.trace, window * 10),
        focused_average=metrics.average_harvest_rate(focused.trace),
        unfocused_average=metrics.average_harvest_rate(unfocused.trace),
        focused_tail_average=metrics.average_harvest_rate(focused.trace, skip_first=tail_start),
        unfocused_tail_average=metrics.average_harvest_rate(unfocused.trace, skip_first=tail_start),
        focused_result=focused,
        unfocused_result=unfocused,
    )


@dataclass
class StagnationExperimentResult:
    """Outputs of the §3.7 mutual-funds stagnation scenario."""

    before_harvest: float
    before_dominant_topic: Optional[str]
    after_harvest: float
    improved: bool


def run_stagnation_experiment(
    seed: int = 7,
    scale: float = 1.0,
    max_pages: int = 400,
) -> StagnationExperimentResult:
    """Reproduce the mutual-funds stagnation diagnosis and fix.

    A crawl focused on the narrow ``mutual_funds`` topic under-performs
    because its neighbourhood is dominated by pages about investment in
    general (the parent topic); the monitor's topic census reveals this,
    and marking the parent good recovers the harvest rate.
    """
    workload = build_crawl_workload(
        seed=seed, scale=scale, good_topic=MUTUAL_FUNDS, max_pages=max_pages
    )
    system = workload.system
    before = system.crawl(max_pages=max_pages)
    report = before.monitor().diagnose_stagnation()

    # The fix: mark the ancestor topic good (one UPDATE in the paper).
    system.add_good_topic(INVESTMENT)
    after = system.crawl(max_pages=max_pages)

    return StagnationExperimentResult(
        before_harvest=before.harvest_rate(),
        before_dominant_topic=report.dominant_kcid_name,
        after_harvest=after.harvest_rate(),
        improved=after.harvest_rate() > before.harvest_rate(),
    )


def print_report(result: HarvestExperimentResult, every: int = 100) -> List[str]:
    """Produce the Figure 5 series as printable rows (``#URLs  focused  unfocused``)."""
    lines = ["# Figure 5: harvest rate (moving average over 100 pages)"]
    lines.append(f"{'#URLs':>8}  {'soft focus':>10}  {'unfocused':>10}")
    length = max(len(result.focused_series), len(result.unfocused_series))
    for i in range(every - 1, length, every):
        focused = result.focused_series[min(i, len(result.focused_series) - 1)][1]
        unfocused = result.unfocused_series[min(i, len(result.unfocused_series) - 1)][1]
        lines.append(f"{i + 1:>8}  {focused:>10.3f}  {unfocused:>10.3f}")
    lines.append(
        f"average: focused {result.focused_average:.3f}, unfocused {result.unfocused_average:.3f}"
        f" (advantage {result.advantage():.1f}x, tail advantage {result.tail_advantage():.1f}x)"
    )
    return lines
