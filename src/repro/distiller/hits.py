"""In-memory relevance-weighted HITS (the distillation reference implementation).

Kleinberg's mutual recursion, specialised as in paper §2.2:

    a(v) ← Σ_{(u,v)∈E} h(u) · E_F[u,v]     (only for v with relevance > ρ)
    h(u) ← Σ_{(u,v)∈E} a(v) · E_B[u,v]

with L1 normalisation after each half-step and same-server ("nepotism")
edges excluded.  The crawler uses this implementation to refresh hub
scores cheaply; the DB-backed distillers in
:mod:`repro.distiller.db_distiller` must converge to the same scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

from .weights import Link


@dataclass
class DistillationResult:
    """Hub and authority scores keyed by page oid."""

    hub_scores: Dict[int, float] = field(default_factory=dict)
    authority_scores: Dict[int, float] = field(default_factory=dict)
    iterations: int = 0

    def top_hubs(self, k: int = 10) -> list[tuple[int, float]]:
        return sorted(self.hub_scores.items(), key=lambda kv: -kv[1])[:k]

    def top_authorities(self, k: int = 10) -> list[tuple[int, float]]:
        return sorted(self.authority_scores.items(), key=lambda kv: -kv[1])[:k]

    def hub_threshold(self, percentile: float = 0.9) -> float:
        """The score at the given percentile of hub scores (the paper's ψ)."""
        if not self.hub_scores:
            return 0.0
        values = sorted(self.hub_scores.values())
        index = min(int(percentile * len(values)), len(values) - 1)
        return values[index]


def _normalize(scores: Dict[int, float]) -> None:
    total = sum(scores.values())
    if total <= 0:
        return
    for key in scores:
        scores[key] /= total


def weighted_hits(
    links: Iterable[Link],
    relevance: Mapping[int, float],
    rho: float = 0.1,
    max_iterations: int = 25,
    tolerance: float = 1e-9,
    exclude_nepotism: bool = True,
    use_relevance_weights: bool = True,
) -> DistillationResult:
    """Run relevance-weighted HITS over a link set.

    ``relevance`` maps oid -> R(page) for visited pages; unvisited
    endpoints default to 0 relevance and therefore neither receive nor
    reflect prestige (matching the Figure 4 SQL, which joins AUTH
    candidates against CRAWL).  With ``use_relevance_weights=False`` the
    computation degrades to classical HITS (used by the ablation bench).
    """
    edges = []
    for link in links:
        if exclude_nepotism and link.is_nepotistic:
            continue
        edges.append(link)
    if not edges:
        return DistillationResult(iterations=0)

    sources = {link.oid_src for link in edges}
    hubs: Dict[int, float] = {oid: 1.0 / len(sources) for oid in sources}
    authorities: Dict[int, float] = {}

    # The relevance filter and the forward weights do not change across
    # iterations, so resolve them once instead of per edge per iteration.
    forward_edges: list[tuple[int, int, float]] = []
    for link in edges:
        destination_relevance = relevance.get(link.oid_dst, 0.0)
        if destination_relevance <= rho:
            continue
        weight = (
            (link.wgt_fwd if link.wgt_fwd is not None else destination_relevance)
            if use_relevance_weights
            else 1.0
        )
        forward_edges.append((link.oid_src, link.oid_dst, weight))

    iterations_run = 0
    for iteration in range(max_iterations):
        iterations_run = iteration + 1
        # Authority update (forward direction, filtered by relevance > rho).
        new_authorities: Dict[int, float] = {}
        for oid_src, oid_dst, weight in forward_edges:
            contribution = hubs.get(oid_src, 0.0) * weight
            if contribution:
                new_authorities[oid_dst] = (
                    new_authorities.get(oid_dst, 0.0) + contribution
                )
        _normalize(new_authorities)

        # Hub update (backward direction).
        new_hubs: Dict[int, float] = {}
        for link in edges:
            authority_score = new_authorities.get(link.oid_dst, 0.0)
            if not authority_score:
                continue
            weight = (
                (link.wgt_rev if link.wgt_rev is not None else relevance.get(link.oid_src, 0.0))
                if use_relevance_weights
                else 1.0
            )
            contribution = authority_score * weight
            if contribution:
                new_hubs[link.oid_src] = new_hubs.get(link.oid_src, 0.0) + contribution
        _normalize(new_hubs)

        # Convergence check on the hub vector.
        delta = 0.0
        for oid in set(new_hubs) | set(hubs):
            delta += abs(new_hubs.get(oid, 0.0) - hubs.get(oid, 0.0))
        hubs, authorities = new_hubs, new_authorities
        if delta < tolerance:
            break

    return DistillationResult(
        hub_scores=hubs, authority_scores=authorities, iterations=iterations_run
    )
