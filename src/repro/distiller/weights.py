"""Relevance-weighted edge weights for topic distillation (paper §2.2.2).

Plain HITS treats every hyperlink as an equal endorsement, which lets
prestige leak between topics through universally popular pages.  The
paper specialises the forward and backward adjacency matrices:

* ``E_F[u, v] = relevance(v)`` — u's endorsement of v only counts to the
  extent v is on-topic (stops relevant hubs boosting irrelevant
  authorities such as Netscape);
* ``E_B[u, v] = relevance(u)`` — v only reflects prestige back onto
  on-topic hubs (stops relevant authorities boosting irrelevant
  bookmark files).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional


@dataclass(frozen=True)
class Link:
    """One hyperlink in the crawl graph, as stored in the LINK table."""

    oid_src: int
    sid_src: int
    oid_dst: int
    sid_dst: int
    wgt_fwd: float = 1.0
    wgt_rev: float = 1.0

    @property
    def is_nepotistic(self) -> bool:
        """True when source and destination live on the same server."""
        return self.sid_src == self.sid_dst


def forward_weight(relevance_of_destination: Optional[float], default: float = 0.0) -> float:
    """E_F[u, v]: the probability u linked to v *because* v is on-topic."""
    if relevance_of_destination is None:
        return default
    return float(min(max(relevance_of_destination, 0.0), 1.0))


def backward_weight(relevance_of_source: Optional[float], default: float = 0.0) -> float:
    """E_B[u, v]: how much of v's prestige should reflect onto hub u."""
    if relevance_of_source is None:
        return default
    return float(min(max(relevance_of_source, 0.0), 1.0))


def assign_weights(
    links: Iterable[Link],
    relevance: Mapping[int, float],
    default_unknown: float = 0.0,
) -> list[Link]:
    """Return links re-weighted from a relevance map (oid -> R).

    Unvisited endpoints (no relevance yet) receive ``default_unknown``;
    the crawler refreshes weights as pages get classified.
    """
    out = []
    for link in links:
        out.append(
            Link(
                oid_src=link.oid_src,
                sid_src=link.sid_src,
                oid_dst=link.oid_dst,
                sid_dst=link.sid_dst,
                wgt_fwd=forward_weight(relevance.get(link.oid_dst), default_unknown),
                wgt_rev=backward_weight(relevance.get(link.oid_src), default_unknown),
            )
        )
    return out
