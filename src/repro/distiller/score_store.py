"""Delta persistence for the HUBS/AUTH distillation score tables.

The crawl engine historically stored each distillation's scores by
truncating the score table and re-inserting every row.  That is simple,
but on a durable database it is also the single biggest write
amplifier: every distillation rewrites every score page and journals a
truncate plus a full re-insert, even though successive distillations
agree on most scores (the base set converges; only the pages crawled
since the last distillation move much).

:class:`ScoreTableStore` keeps an ``oid -> record id`` map plus the
last stored value per oid and writes only the difference:

* scores that changed go through :meth:`Table.update_column` (the
  single-column bulk fast path — ``score`` is unindexed and non-key);
* new oids are bulk-inserted;
* oids that vanished from the result are deleted (in sorted order, so
  a cache rebuilt after a checkpoint resume issues the identical
  mutation sequence an uninterrupted run would).

The cache is soft state: :meth:`invalidate` drops it and the next
:meth:`store` rebuilds it with one table scan — which is how a resumed
crawl re-synchronises with the replayed database.
"""

from __future__ import annotations

from typing import Dict, Mapping

__all__ = ["ScoreTableStore"]


class ScoreTableStore:
    """Write distillation scores into their table as a minimal delta."""

    def __init__(self, database) -> None:
        self.database = database
        #: table name -> oid -> record id of that oid's row.
        self._rids: Dict[str, Dict[int, object]] = {}
        #: table name -> oid -> last stored score.
        self._values: Dict[str, Dict[int, float]] = {}
        #: Rows touched (updated + inserted + deleted) since construction.
        self.rows_written = 0
        #: Rows skipped because their stored score was already current.
        self.rows_skipped = 0

    def invalidate(self) -> None:
        """Drop the caches (after a resume); the next store rescans."""
        self._rids.clear()
        self._values.clear()

    def store(self, name: str, scores: Mapping[int, float]) -> None:
        """Make table *name* hold exactly *scores*, writing only the delta."""
        table = self.database.table(name)
        rids = self._rids.get(name)
        if rids is None:
            rids = {}
            values = {}
            for rid, row in table.scan():
                rids[row[0]] = rid
                values[row[0]] = row[1]
            self._rids[name] = rids
            self._values[name] = values
        values = self._values[name]

        changed = []
        inserts = []
        for oid, score in scores.items():
            rid = rids.get(oid)
            if rid is None:
                inserts.append((oid, score))
            elif values[oid] != score:
                changed.append((rid, score))
            else:
                self.rows_skipped += 1
        removed = sorted(oid for oid in rids if oid not in scores)

        if changed:
            table.update_column("score", changed)
        for oid in removed:
            table.delete_row(rids.pop(oid))
            del values[oid]
        if inserts:
            for (oid, _score), rid in zip(inserts, table.insert_many(inserts)):
                rids[oid] = rid
        for oid, score in scores.items():
            values[oid] = score
        self.rows_written += len(changed) + len(inserts) + len(removed)
