"""Database-backed distillers: the join plan of Figure 4 and its naive rival.

The paper compares two ways of running (relevance-weighted) HITS over a
crawl graph that lives in the database:

* **Join distillation** (Figure 4): each half-iteration is one
  set-oriented INSERT ... SELECT with a GROUP BY, followed by an UPDATE
  that normalises the scores.  The optimiser is free to use hash or
  sort-merge joins, so the per-iteration cost is a few sequential passes.
* **Index-lookup distillation** (the "earlier main-memory
  implementations" transplanted onto disk): walk the LINK table edge by
  edge, look up the endpoint scores through indexes, and update the
  scores row by row — random I/O per edge, which Figure 8(d) shows to be
  about 3× slower.

Both produce the same scores as the in-memory
:func:`repro.distiller.hits.weighted_hits` reference.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.minidb import Database
from repro.minidb.pages import PageId, RecordId
from repro.minidb.query import legacy_scan_rows
from repro.minidb.table import Table

from .compiled import CompiledLinkGraph, compiled_weighted_hits
from .hits import DistillationResult, _normalize, weighted_hits
from .weights import Link

#: Distillation backends accepted by :class:`IncrementalDistiller`.
DISTILL_BACKENDS = ("python", "numpy")


@dataclass
class DistillerCost:
    """Simulated-I/O breakdown of a distillation run (drives Figure 8d)."""

    scan_cost: float = 0.0
    lookup_cost: float = 0.0
    update_cost: float = 0.0
    join_cost: float = 0.0
    iterations: int = 0

    def total(self) -> float:
        return self.scan_cost + self.lookup_cost + self.update_cost + self.join_cost


class _BaseDbDistiller:
    """Shared plumbing: initialisation of HUBS/AUTH and result extraction."""

    def __init__(self, database: Database, rho: float = 0.1) -> None:
        self.database = database
        self.rho = rho
        self.cost = DistillerCost()

    # -- initialisation -----------------------------------------------------------
    def initialize_scores(self) -> None:
        """Seed HUBS with a uniform distribution over link sources and clear AUTH."""
        db = self.database
        db.sql("delete from HUBS")
        db.sql("delete from AUTH")
        sources = db.query("LINK").select("oid_src").distinct().run()
        if not sources:
            return
        uniform = 1.0 / len(sources)
        db.table("HUBS").insert_many(
            {"oid": row["oid_src"], "score": uniform} for row in sources
        )

    # -- results --------------------------------------------------------------------
    def result(self) -> DistillationResult:
        hubs = {
            row["oid"]: row["score"]
            for row in self.database.query("HUBS").run()
            if row["score"] is not None
        }
        authorities = {
            row["oid"]: row["score"]
            for row in self.database.query("AUTH").run()
            if row["score"] is not None
        }
        return DistillationResult(
            hub_scores=hubs,
            authority_scores=authorities,
            iterations=self.cost.iterations,
        )

    def run(self, iterations: int = 5) -> DistillationResult:
        """Initialise (if needed) and run *iterations* full HITS iterations."""
        if len(self.database.table("HUBS")) == 0:
            self.initialize_scores()
        for _ in range(iterations):
            self.iterate()
        return self.result()

    def iterate(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class JoinDistiller(_BaseDbDistiller):
    """One HITS iteration as two set-oriented SQL statements (paper Figure 4)."""

    def _run_attributed(self, sql: str, params: Optional[dict] = None) -> list:
        """Execute one statement and charge its I/O to the right counter.

        Mutations (DELETE/UPDATE) are bookkeeping, not join work:
        ``update_cost``.  Read pipelines ask the planner how their rows
        were fetched (:meth:`Plan.access_rows`): the index-probe share
        of the measured cost goes to ``lookup_cost``, the rest — scans,
        hashing, grouping — to ``join_cost``.  The old one-diff-per-
        iteration accounting silently booked index-path reads as join
        work, which understated the lookup column of Figure 8(d)
        whenever the planner picked an index plan.
        """
        db = self.database
        before = db.stats.copy()
        rows = db.sql(sql, params)
        measured = db.stats.diff(before).simulated_cost()
        verb = sql.split(None, 1)[0].lower()
        if verb in ("delete", "update"):
            self.cost.update_cost += measured
            return rows
        plan = db.last_plan
        index_rows, scan_rows = plan.access_rows() if plan is not None else (0, 0)
        touched = index_rows + scan_rows
        if touched and index_rows:
            lookup_share = measured * index_rows / touched
            self.cost.lookup_cost += lookup_share
            measured -= lookup_share
        self.cost.join_cost += measured
        return rows

    def iterate(self) -> None:
        # UpdateAuth(rho): authorities gather prestige through forward weights,
        # filtered to sufficiently relevant pages, excluding same-server edges.
        self._run_attributed("delete from AUTH")
        self._run_attributed(
            """
            insert into AUTH(oid, score)
            (select oid_dst, sum(score * wgt_fwd)
             from HUBS, LINK, CRAWL
             where sid_src <> sid_dst
               and HUBS.oid = oid_src
               and oid_dst = CRAWL.oid
               and relevance > :rho
             group by oid_dst)
            """,
            {"rho": self.rho},
        )
        total_auth = self._run_attributed("select sum(score) total from AUTH")[0]["total"]
        if total_auth:
            self._run_attributed(
                "update AUTH set score = score / :total", {"total": total_auth}
            )

        # UpdateHubs: hubs collect reflected prestige through backward weights.
        self._run_attributed("delete from HUBS")
        self._run_attributed(
            """
            insert into HUBS(oid, score)
            (select oid_src, sum(score * wgt_rev)
             from AUTH, LINK
             where sid_src <> sid_dst
               and oid = oid_dst
             group by oid_src)
            """
        )
        total_hubs = self._run_attributed("select sum(score) total from HUBS")[0]["total"]
        if total_hubs:
            self._run_attributed(
                "update HUBS set score = score / :total", {"total": total_hubs}
            )
        self.cost.iterations += 1


class IndexLookupDistiller(_BaseDbDistiller):
    """One HITS iteration as an edge-at-a-time walk with index lookups.

    This reproduces "naive distillation using sequential link table scan"
    against "end-vertex index lookup and score updates" whose time
    breakdown is charted in Figure 8(d).
    """

    def iterate(self) -> None:
        db = self.database
        crawl = db.table("CRAWL")
        hubs_table = db.table("HUBS")
        auth_table = db.table("AUTH")
        link_table = db.table("LINK")
        crawl_schema = crawl.schema

        # ---- authority half-step ------------------------------------------------
        new_auth: Dict[int, float] = {}
        before = db.stats.copy()
        # The naive variant *is* the paper's sequential link-table scan,
        # so it reads LINK through the deprecated raw-scan shim (with
        # warnings suppressed here: the deprecation targets analytics
        # call sites that should move to Database.query(), not this
        # deliberately-naive baseline the experiment measures).
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            link_rows = legacy_scan_rows(link_table)
        self.cost.scan_cost += db.stats.diff(before).simulated_cost()

        before = db.stats.copy()
        for link in link_rows:
            if link["sid_src"] == link["sid_dst"]:
                continue
            # Per-edge random lookups: destination relevance from CRAWL, then
            # the source's hub score from HUBS (the naive access pattern the
            # paper transplants from main-memory implementations).
            crawl_row = crawl.get_by_key((link["oid_dst"],))
            if crawl_row is None:
                continue
            relevance = crawl_schema.row_to_mapping(crawl_row).get("relevance")
            if relevance is None or relevance <= self.rho:
                continue
            hub_row = hubs_table.get_by_key((link["oid_src"],))
            hub_score = (
                hubs_table.schema.row_to_mapping(hub_row)["score"] if hub_row else 0.0
            )
            contribution = (hub_score or 0.0) * (link["wgt_fwd"] or 0.0)
            if contribution:
                new_auth[link["oid_dst"]] = new_auth.get(link["oid_dst"], 0.0) + contribution
        self.cost.lookup_cost += db.stats.diff(before).simulated_cost()

        before = db.stats.copy()
        _normalize(new_auth)
        auth_table.truncate()
        auth_table.insert_many({"oid": oid, "score": score} for oid, score in new_auth.items())
        self.cost.update_cost += db.stats.diff(before).simulated_cost()

        # ---- hub half-step --------------------------------------------------------
        new_hubs: Dict[int, float] = {}
        before = db.stats.copy()
        for link in link_rows:
            if link["sid_src"] == link["sid_dst"]:
                continue
            auth_row = auth_table.get_by_key((link["oid_dst"],))
            if auth_row is None:
                continue
            authority_score = auth_table.schema.row_to_mapping(auth_row)["score"] or 0.0
            if not authority_score:
                continue
            contribution = authority_score * (link["wgt_rev"] or 0.0)
            if contribution:
                new_hubs[link["oid_src"]] = new_hubs.get(link["oid_src"], 0.0) + contribution
        self.cost.lookup_cost += db.stats.diff(before).simulated_cost()

        before = db.stats.copy()
        _normalize(new_hubs)
        hubs_table.truncate()
        hubs_table.insert_many({"oid": oid, "score": score} for oid, score in new_hubs.items())
        self.cost.update_cost += db.stats.diff(before).simulated_cost()
        self.cost.iterations += 1


class LinkDeltaCache:
    """Cached LINK adjacency refreshed by delta scans (the engine's distill feed).

    Re-reading the whole LINK table before every distillation is an O(E)
    sequential scan that grows with the crawl; since the crawler only ever
    *appends* link rows and *updates weights in place*, the adjacency can
    be cached and refreshed incrementally:

    * newly appended rows are picked up by rescanning from the page the
      previous refresh stopped in (``HeapFile.scan_from``);
    * in-place weight updates (the ``wgt_fwd`` refresh when a destination
      page gets classified) are point-read through the record ids the
      writer reports via :meth:`note_updated`.

    Iteration order of the cache matches a full heap scan (append order,
    with updated rows keeping their position), so scores computed over the
    cache agree with a from-scratch recomputation to float-sum precision.
    """

    def __init__(self, table: Table, compiled: bool = False) -> None:
        self.table = table
        #: rid -> cached Link (python mode; compiled mode keeps edge data
        #: in the columnar graph and leaves this empty).
        self._links: Dict[RecordId, Link] = {}
        self._watermark_page = 0
        #: Compiled mode: (page_no, slot) of the last folded row — valid
        #: because LINK is append-only, so heap scan order is fold order.
        self._folded_through: tuple[int, int] = (-1, -1)
        self._folded_count = 0
        self._updated_rids: set[RecordId] = set()
        #: Columnar mirror of the cached adjacency (numpy distillation
        #: backend); deltas are folded into it edge by edge, never rebuilt.
        self.graph: Optional[CompiledLinkGraph] = None
        if compiled:
            columns = tuple(table.schema.column_names)
            expected = ("oid_src", "sid_src", "oid_dst", "sid_dst", "wgt_fwd", "wgt_rev")
            if columns != expected:
                raise ValueError(f"LINK schema order {columns} != {expected}")
            self.graph = CompiledLinkGraph()

    def note_updated(self, rids: Iterable[RecordId]) -> None:
        """Record in-place updates to already-cached rows (e.g. weight refreshes)."""
        self._updated_rids.update(rids)

    def refresh(self) -> list[Link]:
        """Fold the delta since the last call and return the full link list.

        In compiled mode the folded edges live in :attr:`graph` and the
        returned list is empty — the caller scores the columnar arrays
        directly instead of walking ``Link`` objects.
        """
        heap = self.table.heap
        rescanned_from = self._watermark_page
        if self.graph is not None:
            # LINK is append-only, so rows past the fold watermark are new
            # edges; rows at or before it can only have changed through
            # in-place weight updates, which note_updated tracked.
            graph = self.graph
            folded_through = self._folded_through
            for rid, row in heap.scan_from(rescanned_from):
                position = (rid.page_id.page_no, rid.slot)
                if position > folded_through:
                    graph.add_row(row, key=rid)
                    folded_through = position
                    self._folded_count += 1
            self._folded_through = folded_through
            self._watermark_page = max(heap.page_count - 1, 0)
            for rid in self._updated_rids:
                graph.update_row(rid, heap.read(rid))
            self._updated_rids.clear()
            return []
        for rid, row in heap.scan_from(rescanned_from):
            self._links[rid] = self._to_link(row)
        self._watermark_page = max(heap.page_count - 1, 0)
        for rid in self._updated_rids:
            if rid.page_id.page_no >= rescanned_from:
                continue  # already re-read by the page rescan
            self._links[rid] = self._to_link(heap.read(rid))
        self._updated_rids.clear()
        return list(self._links.values())

    def _to_link(self, row: tuple) -> Link:
        mapping = self.table.schema.row_to_mapping(row)
        return Link(
            oid_src=mapping["oid_src"],
            sid_src=mapping["sid_src"],
            oid_dst=mapping["oid_dst"],
            sid_dst=mapping["sid_dst"],
            wgt_fwd=mapping["wgt_fwd"],
            wgt_rev=mapping["wgt_rev"],
        )

    def __len__(self) -> int:
        if self.graph is not None:
            return self._folded_count
        return len(self._links)

    # -- checkpointing ------------------------------------------------------
    def state_snapshot(self) -> dict:
        """The cache's durable state: its high-water mark plus pending updates.

        The cached links themselves are *not* serialised — they are a pure
        function of the (recovered) heap below the watermark, so restore
        rebuilds them with one bounded sequential scan.
        """
        return {
            "watermark": self._watermark_page,
            "updated": [
                (rid.page_id.file_id, rid.page_id.page_no, rid.slot)
                for rid in self._updated_rids
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild the adjacency from the heap up to the recorded watermark.

        Rows touched after the watermark (or whose weights changed since
        the last refresh) are re-read by the next :meth:`refresh`, exactly
        as they would have been without the restart; insertion order is
        ascending ``(page, slot)`` either way, so the refreshed edge list
        — and therefore HITS' float summation order — is unchanged.
        """
        heap = self.table.heap
        watermark = state["watermark"]
        self._links = {}
        if self.graph is not None:
            # The compiled mirror is a pure function of the edge list in
            # heap order; rebuilding from the recovered heap reproduces the
            # same append-order arrays the uninterrupted crawl had.
            self.graph = CompiledLinkGraph()
            self._folded_through = (-1, -1)
            self._folded_count = 0
            if heap.page_count:
                for rid, row in heap.scan_from(0, watermark + 1):
                    self.graph.add_row(row, key=rid)
                    self._folded_through = (rid.page_id.page_no, rid.slot)
                    self._folded_count += 1
        elif heap.page_count:
            for rid, row in heap.scan_from(0, watermark + 1):
                self._links[rid] = self._to_link(row)
        self._watermark_page = watermark
        self._updated_rids = {
            RecordId(PageId(file_id, page_no), slot)
            for file_id, page_no, slot in state["updated"]
        }


class IncrementalDistiller:
    """Delta-mode distillation: cached adjacency + in-memory weighted HITS.

    Folds only the links recorded (or re-weighted) since the previous
    distillation into a :class:`LinkDeltaCache`, then scores the cached
    adjacency — with the reference
    :func:`~repro.distiller.hits.weighted_hits` edge walk
    (``backend="python"``, bit-for-bit the seed numbers) or with the
    columnar matvec kernels of :mod:`repro.distiller.compiled`
    (``backend="numpy"``, 1e-9-equivalent, deltas folded into the
    compiled arrays instead of rebuilding them).  Either way it produces
    the same scores as a full LINK-table recomputation (tests enforce
    agreement to 1e-9) without the per-distillation table scan.
    """

    def __init__(
        self,
        database: Database,
        rho: float = 0.1,
        max_iterations: int = 5,
        link_table: str = "LINK",
        backend: str = "python",
    ) -> None:
        if backend not in DISTILL_BACKENDS:
            raise ValueError(
                f"unknown distillation backend {backend!r}; expected one of {DISTILL_BACKENDS}"
            )
        self.database = database
        self.rho = rho
        self.max_iterations = max_iterations
        self.backend = backend
        self.cache = LinkDeltaCache(database.table(link_table), compiled=backend == "numpy")

    def note_updated(self, rids: Iterable[RecordId]) -> None:
        self.cache.note_updated(rids)

    def run(
        self,
        relevance: Dict[int, float],
        max_iterations: Optional[int] = None,
    ) -> DistillationResult:
        links = self.cache.refresh()
        iterations = max_iterations if max_iterations is not None else self.max_iterations
        if self.cache.graph is not None:
            return compiled_weighted_hits(
                self.cache.graph,
                relevance=relevance,
                rho=self.rho,
                max_iterations=iterations,
            )
        return weighted_hits(
            links,
            relevance=relevance,
            rho=self.rho,
            max_iterations=iterations,
        )
