"""Columnar distillation: LINK adjacency as arrays, HITS as matvecs.

The reference :func:`~repro.distiller.hits.weighted_hits` walks Python
edge lists and dicts per iteration.  This module keeps the crawl graph
in columnar form — parallel NumPy arrays over the non-nepotistic edges,
in LINK-heap append order — and runs each HITS half-step as a
``np.bincount`` scatter-add (a CSR matvec without leaving NumPy):

    a  <-  F^T  (h * w_fwd)        restricted to relevance > rho
    h  <-  B    (a * w_rev)

:class:`CompiledLinkGraph` supports exactly the two mutations the
crawler performs — appending new edges and patching weights in place —
so :class:`~repro.distiller.db_distiller.LinkDeltaCache` folds its
deltas into the compiled arrays instead of rebuilding them per
distillation.  Scores agree with the reference implementation to 1e-9
(tests enforce this); within the compiled backend results are
deterministic functions of the edge list in append order.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional

import numpy as np

from .hits import DistillationResult
from .weights import Link

#: Array slot marking "no stored weight, fall back to endpoint relevance"
#: (the reference path's ``None`` weights).
_NO_WEIGHT = math.nan


class CompiledLinkGraph:
    """Columnar adjacency over the non-nepotistic crawl edges.

    Edges are kept in append order (the LINK heap's scan order), so the
    scatter-add accumulation visits contributions in the same sequence
    as the reference edge walk.  Oids are densified on first appearance;
    the dense index is append-stable, making compiled scores a pure
    function of the edge list regardless of when the graph was built
    (checkpoint resume rebuilds it from the recovered heap).
    """

    def __init__(self) -> None:
        self._src: List[int] = []
        self._dst: List[int] = []
        self._fwd: List[float] = []
        self._rev: List[float] = []
        self._index_of_oid: Dict[int, int] = {}
        self._oids: List[int] = []
        self._position: Dict[object, int] = {}
        self._arrays: Optional[tuple] = None

    def __len__(self) -> int:
        return len(self._src)

    def _densify(self, oid: int) -> int:
        index = self._index_of_oid.get(oid)
        if index is None:
            index = len(self._oids)
            self._index_of_oid[oid] = index
            self._oids.append(oid)
        return index

    def add(self, link: Link, key: object = None) -> None:
        """Append one edge; nepotistic edges are dropped (never contribute).

        *key* (e.g. a heap record id) registers the edge for later
        in-place weight updates via :meth:`update`.
        """
        if link.is_nepotistic:
            return
        if key is not None:
            self._position[key] = len(self._src)
        self._src.append(self._densify(link.oid_src))
        self._dst.append(self._densify(link.oid_dst))
        self._fwd.append(_NO_WEIGHT if link.wgt_fwd is None else link.wgt_fwd)
        self._rev.append(_NO_WEIGHT if link.wgt_rev is None else link.wgt_rev)
        self._arrays = None

    def update(self, key: object, link: Link) -> None:
        """Patch the weights of a previously added edge in place."""
        position = self._position.get(key)
        if position is None:  # nepotistic (or never compiled) edge: no-op
            return
        self._fwd[position] = _NO_WEIGHT if link.wgt_fwd is None else link.wgt_fwd
        self._rev[position] = _NO_WEIGHT if link.wgt_rev is None else link.wgt_rev
        self._arrays = None

    # -- raw LINK-row fast path (delta cache feed) -------------------------
    def add_row(self, row: tuple, key: object) -> None:
        """:meth:`add` taking a LINK heap row in pinned schema order.

        ``(oid_src, sid_src, oid_dst, sid_dst, wgt_fwd, wgt_rev)`` — lets
        the delta cache fold rows without materialising ``Link`` objects.
        """
        oid_src, sid_src, oid_dst, sid_dst, wgt_fwd, wgt_rev = row
        if sid_src == sid_dst:
            return
        self._position[key] = len(self._src)
        self._src.append(self._densify(oid_src))
        self._dst.append(self._densify(oid_dst))
        self._fwd.append(_NO_WEIGHT if wgt_fwd is None else wgt_fwd)
        self._rev.append(_NO_WEIGHT if wgt_rev is None else wgt_rev)
        self._arrays = None

    def update_row(self, key: object, row: tuple) -> None:
        position = self._position.get(key)
        if position is None:
            return
        wgt_fwd, wgt_rev = row[4], row[5]
        self._fwd[position] = _NO_WEIGHT if wgt_fwd is None else wgt_fwd
        self._rev[position] = _NO_WEIGHT if wgt_rev is None else wgt_rev
        self._arrays = None

    def extend(self, links: Iterable[Link]) -> None:
        for link in links:
            self.add(link)

    def arrays(self):
        """The (src, dst, fwd, rev, oids) columns, rebuilt only when dirty.

        ``oids`` stays a Python list: page oids are unsigned 64-bit URL
        hashes that can overflow a C long, and the kernels only ever use
        them to translate dense indexes back to dictionary keys.
        """
        if self._arrays is None:
            self._arrays = (
                np.asarray(self._src, dtype=np.int64),
                np.asarray(self._dst, dtype=np.int64),
                np.asarray(self._fwd, dtype=np.float64),
                np.asarray(self._rev, dtype=np.float64),
                self._oids,
            )
        return self._arrays


def compile_links(links: Iterable[Link]) -> CompiledLinkGraph:
    """Compile a full edge list (the serial, full-table distillation feed)."""
    graph = CompiledLinkGraph()
    graph.extend(links)
    return graph


def compiled_weighted_hits(
    graph: CompiledLinkGraph,
    relevance: Mapping[int, float],
    rho: float = 0.1,
    max_iterations: int = 25,
    tolerance: float = 1e-9,
    use_relevance_weights: bool = True,
) -> DistillationResult:
    """Relevance-weighted HITS over a compiled graph (reference: ``weighted_hits``).

    Matches :func:`repro.distiller.hits.weighted_hits` to floating-point
    tolerance: same initialisation (uniform hubs over link sources), same
    per-half-step L1 normalisation, same convergence test on the hub
    vector, same relevance filter and ``None``-weight fallbacks.
    """
    if not len(graph):
        return DistillationResult(iterations=0)
    src, dst, fwd, rev, oids = graph.arrays()
    n = len(oids)
    rel = np.fromiter((relevance.get(oid, 0.0) for oid in oids), np.float64, n)

    hubs = np.zeros(n, dtype=np.float64)
    sources = np.unique(src)
    hubs[sources] = 1.0 / len(sources)
    authorities = np.zeros(n, dtype=np.float64)

    # Forward edges: filtered once (the relevance threshold and weights do
    # not change across iterations), exactly as the reference pre-resolves.
    forward = rel[dst] > rho
    f_src = src[forward]
    f_dst = dst[forward]
    if use_relevance_weights:
        f_wgt = np.where(np.isnan(fwd[forward]), rel[dst][forward], fwd[forward])
        r_wgt = np.where(np.isnan(rev), rel[src], rev)
    else:
        f_wgt = np.ones(len(f_src), dtype=np.float64)
        r_wgt = np.ones(len(src), dtype=np.float64)

    iterations_run = 0
    for _ in range(max_iterations):
        iterations_run += 1
        new_authorities = np.bincount(f_dst, weights=hubs[f_src] * f_wgt, minlength=n)
        total = new_authorities.sum()
        if total > 0:
            new_authorities /= total
        new_hubs = np.bincount(src, weights=new_authorities[dst] * r_wgt, minlength=n)
        total = new_hubs.sum()
        if total > 0:
            new_hubs /= total
        delta = np.abs(new_hubs - hubs).sum()
        hubs, authorities = new_hubs, new_authorities
        if delta < tolerance:
            break

    return DistillationResult(
        hub_scores={oid: float(s) for oid, s in zip(oids, hubs) if s != 0.0},
        authority_scores={
            oid: float(s) for oid, s in zip(oids, authorities) if s != 0.0
        },
        iterations=iterations_run,
    )
