"""distiller: relevance-weighted topic distillation (paper §2.2).

Identifies *hubs* (pages whose link lists lead to many relevant pages —
good crawl access points worth revisiting) and *authorities* (popular
relevant pages) over the growing crawl graph, with hyperlink weights
derived from the classifier's relevance judgements so prestige does not
leak to off-topic pages.
"""

from .compiled import CompiledLinkGraph, compile_links, compiled_weighted_hits
from .db_distiller import (
    DISTILL_BACKENDS,
    DistillerCost,
    IncrementalDistiller,
    IndexLookupDistiller,
    JoinDistiller,
    LinkDeltaCache,
)
from .hits import DistillationResult, weighted_hits
from .weights import Link, assign_weights, backward_weight, forward_weight

__all__ = [
    "CompiledLinkGraph",
    "DISTILL_BACKENDS",
    "DistillationResult",
    "DistillerCost",
    "IncrementalDistiller",
    "IndexLookupDistiller",
    "JoinDistiller",
    "LinkDeltaCache",
    "Link",
    "assign_weights",
    "backward_weight",
    "compile_links",
    "compiled_weighted_hits",
    "forward_weight",
    "weighted_hits",
]
