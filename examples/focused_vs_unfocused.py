"""Figure 5 scenario: a focused crawler vs. a standard crawler, same seeds.

Reproduces the paper's headline comparison (§3.4)::

    python examples/focused_vs_unfocused.py

Both crawlers start from the same keyword-search-style seeds for the
cycling topic.  The unfocused baseline expands pages in breadth-first
order and drifts away from the topic; the soft-focus crawler keeps its
harvest rate up for the whole run.
"""

from __future__ import annotations

from repro.experiments.fig5_harvest import print_report, run_harvest_experiment
from repro.experiments.workloads import build_crawl_workload


def main() -> None:
    print("Building the crawl workload (synthetic web + trained classifier)...")
    workload = build_crawl_workload(seed=7, scale=0.6, max_pages=800)

    print("Running the focused and unfocused crawls (this takes a minute)...\n")
    result = run_harvest_experiment(workload=workload, max_pages=800, window=100)

    for line in print_report(result, every=100):
        print(line)

    print()
    print(
        "Shape check: the unfocused crawler starts out fine (same seeds) and then"
        " loses its way, while the focused crawler sustains its harvest rate —"
        f" a {result.tail_advantage():.1f}x advantage over the second half of the crawl."
    )


if __name__ == "__main__":
    main()
