"""Figure 5 scenario: a focused crawler vs. a standard crawler, same seeds.

Reproduces the paper's headline comparison (§3.4)::

    python examples/focused_vs_unfocused.py

Both crawlers start from the same keyword-search-style seeds for the
cycling topic.  The unfocused baseline expands pages in breadth-first
order and drifts away from the topic; the soft-focus crawler keeps its
harvest rate up for the whole run.
"""

from __future__ import annotations

from repro import build_crawl_workload


def main() -> None:
    print("Building the crawl workload (synthetic web + trained classifier)...")
    workload = build_crawl_workload(seed=7, scale=0.6, max_pages=800)
    system = workload.system
    seeds = system.default_seeds()

    print("Running the focused and unfocused crawls (this takes a minute)...\n")
    focused = system.crawl(max_pages=800, seeds=seeds)
    unfocused = system.crawl(max_pages=800, seeds=seeds, focused=False)

    print(f"{'pages':>6}  {'focused':>8}  {'unfocused':>9}")
    unfocused_by_tick = dict(unfocused.harvest_series(window=100))
    for tick, rate in focused.harvest_series(window=100):
        if tick % 100:
            continue
        baseline = unfocused_by_tick.get(tick)
        baseline_text = f"{baseline:>9.3f}" if baseline is not None else f"{'lost':>9}"
        print(f"{tick:>6}  {rate:>8.3f}  {baseline_text}")

    half = 400
    focused_tail = focused.harvest_rate(skip_first=half)
    unfocused_tail = unfocused.harvest_rate(skip_first=half)
    advantage = (
        focused_tail / unfocused_tail if unfocused_tail > 0 else float("inf")
    )
    print()
    print(
        "Shape check: the unfocused crawler starts out fine (same seeds) and then"
        " loses its way, while the focused crawler sustains its harvest rate —"
        f" a {advantage:.1f}x advantage over the second half of the crawl."
    )


if __name__ == "__main__":
    main()
