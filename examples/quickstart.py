"""Quickstart: build a synthetic web, train the classifier, run a focused crawl.

This is the five-minute tour of the public API::

    python examples/quickstart.py

It bootstraps a laptop-scale synthetic web (the stand-in for the Web the
paper crawled), trains the hierarchical naive-Bayes classifier from
generated example documents, runs a soft-focus crawl on "cycling", and
prints the headline numbers the paper reports: harvest rate, top hubs,
and how far from the seeds the best resources were found.
"""

from __future__ import annotations

from repro import CrawlerConfig, FocusConfig, FocusSystem, WebConfig


def main() -> None:
    config = FocusConfig(
        good_topics=("recreation/cycling",),
        examples_per_leaf=25,
        seed_count=20,
        crawler=CrawlerConfig(max_pages=500, distill_every=150),
        web=WebConfig(
            seed=7,
            pages_per_topic=80,
            topic_page_overrides={"recreation/cycling": 400},
            background_pages=1500,
            link_locality_window=20,
            seed_region_fraction=0.2,
        ),
    )

    print("Building the synthetic web and training the classifier...")
    system = FocusSystem.bootstrap(config)
    model = system.train()
    print(f"  web: {len(system.web)} pages, {len(system.web.servers)} servers")
    print(f"  classifier: {len(model.nodes)} internal nodes, {model.parameter_count()} parameters")

    print("\nRunning a soft-focus crawl (500 pages)...")
    result = system.crawl()
    print(f"  harvest rate (avg relevance of fetched pages): {result.harvest_rate():.3f}")
    print(f"  ground-truth precision (synthetic oracle):      {result.ground_truth_precision():.3f}")

    print("\nTop hubs discovered by the distiller:")
    for url, score in result.top_hubs(8):
        print(f"  {score:.4f}  {url}")

    print("\nDistance from the seed set to the top-50 authorities (crawl-found links):")
    for distance, count in sorted(result.authority_distance_histogram(50).items()):
        label = "unreached" if distance < 0 else f"{distance:>2} links"
        print(f"  {label}: {'#' * count} ({count})")

    print("\nAd-hoc SQL over the crawl database (harvest per 100-fetch bucket):")
    for row in result.monitor().harvest_rate_by_bucket(100):
        print(f"  bucket {int(row['bucket']):>3}: avg relevance {row['avg_relevance']:.3f} over {row['pages']} pages")


if __name__ == "__main__":
    main()
