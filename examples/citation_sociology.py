"""Citation sociology: which topics live one link away from cycling pages?

Reproduces the example-query from the paper's introduction::

    python examples/citation_sociology.py

"Find a topic (other than bicycling) within one link of bicycling pages
that is much more frequent than on the web at large.  The answer found
by the system described in this paper is *first aid*."

The synthetic web plants the same association (cycling pages link to
first-aid pages more often than chance); a focused crawl plus the
co-topic analysis recovers it.
"""

from __future__ import annotations

from repro import build_crawl_workload


def main() -> None:
    print("Building the workload and crawling the cycling community...")
    workload = build_crawl_workload(seed=7, scale=0.6, max_pages=900)
    result = workload.system.crawl(max_pages=900)
    print(f"pages fetched: {result.pages_fetched()}, harvest rate {result.harvest_rate():.3f}")

    print("\nTopics over-represented within one link of the crawled cycling pages:")
    cotopics = result.citation_sociology(relevance_threshold=0.5)
    if not cotopics:
        print("  (crawl too small to measure — increase max_pages)")
        return
    print(f"  {'topic':<35} {'near cycling':>12} {'web at large':>13} {'lift':>7}")
    for cotopic in cotopics[:6]:
        print(
            f"  {cotopic.name:<35} {cotopic.neighbourhood_share:>11.1%} "
            f"{cotopic.baseline_share:>12.1%} {cotopic.lift:>7.2f}"
        )
    print(
        f"\nAnswer: {cotopics[0].name!r} — the reproduction's analogue of the paper's"
        " 'first aid' finding."
    )


if __name__ == "__main__":
    main()
