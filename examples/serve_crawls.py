"""Crawl as a service: submit concurrent crawl jobs over the HTTP API.

Run with::

    python examples/serve_crawls.py

The paper's closing argument is that focused crawling should run as a
shared, long-running service.  This example stands up the reproduction's
service — a :class:`~repro.JobManager` multiplexing jobs over one shared
fetch pool, behind a stdlib JSON HTTP server — and drives it purely over
the wire:

1. submit two crawl jobs (cycling and mutual funds) as JSON ``JobSpec``s;
2. poll their progress while they interleave on the shared pipeline;
3. pause and resume one of them mid-crawl via the API;
4. print both harvest curves and the shared-pool statistics.

Every job is bit-identical to the same crawl run solo: concurrency and
pooling change only *when* pages arrive, never *which* pages.
"""

from __future__ import annotations

import json
import time
import urllib.request

from repro import CrawlService, FetchPolicy, FocusConfig, FocusSystem, JobManager, JobSpec

TERMINAL = ("completed", "exhausted", "cancelled", "failed")


def call(url: str, payload: dict | None = None) -> dict | list:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode() if payload is not None else None,
        method="POST" if payload is not None else "GET",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.load(response)


def main() -> None:
    print("Training the focus system (shared by every job on its topic)...")
    system = FocusSystem.bootstrap(FocusConfig(good_topics=["recreation/cycling"]))
    system.train()

    manager = JobManager(system, policy=FetchPolicy(max_inflight=8))
    with CrawlService(manager) as service:
        base = service.url
        print(f"service listening on {base}\n")

        cycling = call(
            f"{base}/jobs",
            JobSpec(max_pages=300, fetch_failure_seed=3, name="cycling").to_dict(),
        )["id"]
        funds = call(
            f"{base}/jobs",
            JobSpec(
                good_topics=("business/investment/mutual_funds",),
                max_pages=200,
                fetch_failure_seed=5,
                name="mutual-funds",
            ).to_dict(),
        )["id"]
        print(f"submitted jobs: {cycling} (cycling), {funds} (mutual funds)")

        paused = False
        while True:
            jobs = call(f"{base}/jobs")
            line = "  ".join(
                f"{job['name']}: {job['status']} {job['pages_fetched']}/{job['budget']}"
                for job in jobs
            )
            print(f"  {line}")
            progress = call(f"{base}/jobs/{cycling}")
            if not paused and progress["pages_fetched"] >= 100:
                print(f"  -> pausing {cycling} mid-crawl, then resuming it")
                call(f"{base}/jobs/{cycling}/pause", {})
                call(f"{base}/jobs/{cycling}/resume", {})
                paused = True
            if all(job["status"] in TERMINAL for job in jobs):
                break
            time.sleep(0.25)

        print("\nHarvest curves (every 50 fetches):")
        for job_id, name in ((cycling, "cycling"), (funds, "mutual-funds")):
            series = call(f"{base}/jobs/{job_id}/harvest?window=50")
            points = "  ".join(
                f"{tick}:{rate:.2f}" for tick, rate in series if tick % 50 == 0
            )
            print(f"  {name:<13} {points}")

        for job_id, name in ((cycling, "cycling"), (funds, "mutual-funds")):
            result = call(f"{base}/jobs/{job_id}/result")
            print(
                f"\n{name}: {result['status']}, {result['pages_fetched']} pages, "
                f"harvest rate {result['harvest_rate']:.3f}, "
                f"latency {result['latency_s']:.2f}s"
            )

        pool = call(f"{base}/health")["pool"]
        print(
            f"\nshared pool: {pool['total_fetches']} fetches, "
            f"peak {pool['peak_inflight']} in flight "
            f"(cap {pool['max_inflight']}), {pool['waits']} waits"
        )


if __name__ == "__main__":
    main()
