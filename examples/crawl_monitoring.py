"""Crawl monitoring and the mutual-funds stagnation fix (paper §3.7).

Run with::

    python examples/crawl_monitoring.py

The example shows what the paper argues is a key practical benefit of
building the crawler on a relational engine: ad-hoc SQL answers
operational questions directly.

1. A crawl focused on the narrow ``mutual_funds`` topic under-performs.
2. The topic-census query (CRAWL ⋈ TAXONOMY) reveals that the crawl's
   neighbourhood is dominated by the *parent* topic, investment.
3. Marking the parent good (one taxonomy update) fixes the harvest rate.
4. The missed-hub-neighbours query finds promising pages the crawler has
   not yet fetched.
"""

from __future__ import annotations

from repro import build_crawl_workload

MUTUAL_FUNDS = "business/investment/mutual_funds"
INVESTMENT = "business/investment"


def main() -> None:
    print("Building the workload (good topic: mutual funds)...")
    workload = build_crawl_workload(seed=7, scale=0.4, good_topic=MUTUAL_FUNDS, max_pages=300)
    system = workload.system

    print("\n--- crawl #1: focused on the narrow topic ---")
    before = system.crawl(max_pages=300)
    monitor = before.monitor()
    print(f"harvest rate: {before.harvest_rate():.3f}")

    print("\nTopic census (which classes dominate the crawl?):")
    for row in monitor.topic_census(limit=5):
        print(f"  {row['cnt']:>4} pages  best-leaf class: {row['name']}")

    report = monitor.diagnose_stagnation()
    print(
        f"\nDiagnosis: recent average relevance {report.recent_average_relevance:.3f}, "
        f"dominant class {report.dominant_kcid_name!r} "
        f"({report.dominant_share:.0%} of visited pages)"
    )

    print("\nHarvest per 50-fetch bucket (SQL over CRAWL):")
    for row in monitor.harvest_rate_by_bucket(50):
        print(f"  bucket {int(row['bucket']):>3}: {row['avg_relevance']:.3f}")

    print("\nUnvisited pages cited by top hubs (the paper's 'missed neighbours' query):")
    psi = monitor.hub_score_percentile(0.9)
    missed = monitor.missed_hub_neighbours(psi)
    for row in missed[:5]:
        print(f"  priority {row['relevance']:.3f}  {row['url']}")
    if not missed:
        print("  (none — the crawler kept up with its hubs)")

    print(f"\n--- the fix: mark the parent topic {INVESTMENT!r} good and re-crawl ---")
    system.add_good_topic(INVESTMENT)
    after = system.crawl(max_pages=300)
    print(f"harvest rate after the fix: {after.harvest_rate():.3f} (was {before.harvest_rate():.3f})")


if __name__ == "__main__":
    main()
