"""Determinism and equivalence tests for the sharded crawl engine.

The sharded engine is a pure *process-model* change, and these tests pin
the three contracts that make it one:

* ``N=1`` sharded is bit-identical to the batched engine — page
  sequence, relevance floats, failures, and final table state;
* ``N>=2`` runs are bit-identical to *each other* for any shard count
  and any message-delivery schedule (the handoff-determinism property);
* the multiprocessing runner produces exactly what the in-process
  runner produces (same workers, different transport).
"""

import random

import pytest

from repro.classifier.training import ModelInstaller
from repro.core.schema import create_focus_database
from repro.crawler.engine import CrawlEngine, CrawlerConfig
from repro.crawler.focused import FocusedCrawler
from repro.crawler.frontier import Frontier
from repro.crawler.handoff import HandoffRecord, merge_handoffs, shard_of_host
from repro.crawler.sharded import ShardServerPool, build_sharded_crawler
from repro.crawler.unfocused import UnfocusedCrawler
from repro.webgraph.fetch import Fetcher

GOOD = "recreation/cycling"


@pytest.fixture(scope="module")
def crawl_seeds(small_web):
    return small_web.keyword_seed_pages(GOOD, count=8)


def run_reference(small_web, trained_model, taxonomy, seeds, *, focused=True, **kwargs):
    """A batched-engine crawl — the bit-level reference for sharded N=1."""
    database = create_focus_database(buffer_pool_pages=512)
    ModelInstaller(database).install(trained_model)
    small_web.servers.reseed(0)
    fetcher = Fetcher(small_web, failure_seed=0)
    config = CrawlerConfig(engine="batched", **kwargs)
    crawler_cls = FocusedCrawler if focused else UnfocusedCrawler
    crawler = crawler_cls(fetcher, trained_model, taxonomy, database, config)
    crawler.add_seeds(seeds)
    trace = crawler.crawl()
    return crawler, database, trace


def run_sharded(
    small_web, trained_model, taxonomy, seeds, *, shards, focused=True,
    schedule=None, **kwargs,
):
    config = CrawlerConfig(
        engine="sharded", shards=shards, shard_runner="inprocess", **kwargs
    )
    crawler = build_sharded_crawler(
        small_web, trained_model, taxonomy, config,
        focused=focused, fetch_failure_seed=0, schedule=schedule,
    )
    crawler.add_seeds(seeds)
    trace = crawler.engine.run(crawler.config.max_pages)
    return crawler, trace


def visit_tuples(trace):
    return [
        (v.tick, v.url, v.relevance, v.server, v.out_degree, v.best_leaf_cid)
        for v in trace.visits
    ]


def table_rows(database, name):
    return sorted(tuple(row) for row in database.table(name).rows())


def sharded_table_rows(crawler, name):
    """The union of one table across all shard databases."""
    rows = []
    for worker in crawler.engine.runner.workers:
        rows.extend(tuple(row) for row in worker.database.table(name).rows())
    return sorted(rows)


class TestShardedMatchesBatched:
    KWARGS = dict(max_pages=100, batch_size=8, distill_every=40)

    def test_n1_bit_identical_to_batched(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        """One shard reproduces the batched engine exactly: visits, floats,
        failures, distillation cadence, and the logical table state."""
        _, ref_db, ref = run_reference(
            small_web, trained_model, taxonomy, crawl_seeds, **self.KWARGS
        )
        crawler, trace = run_sharded(
            small_web, trained_model, taxonomy, crawl_seeds, shards=1, **self.KWARGS
        )
        try:
            assert visit_tuples(trace) == visit_tuples(ref)
            assert trace.relevance_series() == ref.relevance_series()  # bitwise
            assert trace.failed_urls == ref.failed_urls
            assert trace.distillations == ref.distillations
            for name in ("CRAWL", "LINK", "HUBS", "AUTH"):
                assert sharded_table_rows(crawler, name) == table_rows(ref_db, name), name
        finally:
            crawler.shutdown()

    def test_n2_equals_n4(self, small_web, trained_model, taxonomy, crawl_seeds):
        """Shard count is invisible to the crawl: N=2 and N=4 agree bitwise."""
        c2, t2 = run_sharded(
            small_web, trained_model, taxonomy, crawl_seeds, shards=2, **self.KWARGS
        )
        c4, t4 = run_sharded(
            small_web, trained_model, taxonomy, crawl_seeds, shards=4, **self.KWARGS
        )
        try:
            assert visit_tuples(t2) == visit_tuples(t4)
            assert t2.relevance_series() == t4.relevance_series()
            assert t2.failed_urls == t4.failed_urls
            for name in ("CRAWL", "LINK", "HUBS", "AUTH"):
                assert sharded_table_rows(c2, name) == sharded_table_rows(c4, name)
        finally:
            c2.shutdown()
            c4.shutdown()

    def test_n4_partitions_by_server(self, small_web, trained_model, taxonomy, crawl_seeds):
        """Every CRAWL row lives on the shard its server hashes to."""
        crawler, _ = run_sharded(
            small_web, trained_model, taxonomy, crawl_seeds, shards=4,
            max_pages=40, batch_size=8, distill_every=0,
        )
        try:
            for shard, worker in enumerate(crawler.engine.runner.workers):
                urls = [m["url"] for m in worker.database.table("CRAWL").rows_as_dicts()]
                assert urls, f"shard {shard} owns no URLs"
                assert all(shard_of_host(url, 4) == shard for url in urls)
        finally:
            crawler.shutdown()

    def test_hard_focus_parity(self, small_web, trained_model, taxonomy, crawl_seeds):
        kwargs = dict(max_pages=60, batch_size=8, distill_every=0, focus_mode="hard")
        _, _, ref = run_reference(
            small_web, trained_model, taxonomy, crawl_seeds, **kwargs
        )
        crawler, trace = run_sharded(
            small_web, trained_model, taxonomy, crawl_seeds, shards=1, **kwargs
        )
        try:
            assert visit_tuples(trace) == visit_tuples(ref)
        finally:
            crawler.shutdown()
        c2, t2 = run_sharded(
            small_web, trained_model, taxonomy, crawl_seeds, shards=2, **kwargs
        )
        c3, t3 = run_sharded(
            small_web, trained_model, taxonomy, crawl_seeds, shards=3, **kwargs
        )
        try:
            assert visit_tuples(t2) == visit_tuples(t3)
        finally:
            c2.shutdown()
            c3.shutdown()

    def test_unfocused_breadth_first_parity(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        """Coordinator-assigned discovery numbers keep BFS shard-invariant."""
        kwargs = dict(max_pages=60, batch_size=8)
        _, _, ref = run_reference(
            small_web, trained_model, taxonomy, crawl_seeds, focused=False, **kwargs
        )
        crawler, trace = run_sharded(
            small_web, trained_model, taxonomy, crawl_seeds, shards=1,
            focused=False, **kwargs,
        )
        try:
            assert visit_tuples(trace) == visit_tuples(ref)
        finally:
            crawler.shutdown()
        c2, t2 = run_sharded(
            small_web, trained_model, taxonomy, crawl_seeds, shards=2,
            focused=False, **kwargs,
        )
        c4, t4 = run_sharded(
            small_web, trained_model, taxonomy, crawl_seeds, shards=4,
            focused=False, **kwargs,
        )
        try:
            assert visit_tuples(t2) == visit_tuples(t4)
        finally:
            c2.shutdown()
            c4.shutdown()

    def test_top_hubs_available(self, small_web, trained_model, taxonomy, crawl_seeds):
        crawler, _ = run_sharded(
            small_web, trained_model, taxonomy, crawl_seeds, shards=2,
            max_pages=50, batch_size=8, distill_every=25,
        )
        try:
            hubs = crawler.top_hubs(5)
            auth = crawler.top_authorities(5)
            assert hubs and all(isinstance(u, str) and s >= 0 for u, s in hubs)
            assert auth
        finally:
            crawler.shutdown()


class TestHandoffDeterminism:
    """The property at the heart of the design: delivery timing is invisible."""

    def test_any_delivery_schedule_is_bit_identical(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        """Random per-step permutations of the shard service order change
        nothing: same page sequence, same relevance floats, same tables."""
        kwargs = dict(max_pages=60, batch_size=8, distill_every=30)
        _, baseline = run_sharded(
            small_web, trained_model, taxonomy, crawl_seeds, shards=4, **kwargs
        )
        base_visits = visit_tuples(baseline)
        base_relevance = baseline.relevance_series()
        for seed in range(5):
            rng = random.Random(seed)

            def schedule(shards, rng=rng):
                rng.shuffle(shards)
                return shards

            crawler, trace = run_sharded(
                small_web, trained_model, taxonomy, crawl_seeds, shards=4,
                schedule=schedule, **kwargs,
            )
            try:
                assert visit_tuples(trace) == base_visits, f"schedule seed {seed}"
                assert trace.relevance_series() == base_relevance
            finally:
                crawler.shutdown()

    def test_merge_handoffs_is_schedule_invariant(self):
        records = [
            HandoffRecord(
                round=r, pos=p, link_idx=i, src_oid=1, src_sid=1,
                dst_url=f"u{r}{p}{i}", dst_oid=10 * r + p, dst_sid=2,
                src_relevance=0.5, discovered=r * 100 + p * 10 + i,
            )
            for r in (1, 2)
            for p in (0, 1, 2)
            for i in (0, 1)
        ]
        rng = random.Random(7)
        reference = merge_handoffs([records])
        for _ in range(10):
            shuffled = records[:]
            rng.shuffle(shuffled)
            # Split into arbitrary per-source queues; each queue keeps the
            # canonical internal order (FIFO per (src, dst) pair).
            cut = rng.randrange(len(shuffled) + 1)
            queues = [
                sorted(shuffled[:cut], key=HandoffRecord.sort_key),
                sorted(shuffled[cut:], key=HandoffRecord.sort_key),
            ]
            assert merge_handoffs(queues) == reference

    def test_shard_server_pool_streams_are_per_host(self):
        pool_a = ShardServerPool({}, failure_seed=3)
        pool_b = ShardServerPool({}, failure_seed=3)
        for name in ("alpha.example.org", "beta.example.org"):
            pool_a.ensure(name)
            pool_b.ensure(name)
        # Interleaving order differs; per-host sequences must not.
        a = [pool_a.simulate_fetch("alpha.example.org") for _ in range(4)]
        a += [pool_a.simulate_fetch("beta.example.org") for _ in range(4)]
        b = []
        for _ in range(4):
            b.append(("beta", pool_b.simulate_fetch("beta.example.org")))
            b.append(("alpha", pool_b.simulate_fetch("alpha.example.org")))
        assert [x for tag, x in b if tag == "alpha"] == a[:4]
        assert [x for tag, x in b if tag == "beta"] == a[4:]

    def test_shard_server_pool_state_roundtrip(self):
        pool = ShardServerPool({}, failure_seed=9)
        pool.ensure("host.example.org")
        pool.simulate_fetch("host.example.org")
        state = pool.rng_state()
        expected = [pool.simulate_fetch("host.example.org") for _ in range(3)]
        restored = ShardServerPool({}, failure_seed=9)
        restored.ensure("host.example.org")
        restored.restore_rng(state)
        assert [restored.simulate_fetch("host.example.org") for _ in range(3)] == expected


class TestMultiprocessRunner:
    def test_process_runner_matches_inprocess(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        """Spawned worker processes produce the identical crawl."""
        kwargs = dict(max_pages=30, batch_size=6, distill_every=15)
        _, in_trace = run_sharded(
            small_web, trained_model, taxonomy, crawl_seeds, shards=2, **kwargs
        )
        config = CrawlerConfig(
            engine="sharded", shards=2, shard_runner="process", **kwargs
        )
        crawler = build_sharded_crawler(
            small_web, trained_model, taxonomy, config, fetch_failure_seed=0
        )
        try:
            crawler.add_seeds(crawl_seeds)
            mp_trace = crawler.engine.run(crawler.config.max_pages)
            assert visit_tuples(mp_trace) == visit_tuples(in_trace)
            assert mp_trace.relevance_series() == in_trace.relevance_series()
        finally:
            crawler.shutdown()


class TestStatsAggregation:
    def test_io_snapshot_totals_and_per_shard_breakdown(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        crawler, _ = run_sharded(
            small_web, trained_model, taxonomy, crawl_seeds, shards=3,
            max_pages=30, batch_size=6, distill_every=0,
        )
        try:
            snapshot = crawler.io_snapshot()
            shards = snapshot["shards"]
            assert len(shards) == 3
            numeric = [k for k, v in snapshot.items() if isinstance(v, (int, float))]
            assert numeric
            for key in numeric:
                assert snapshot[key] == pytest.approx(
                    sum(s.get(key, 0) for s in shards)
                )
        finally:
            crawler.shutdown()

    def test_stage_timings_sum_shards_and_include_distill(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        crawler, _ = run_sharded(
            small_web, trained_model, taxonomy, crawl_seeds, shards=2,
            max_pages=30, batch_size=6, distill_every=15,
        )
        try:
            timings = crawler.engine.stage_timings
            assert set(timings) == {"fetch", "classify", "write", "distill"}
            assert timings["fetch"] > 0.0
            assert timings["classify"] > 0.0
            assert timings["distill"] > 0.0
            assert crawler.engine.fetch_overlap_ratio() == 0.0
        finally:
            crawler.shutdown()

    def test_fetch_stats_aggregate_across_shards(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        crawler, trace = run_sharded(
            small_web, trained_model, taxonomy, crawl_seeds, shards=2,
            max_pages=30, batch_size=6, distill_every=0,
        )
        try:
            stats = crawler.fetcher.stats
            assert stats.successes == len(trace.visits)
            assert stats.attempts >= stats.successes
        finally:
            crawler.shutdown()

    def test_heap_stats_one_entry_per_shard(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        crawler, _ = run_sharded(
            small_web, trained_model, taxonomy, crawl_seeds, shards=2,
            max_pages=20, batch_size=5, distill_every=0,
        )
        try:
            stats = crawler.heap_stats()
            assert len(stats) == 2
            for entry in stats:
                assert {"heap_size", "frontier_size", "tuples_scanned", "compactions"} <= set(entry)
        finally:
            crawler.shutdown()


class TestGuards:
    def test_crawl_engine_rejects_sharded_mode(
        self, trained_model, taxonomy, small_web, crawl_database
    ):
        fetcher = Fetcher(small_web, failure_seed=0)
        config = CrawlerConfig(engine="sharded")
        frontier = Frontier(crawl_database)
        with pytest.raises(ValueError, match="sharded"):
            CrawlEngine(
                fetcher, trained_model, taxonomy, crawl_database, config,
                frontier, trace=None,
            )

    def test_auto_never_resolves_to_sharded(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_SHARDS", "4")
        config = CrawlerConfig(engine="auto", batch_size=8)
        assert config.resolve_shards() == 4
        assert config.engine == "auto"  # sharding stays opt-in per config

    def test_env_shard_count_flows_into_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_SHARDS", "3")
        assert CrawlerConfig(engine="sharded").resolve_shards() == 3
        monkeypatch.delenv("REPRO_ENGINE_SHARDS")
        assert CrawlerConfig(engine="sharded").resolve_shards() == 1

    def test_unknown_runner_rejected(self, small_web, trained_model, taxonomy):
        config = CrawlerConfig(engine="sharded", shard_runner="threads")
        with pytest.raises(ValueError, match="shard_runner"):
            build_sharded_crawler(small_web, trained_model, taxonomy, config)

    def test_schedule_requires_inprocess_runner(self, small_web, trained_model, taxonomy):
        config = CrawlerConfig(engine="sharded", shard_runner="process")
        with pytest.raises(ValueError, match="inprocess"):
            build_sharded_crawler(
                small_web, trained_model, taxonomy, config,
                schedule=lambda shards: shards,
            )

    def test_database_stub_points_at_shard_databases(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        crawler, _ = run_sharded(
            small_web, trained_model, taxonomy, crawl_seeds, shards=2,
            max_pages=10, batch_size=5, distill_every=0,
        )
        try:
            assert crawler.database.sharded is True
            with pytest.raises(AttributeError, match="per shard"):
                crawler.database.table("CRAWL")
        finally:
            crawler.shutdown()
        assert crawler.database.closed
